//! CH-benCHmark-style mixed workload: N analytical sessions running the
//! TPC-H queries concurrently with M refresh sessions running RF1/RF2,
//! all through the serving layer (`server::Server`).
//!
//! The driver behind the fig22 bench and the CI mixed smoke test. The
//! refresh stream is split round-robin across the refresh sessions
//! ([`tpch::RefreshStreams::slice`]) so concurrent writers never contend
//! on a key — with one refresh session the committed write set is exactly
//! the sequential RF1+RF2 pair, which is what the smoke test checks
//! against a sequentially refreshed reference database.
//!
//! Reported per class (query / refresh): operations, wall seconds of the
//! slowest session, and p50/p95/p99 latency from [`exec::LatencyStats`] —
//! plus the server's full [`MetricsSnapshot`], the maintenance counters,
//! and (with a WAL) the [`engine::WalStats`] whose `commits - appends`
//! gap is the group-commit win.

use engine::{
    Database, MaintenanceConfig, MaintenanceStats, PartitionSpec, TableOptions, UpdatePolicy,
    WalStats,
};
use exec::{LatencyStats, LatencySummary};
use server::{AdmissionConfig, MetricsSnapshot, Server, ServerConfig, ServerError, Session};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use tpch::queries::run_query;
use tpch::{generate, stage_rf1_chunk, stage_rf2_chunk, RefreshStreams};

/// Mixed-workload knobs (see field docs; defaults are CI-sized).
#[derive(Debug, Clone)]
pub struct MixedConfig {
    /// TPC-H scale factor.
    pub sf: f64,
    /// Range partitions for `lineitem`/`orders` (1 = unpartitioned).
    pub partitions: usize,
    /// Update policy maintaining every table.
    pub policy: UpdatePolicy,
    /// Analytical sessions (each cycles through `query_ids`).
    pub query_sessions: usize,
    /// Refresh sessions (the RF streams are sliced across them).
    pub refresh_sessions: usize,
    /// Query ids each analytical session cycles through.
    pub query_ids: Vec<usize>,
    /// Queries per analytical session.
    pub queries_per_session: usize,
    /// Orders staged per refresh transaction (RF1) / keys per delete
    /// transaction (RF2).
    pub refresh_batch: usize,
    /// Scale of the refresh streams (1.0 = the spec's ~0.1 % per stream).
    pub refresh_fraction: f64,
    /// Background maintenance; `None` disables the scheduler.
    pub maintenance: Option<MaintenanceConfig>,
    /// Write admission control.
    pub admission: AdmissionConfig,
    /// Commit WAL path; `None` runs without durability.
    pub wal: Option<PathBuf>,
}

impl Default for MixedConfig {
    fn default() -> Self {
        MixedConfig {
            sf: 0.01,
            partitions: 4,
            policy: UpdatePolicy::Pdt,
            query_sessions: 2,
            refresh_sessions: 1,
            query_ids: vec![1, 6],
            queries_per_session: 4,
            refresh_batch: 32,
            refresh_fraction: 1.0,
            maintenance: Some(MaintenanceConfig::default()),
            admission: AdmissionConfig::default(),
            wal: None,
        }
    }
}

/// One workload class's aggregate result.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// Sessions that ran the class.
    pub sessions: usize,
    /// Operations completed (queries, or committed refresh transactions).
    pub ops: u64,
    /// Wall seconds of the slowest session in the class.
    pub secs: f64,
    /// Per-operation latency across every session of the class.
    pub latency: Option<LatencySummary>,
}

impl ClassReport {
    /// Class throughput (ops over the slowest session's wall time).
    pub fn per_sec(&self) -> f64 {
        self.ops as f64 / self.secs.max(1e-9)
    }
}

impl fmt::Display for ClassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sessions, {} ops in {:.3}s ({:.1}/s)",
            self.sessions,
            self.ops,
            self.secs,
            self.per_sec()
        )?;
        if let Some(l) = &self.latency {
            write!(f, " [{l}]")?;
        }
        Ok(())
    }
}

/// Everything one [`run_mixed`] run measured.
#[derive(Debug, Clone)]
pub struct MixedReport {
    /// Analytical class.
    pub queries: ClassReport,
    /// Refresh class. `ops` counts committed transactions;
    /// `backpressure_retries` counts chunks that had to be retried after
    /// an admission reject.
    pub refresh: ClassReport,
    /// Refresh chunks retried after [`ServerError::Backpressure`].
    pub backpressure_retries: u64,
    /// The server's full per-table / per-session metrics.
    pub metrics: MetricsSnapshot,
    /// Maintenance counters (`None` when disabled).
    pub maintenance: Option<MaintenanceStats>,
    /// WAL append statistics (`None` without a WAL); `commits - appends`
    /// is the number of fsync windows group commit saved.
    pub wal: Option<WalStats>,
}

/// Build the TPC-H database for the mixed run (partitioned like
/// [`tpch::load_database_partitioned`], optionally WAL-backed).
fn build_db(cfg: &MixedConfig, data: &tpch::TpchData) -> Database {
    let db = match &cfg.wal {
        Some(path) => {
            let _ = std::fs::remove_file(path);
            Database::with_wal(path).expect("open mixed-workload WAL")
        }
        None => Database::new(),
    };
    let opts = TableOptions::default().with_policy(cfg.policy);
    for (name, rows) in data.tables() {
        let table_opts = if matches!(name, "lineitem" | "orders") && cfg.partitions > 1 {
            opts.clone()
                .with_partitions(PartitionSpec::Count(cfg.partitions))
        } else {
            opts.clone()
        };
        db.create_table(tpch::table_meta(name), table_opts, rows.clone())
            .expect("bulk load mixed-workload table");
    }
    db
}

/// Commit one staged refresh chunk through a session transaction,
/// retrying (forever — maintenance is draining under us) on admission
/// rejects. Returns the retry count.
fn commit_chunk(
    session: &Session,
    lat: &LatencyStats,
    stage: impl Fn(&mut engine::DbTxn<'_>) -> Result<(), engine::DbError>,
) -> u64 {
    let mut retries = 0u64;
    loop {
        let t0 = Instant::now();
        let mut txn = session.begin();
        let admitted = txn.touch("orders").and_then(|()| txn.touch("lineitem"));
        match admitted {
            Ok(()) => {}
            Err(ServerError::Backpressure { .. }) => {
                drop(txn);
                retries += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
                continue;
            }
            Err(e) => panic!("refresh admission failed: {e}"),
        }
        stage(txn.raw()).expect("stage refresh chunk");
        match txn.commit() {
            Ok(_) => {
                lat.record(t0.elapsed());
                return retries;
            }
            Err(ServerError::Backpressure { .. }) => {
                retries += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(e) => panic!("refresh commit failed: {e}"),
        }
    }
}

/// Run the mixed workload: spawn every session on the server's bounded
/// pool, join them all, freeze the report.
pub fn run_mixed(cfg: &MixedConfig) -> MixedReport {
    run_mixed_with_db(cfg).0
}

/// [`run_mixed`], also returning the database after server shutdown —
/// the smoke test compares its final image against a sequentially
/// refreshed reference.
pub fn run_mixed_with_db(cfg: &MixedConfig) -> (MixedReport, Arc<Database>) {
    let data = generate(cfg.sf);
    let streams = RefreshStreams::build(&data, cfg.refresh_fraction);
    let db = Arc::new(build_db(cfg, &data));
    let server = Server::start(
        db.clone(),
        ServerConfig {
            max_sessions: cfg.query_sessions + cfg.refresh_sessions,
            maintenance: cfg.maintenance,
            admission: cfg.admission,
            ..ServerConfig::default()
        },
    );

    let query_lat = Arc::new(LatencyStats::new());
    let refresh_lat = Arc::new(LatencyStats::new());
    let mut query_handles = Vec::new();
    let mut refresh_handles = Vec::new();

    for w in 0..cfg.refresh_sessions {
        let slice = streams.slice(cfg.refresh_sessions, w);
        let lat = refresh_lat.clone();
        let batch = cfg.refresh_batch.max(1);
        let h = server
            .spawn(&format!("rf-{w}"), move |session| {
                let t0 = Instant::now();
                let mut commits = 0u64;
                let mut retries = 0u64;
                for chunk in slice.inserts.chunks(batch) {
                    retries += commit_chunk(session, &lat, |txn| stage_rf1_chunk(txn, chunk));
                    commits += 1;
                }
                for chunk in slice.delete_keys.chunks(batch) {
                    retries += commit_chunk(session, &lat, |txn| stage_rf2_chunk(txn, chunk));
                    commits += 1;
                }
                (commits, retries, t0.elapsed().as_secs_f64())
            })
            .expect("spawn refresh session");
        refresh_handles.push(h);
    }

    for w in 0..cfg.query_sessions {
        let ids = cfg.query_ids.clone();
        let rounds = cfg.queries_per_session;
        let lat = query_lat.clone();
        let sf = cfg.sf;
        let h = server
            .spawn(&format!("q-{w}"), move |session| {
                let t0 = Instant::now();
                let mut rows = 0u64;
                for k in 0..rounds {
                    let n = ids[k % ids.len()];
                    let t = Instant::now();
                    let out = session.query(&format!("q{n:02}"), |view| run_query(n, view, sf));
                    lat.record(t.elapsed());
                    rows += out.len() as u64;
                }
                (rounds as u64, rows, t0.elapsed().as_secs_f64())
            })
            .expect("spawn query session");
        query_handles.push(h);
    }

    let mut refresh_ops = 0u64;
    let mut backpressure_retries = 0u64;
    let mut refresh_secs = 0f64;
    for h in refresh_handles {
        let (commits, retries, secs) = h.join().expect("refresh session");
        refresh_ops += commits;
        backpressure_retries += retries;
        refresh_secs = refresh_secs.max(secs);
    }
    let mut query_ops = 0u64;
    let mut query_secs = 0f64;
    for h in query_handles {
        let (queries, _rows, secs) = h.join().expect("query session");
        query_ops += queries;
        query_secs = query_secs.max(secs);
    }

    server.drain_maintenance().expect("drain maintenance");
    let maintenance = server.maintenance_stats();
    let metrics = server.shutdown();
    let report = MixedReport {
        queries: ClassReport {
            sessions: cfg.query_sessions,
            ops: query_ops,
            secs: query_secs,
            latency: query_lat.summary(),
        },
        refresh: ClassReport {
            sessions: cfg.refresh_sessions,
            ops: refresh_ops,
            secs: refresh_secs,
            latency: refresh_lat.summary(),
        },
        backpressure_retries,
        metrics,
        maintenance,
        wal: db.wal_stats(),
    };
    (report, db)
}
