//! Machine-readable bench output: every figure bench writes a
//! `BENCH_<fig>.json` next to its human-readable table, so regression
//! tooling can diff runs without scraping stdout.
//!
//! The format is one JSON object per file:
//!
//! ```json
//! {"bench": "fig17", "rows": [{"rows": 1000000, "key": "int", ...}, ...]}
//! ```
//!
//! Set `PDT_BENCH_JSON_DIR` to redirect the files (default: the working
//! directory). Emission never fails a bench — I/O errors only warn.

use std::fmt::Write as _;
use std::path::PathBuf;

/// One JSON scalar in a bench row.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// A string field (key kind, policy name, ...).
    Str(String),
    /// A float field (milliseconds, ratios).
    F64(f64),
    /// An unsigned integer field (row counts, sizes).
    U64(u64),
    /// A signed integer field.
    I64(i64),
    /// A boolean field.
    Bool(bool),
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::U64(v as u64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::I64(v)
    }
}
impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn value_into(out: &mut String, v: &JsonValue) {
    match v {
        JsonValue::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        JsonValue::F64(f) if f.is_finite() => {
            let _ = write!(out, "{f}");
        }
        JsonValue::F64(_) => out.push_str("null"),
        JsonValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        JsonValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        JsonValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Accumulates the rows of one bench run and writes `BENCH_<fig>.json`
/// on [`BenchJson::finish`] (or on drop, if `finish` was not called).
pub struct BenchJson {
    fig: String,
    rows: Vec<String>,
    written: bool,
}

impl BenchJson {
    /// Start collecting rows for figure `fig` (e.g. `"fig17"`).
    pub fn new(fig: &str) -> BenchJson {
        BenchJson {
            fig: fig.to_string(),
            rows: Vec::new(),
            written: false,
        }
    }

    /// Append one row of named fields, in the given order.
    pub fn row(&mut self, fields: &[(&str, JsonValue)]) {
        let mut obj = String::from("{");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                obj.push_str(", ");
            }
            obj.push('"');
            escape_into(&mut obj, k);
            obj.push_str("\": ");
            value_into(&mut obj, v);
        }
        obj.push('}');
        self.rows.push(obj);
    }

    /// The output path: `$PDT_BENCH_JSON_DIR/BENCH_<fig>.json` (or the
    /// working directory when the variable is unset).
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var_os("PDT_BENCH_JSON_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        dir.join(format!("BENCH_{}.json", self.fig))
    }

    /// Write the collected rows. Failures warn on stderr; they never fail
    /// the bench.
    pub fn finish(mut self) {
        self.write_out();
    }

    fn write_out(&mut self) {
        if self.written {
            return;
        }
        self.written = true;
        let mut doc = format!("{{\"bench\": \"{}\", \"rows\": [\n", self.fig);
        for (i, r) in self.rows.iter().enumerate() {
            doc.push_str("  ");
            doc.push_str(r);
            doc.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        doc.push_str("]}\n");
        let path = self.path();
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("warning: failed to write {}: {e}", path.display());
        } else {
            println!("# wrote {}", path.display());
        }
    }
}

impl Drop for BenchJson {
    fn drop(&mut self) {
        self.write_out();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serialize_and_file_is_written() {
        let dir = std::env::temp_dir().join(format!("pdt_bench_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("PDT_BENCH_JSON_DIR", &dir);
        let mut j = BenchJson::new("figtest");
        j.row(&[
            ("rows", 1_000_000u64.into()),
            ("key", "int".into()),
            ("ms", 1.25f64.into()),
            ("large", false.into()),
            ("note", "a \"quoted\" name".into()),
        ]);
        let path = j.path();
        j.finish();
        std::env::remove_var("PDT_BENCH_JSON_DIR");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bench\": \"figtest\""), "{text}");
        assert!(text.contains("\"rows\": 1000000"), "{text}");
        assert!(text.contains("\"ms\": 1.25"), "{text}");
        assert!(text.contains("\\\"quoted\\\""), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
