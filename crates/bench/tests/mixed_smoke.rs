//! CI smoke test for the mixed-workload driver: a fixed-seed run with
//! 2 query sessions + 1 refresh session against a partitioned database
//! with background maintenance on, checked for *correctness* (the
//! concurrent run's final table images equal a sequentially refreshed
//! reference) and for metrics plumbing — no wall-clock assertions.

use bench::mixed::{run_mixed_with_db, MixedConfig};
use engine::{TableOptions, UpdatePolicy};
use exec::run_to_rows;
use tpch::{apply_rf1, apply_rf2, generate, load_database, RefreshStreams};

fn image(db: &engine::Database, table: &str) -> Vec<columnar::Tuple> {
    let view = db.read_view();
    let ncols = view.table(table).unwrap().schema().len();
    let mut scan = view.scan(table, (0..ncols).collect()).unwrap();
    run_to_rows(&mut scan)
}

#[test]
fn mixed_workload_smoke() {
    let cfg = MixedConfig {
        sf: 0.005,
        partitions: 2,
        policy: UpdatePolicy::Pdt,
        query_sessions: 2,
        refresh_sessions: 1,
        query_ids: vec![1, 6],
        queries_per_session: 3,
        refresh_batch: 16,
        ..MixedConfig::default()
    };
    let (report, db) = run_mixed_with_db(&cfg);

    // every session ran its share
    assert_eq!(report.queries.ops, 6, "2 sessions x 3 queries");
    assert!(report.refresh.ops > 0, "refresh committed");
    assert_eq!(
        report.metrics.total_queries(),
        6,
        "registry saw every query"
    );
    assert_eq!(report.metrics.total_commits(), report.refresh.ops);
    let ql = report.queries.latency.expect("query latency recorded");
    assert_eq!(ql.count, 6);
    assert!(ql.p50_ns <= ql.p99_ns);
    let rl = report.refresh.latency.expect("refresh latency recorded");
    assert_eq!(rl.count as u64, report.refresh.ops);
    // per-label query latency reached the shared registry: each of the
    // 2 sessions cycles q01, q06, q01
    for (label, runs) in [("q01", 4), ("q06", 2)] {
        let t = report
            .metrics
            .tables
            .iter()
            .find(|t| t.name == label)
            .unwrap_or_else(|| panic!("missing label {label}"));
        assert_eq!(t.scan_latency.as_ref().unwrap().count, runs);
    }
    // both refreshed tables saw every refresh commit
    for table in ["orders", "lineitem"] {
        let t = report
            .metrics
            .tables
            .iter()
            .find(|t| t.name == table)
            .unwrap_or_else(|| panic!("missing table {table}"));
        assert_eq!(t.counters.commits, report.refresh.ops);
    }
    assert!(
        report.maintenance.is_some(),
        "scheduler ran (maintenance on)"
    );

    // with one refresh session the committed write set is deterministic:
    // the final image must equal a sequentially refreshed reference
    let data = generate(cfg.sf);
    let streams = RefreshStreams::build(&data, cfg.refresh_fraction);
    let reference = load_database(
        &data,
        TableOptions::default().with_policy(UpdatePolicy::Pdt),
    );
    apply_rf1(&reference, &streams, cfg.refresh_batch).unwrap();
    apply_rf2(&reference, &streams, cfg.refresh_batch).unwrap();
    for table in ["orders", "lineitem"] {
        assert_eq!(
            image(&db, table),
            image(&reference, table),
            "{table} image diverged from the sequential reference"
        );
    }
}
