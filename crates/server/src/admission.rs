//! Admission control: keep writers from outrunning maintenance.
//!
//! A table's delta structures are RAM-resident; the maintenance scheduler
//! retires them by checkpointing partitions whose committed delta exceeds
//! the per-partition byte budget
//! ([`engine::TableOptions::checkpoint_threshold_bytes`]). A write
//! workload that sustains more delta than maintenance can fold would grow
//! the delta without bound. The server therefore gates every transaction's
//! *first* write to a table on the table's total delta footprint:
//!
//! * below `soft_multiple ×` the table's checkpoint budget — admit
//!   immediately;
//! * above it — poke the scheduler and **delay** the writer (bounded by
//!   [`AdmissionConfig::max_delay`], re-checking every
//!   [`AdmissionConfig::retry_tick`]) so maintenance can catch up;
//! * still above `hard_multiple ×` the budget when the delay budget is
//!   exhausted — **reject** with [`crate::ServerError::Backpressure`]. The
//!   session can retry after maintenance (or an explicit checkpoint)
//!   drains the table.
//!
//! The budget is `checkpoint_threshold_bytes × partition_count`, i.e. the
//! table-wide footprint the scheduler is configured to tolerate before it
//! starts folding slices.

use std::time::Duration;

/// Backpressure knobs (see the module docs for the three-zone scheme).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Delay writes once `delta_bytes(table)` exceeds this multiple of
    /// the table's checkpoint budget. Default 2.0.
    pub soft_multiple: f64,
    /// Reject writes still over this multiple after the delay budget is
    /// spent. Default 4.0.
    pub hard_multiple: f64,
    /// Total delay budget per admission check. Default 50 ms.
    pub max_delay: Duration,
    /// Re-check cadence while delaying. Default 1 ms.
    pub retry_tick: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            soft_multiple: 2.0,
            hard_multiple: 4.0,
            max_delay: Duration::from_millis(50),
            retry_tick: Duration::from_millis(1),
        }
    }
}

impl AdmissionConfig {
    /// No backpressure: writes are always admitted.
    pub fn disabled() -> Self {
        AdmissionConfig {
            soft_multiple: f64::INFINITY,
            hard_multiple: f64::INFINITY,
            max_delay: Duration::ZERO,
            retry_tick: Duration::from_millis(1),
        }
    }

    /// `(soft, hard)` byte limits for a table-wide checkpoint budget.
    pub(crate) fn limits(&self, budget_bytes: usize) -> (usize, usize) {
        let scale = |m: f64| -> usize {
            let v = budget_bytes as f64 * m;
            if v >= usize::MAX as f64 {
                usize::MAX
            } else {
                v as usize
            }
        };
        (scale(self.soft_multiple), scale(self.hard_multiple))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_scale_and_saturate() {
        let cfg = AdmissionConfig::default();
        assert_eq!(cfg.limits(100), (200, 400));
        let off = AdmissionConfig::disabled();
        assert_eq!(off.limits(100), (usize::MAX, usize::MAX));
    }
}
