//! Bounded worker pool for thread-per-session execution.
//!
//! `std` only: jobs travel over an `mpsc` channel whose receiver the
//! workers share behind a mutex (the classic single-queue pool). The
//! *bound* is enforced by the server, which counts in-flight sessions and
//! refuses submissions past the pool size — a serving layer should tell
//! the client it is saturated, not queue unboundedly.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

pub(crate) struct WorkerPool {
    tx: Option<mpsc::Sender<Job>>,
    inflight: Arc<AtomicUsize>,
    limit: usize,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    pub fn new(limit: usize) -> Self {
        let limit = limit.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..limit)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("session-worker-{i}"))
                    .spawn(move || loop {
                        // hold the receiver lock only while dequeueing
                        let job = rx.lock().recv();
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // sender dropped: shutdown
                        }
                    })
                    .expect("spawn session worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            inflight: Arc::new(AtomicUsize::new(0)),
            limit,
            workers,
        }
    }

    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Reserve an in-flight slot; `Err` when the pool is saturated. The
    /// job submitted against the reservation must release it (decrement)
    /// when it finishes.
    pub fn try_reserve(&self) -> Result<Arc<AtomicUsize>, usize> {
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= self.limit {
                return Err(self.limit);
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(self.inflight.clone()),
                Err(now) => cur = now,
            }
        }
    }

    /// Enqueue a job; `Err` after shutdown.
    pub fn submit(&self, job: Job) -> Result<(), ()> {
        match &self.tx {
            Some(tx) => tx.send(job).map_err(|_| ()),
            None => Err(()),
        }
    }

    /// Stop accepting jobs, let queued ones finish, join the workers.
    pub fn shutdown(&mut self) {
        self.tx = None; // closes the channel; workers drain then exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}
