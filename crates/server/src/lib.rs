//! # Concurrent session front end
//!
//! The engine ([`engine::Database`]) is a library: one process, direct
//! calls, the caller orchestrates maintenance. This crate is the serving
//! layer on top — the piece a "heavy traffic" deployment of the paper's
//! differential update architecture needs:
//!
//! * a [`Server`] owning one `Arc<Database>` plus (optionally) the
//!   background [`MaintenanceScheduler`];
//! * independent [`Session`] handles, safe to use from any thread, with
//!   [`Server::spawn`] running a session closure on a **bounded** worker
//!   pool (thread-per-session; saturation is reported as
//!   [`ServerError::Busy`], not queued unboundedly);
//! * write **admission control** ([`AdmissionConfig`]): a transaction's
//!   first write to a table is delayed — with a poke to the scheduler —
//!   or rejected ([`ServerError::Backpressure`]) when the table's delta
//!   bytes exceed a multiple of its maintenance budget, so sustained
//!   writers cannot outrun checkpointing and grow the delta without
//!   bound;
//! * per-table and per-session **metrics** ([`MetricsSnapshot`]): commit
//!   and query latency percentiles (p50/p95/p99 via
//!   [`exec::LatencyStats`]), throughput, abort/conflict/backpressure
//!   counters.
//!
//! Durability rides the engine's group-commit WAL path: sessions
//! committing concurrently enqueue their records under the commit guard
//! and share one append/fsync window (see `txn::wal::GroupWal`), which is
//! what makes many small concurrent transactions cheap.
//!
//! ```no_run
//! # use std::sync::Arc;
//! # use engine::Database;
//! # use server::{Server, ServerConfig};
//! let db = Arc::new(Database::new());
//! // ... create tables ...
//! let server = Server::start(db, ServerConfig::default());
//! let h = server.spawn("writer", |session| {
//!     let txn = session.begin();
//!     // txn.append(...)?; txn.commit()?
//!     txn.commit()
//! }).unwrap();
//! h.join().unwrap().unwrap();
//! println!("{}", server.metrics());
//! ```

pub mod admission;
pub mod metrics;
mod pool;

pub use admission::AdmissionConfig;
pub use metrics::{CounterSnapshot, MetricsSnapshot, SessionMetricsSnapshot, TableMetricsSnapshot};

use columnar::{ColumnVec, Tuple};
use engine::{
    Database, DbError, DbTxn, MaintenanceConfig, MaintenanceScheduler, MaintenanceStats, ReadView,
    ScanSpec,
};
use exec::expr::Expr;
use exec::{Batch, ScanBounds, TableScan};
use metrics::{Registry, SessionMetrics};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Serving-layer failure.
#[derive(Debug)]
pub enum ServerError {
    /// The underlying engine call failed (conflicts surface here too).
    Db(DbError),
    /// Admission control rejected a write: the table's delta exceeds the
    /// hard backpressure limit and the delay budget did not drain it.
    /// Retry after maintenance (or an explicit checkpoint) catches up.
    Backpressure {
        table: String,
        delta_bytes: usize,
        limit_bytes: usize,
    },
    /// Every worker of the bounded session pool is busy.
    Busy { limit: usize },
    /// A spawned session closure panicked.
    SessionPanicked(String),
    /// The server was shut down.
    Shutdown,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Db(e) => write!(f, "database error: {e}"),
            ServerError::Backpressure {
                table,
                delta_bytes,
                limit_bytes,
            } => write!(
                f,
                "backpressure on table {table}: {delta_bytes} delta bytes exceed \
                 the {limit_bytes}-byte admission limit"
            ),
            ServerError::Busy { limit } => {
                write!(f, "session pool saturated ({limit} workers busy)")
            }
            ServerError::SessionPanicked(m) => write!(f, "session panicked: {m}"),
            ServerError::Shutdown => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for ServerError {
    fn from(e: DbError) -> Self {
        ServerError::Db(e)
    }
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker-pool size = maximum concurrently running spawned sessions.
    /// Default 8.
    pub max_sessions: usize,
    /// Background maintenance cadence; `None` runs no scheduler (the
    /// caller checkpoints explicitly). Default: the engine's default
    /// cadence.
    pub maintenance: Option<MaintenanceConfig>,
    /// Write admission control. Default: [`AdmissionConfig::default`].
    pub admission: AdmissionConfig,
    /// Slow-query log threshold: a [`Session::query`] taking at least
    /// this long emits an `obs` `slow.scan` trace event (when tracing is
    /// enabled) carrying the query label and wall time. `None` (the
    /// default) never emits. The commit-side analogue is
    /// [`engine::TableOptions::slow_commit_threshold`].
    pub slow_query_threshold: Option<std::time::Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 8,
            maintenance: Some(MaintenanceConfig::default()),
            admission: AdmissionConfig::default(),
            slow_query_threshold: None,
        }
    }
}

struct Shared {
    db: Arc<Database>,
    admission: AdmissionConfig,
    slow_query_threshold: Option<std::time::Duration>,
    metrics: Registry,
    /// Owned here (not by `Server`) so sessions can poke it; taken out on
    /// shutdown.
    sched: Mutex<Option<MaintenanceScheduler>>,
}

impl Shared {
    fn poke_maintenance(&self) {
        if let Some(s) = &*self.sched.lock() {
            s.poke();
        }
    }
}

/// The serving front end: owns the database and its maintenance, hands
/// out [`Session`]s.
pub struct Server {
    shared: Arc<Shared>,
    pool: pool::WorkerPool,
}

impl Server {
    /// Start serving `db`: spin up the worker pool and (per
    /// [`ServerConfig::maintenance`]) the background maintenance
    /// scheduler.
    pub fn start(db: Arc<Database>, cfg: ServerConfig) -> Server {
        let sched = cfg
            .maintenance
            .map(|m| MaintenanceScheduler::start(db.clone(), m));
        Server {
            shared: Arc::new(Shared {
                db,
                admission: cfg.admission,
                slow_query_threshold: cfg.slow_query_threshold,
                metrics: Registry::new(),
                sched: Mutex::new(sched),
            }),
            pool: pool::WorkerPool::new(cfg.max_sessions),
        }
    }

    /// Cold-start a storage-backed server: open (or create) the database
    /// at `wal` with persisted checkpoint images under `image_dir`, let
    /// `register` declare the schema, then recover — checkpointed
    /// partitions are rebuilt from their compressed images and only the
    /// WAL tail past each checkpoint marker is replayed — and start
    /// serving. This is the restart path of a durable deployment: the
    /// folded history a checkpoint dropped from replay comes back from
    /// the images, not the log.
    pub fn cold_start(
        wal: &std::path::Path,
        image_dir: &std::path::Path,
        register: impl FnOnce(&Database) -> Result<(), DbError>,
        cfg: ServerConfig,
    ) -> Result<Server, ServerError> {
        let db = Database::with_storage(wal, image_dir)?;
        register(&db)?;
        if wal.exists() {
            db.recover_from(wal)?;
        }
        Ok(Self::start(Arc::new(db), cfg))
    }

    /// The served database.
    pub fn db(&self) -> &Arc<Database> {
        &self.shared.db
    }

    /// Open a session used from the calling thread. Sessions are
    /// independent: each transaction gets its own snapshot, commits are
    /// coordinated by the engine.
    pub fn session(&self, name: &str) -> Session {
        Session {
            shared: self.shared.clone(),
            metrics: self.shared.metrics.session(name),
        }
    }

    /// Run a session closure on the bounded worker pool
    /// (thread-per-session). Returns [`ServerError::Busy`] when all
    /// workers are occupied — the caller decides whether to retry.
    pub fn spawn<T, F>(&self, name: &str, f: F) -> Result<SessionHandle<T>, ServerError>
    where
        T: Send + 'static,
        F: FnOnce(&Session) -> T + Send + 'static,
    {
        let slot = self
            .pool
            .try_reserve()
            .map_err(|limit| ServerError::Busy { limit })?;
        let session = self.session(name);
        let (tx, rx) = mpsc::channel();
        let job = Box::new(move || {
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&session)));
            slot.fetch_sub(1, Relaxed);
            let _ = tx.send(out.map_err(|p| {
                p.downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string())
            }));
        });
        self.pool.submit(job).map_err(|()| ServerError::Shutdown)?;
        Ok(SessionHandle { rx })
    }

    /// Maximum concurrently running spawned sessions.
    pub fn max_sessions(&self) -> usize {
        self.pool.limit()
    }

    /// Freeze and return all serving metrics, including the maintenance
    /// scheduler's flush/checkpoint/compaction counters when one runs.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared
            .metrics
            .snapshot(&self.shared.db, self.maintenance_stats())
    }

    /// The maintenance scheduler's counters (`None` when maintenance is
    /// disabled).
    pub fn maintenance_stats(&self) -> Option<MaintenanceStats> {
        self.shared.sched.lock().as_ref().map(|s| s.stats())
    }

    /// Wake the maintenance workers now (admission control does this
    /// automatically when a table runs hot).
    pub fn poke_maintenance(&self) {
        self.shared.poke_maintenance();
    }

    /// Run maintenance to quiescence (test/benchmark support). No-op
    /// without a scheduler.
    pub fn drain_maintenance(&self) -> Result<(), DbError> {
        match &*self.shared.sched.lock() {
            Some(s) => s.drain(),
            None => Ok(()),
        }
    }

    /// Stop the worker pool (letting queued sessions finish) and the
    /// maintenance scheduler; returns the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.pool.shutdown();
        let maint = if let Some(s) = self.shared.sched.lock().take() {
            let stats = s.stats();
            s.shutdown();
            Some(stats)
        } else {
            None
        };
        self.shared.metrics.snapshot(&self.shared.db, maint)
    }
}

/// Handle to a session closure running on the pool.
pub struct SessionHandle<T> {
    rx: mpsc::Receiver<Result<T, String>>,
}

impl<T> SessionHandle<T> {
    /// Block until the session closure finishes and return its result.
    pub fn join(self) -> Result<T, ServerError> {
        match self.rx.recv() {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(panic)) => Err(ServerError::SessionPanicked(panic)),
            Err(_) => Err(ServerError::Shutdown),
        }
    }
}

/// One client's handle onto the server: begin transactions, run queries,
/// read its own metrics. Cheap to create; safe to move across threads.
pub struct Session {
    shared: Arc<Shared>,
    metrics: Arc<SessionMetrics>,
}

impl Session {
    pub fn name(&self) -> &str {
        &self.metrics.name
    }

    /// The served database (for reads that bypass metrics, e.g. schema
    /// introspection).
    pub fn db(&self) -> &Arc<Database> {
        &self.shared.db
    }

    /// Begin a read-write transaction through the session (admission
    /// control gates its first write per table; commit records latency).
    pub fn begin(&self) -> SessionTxn<'_> {
        SessionTxn {
            session: self,
            txn: Some(self.shared.db.begin()),
            touched: Vec::new(),
        }
    }

    /// A consistent read-only view (not latency-tracked; use
    /// [`Session::query`] for measured work).
    pub fn read_view(&self) -> ReadView {
        self.shared.db.read_view()
    }

    /// Run a read-only query under a fresh view, recording its latency in
    /// the session's query stats and under `label` in the shared registry
    /// (pass a table name or a query id like `"q06"` — the label is the
    /// reporting key).
    pub fn query<T>(&self, label: &str, f: impl FnOnce(&ReadView) -> T) -> T {
        let view = self.shared.db.read_view();
        let t0 = Instant::now();
        let out = f(&view);
        let elapsed = t0.elapsed();
        self.metrics.queries.fetch_add(1, Relaxed);
        self.metrics.query_latency.record(elapsed);
        self.shared
            .metrics
            .table(label)
            .scan_latency
            .record(elapsed);
        // slow-query log: a structured trace event keyed by the query
        // label, so the drain can correlate it with the scan's I/O
        if obs::trace::enabled() {
            if let Some(th) = self.shared.slow_query_threshold {
                if elapsed >= th {
                    obs::event!(
                        obs::TraceKind::SlowScan,
                        table: obs::trace::intern(label),
                        dur_ns: elapsed.as_nanos() as u64,
                    );
                }
            }
        }
        out
    }

    /// This session's frozen metrics.
    pub fn metrics(&self) -> SessionMetricsSnapshot {
        let s = &self.metrics;
        SessionMetricsSnapshot {
            name: s.name.clone(),
            counters: CounterSnapshot {
                commits: s.counters.commits.load(Relaxed),
                aborts: s.counters.aborts.load(Relaxed),
                conflicts: s.counters.conflicts.load(Relaxed),
                delays: s.counters.delays.load(Relaxed),
                rejects: s.counters.rejects.load(Relaxed),
            },
            queries: s.queries.load(Relaxed),
            commit_latency: s.commit_latency.summary(),
            query_latency: s.query_latency.summary(),
        }
    }

    /// Admission check for a write to `table` (see [`admission`]): admit,
    /// delay (poking maintenance), or reject with
    /// [`ServerError::Backpressure`].
    fn admit(&self, table: &str) -> Result<(), ServerError> {
        let shared = &self.shared;
        let cfg = &shared.admission;
        let opts = shared.db.options(table)?;
        let parts = shared.db.partition_count(table)?;
        let budget = opts.checkpoint_threshold_bytes.saturating_mul(parts);
        let (soft, hard) = cfg.limits(budget);
        let mut bytes = shared.db.delta_bytes(table)?;
        if bytes <= soft {
            return Ok(());
        }
        // over the soft limit: charge a delay, wake maintenance, and give
        // it up to `max_delay` to drain the table under us
        self.metrics.counters.delays.fetch_add(1, Relaxed);
        shared
            .metrics
            .table(table)
            .counters
            .delays
            .fetch_add(1, Relaxed);
        let trace_table = obs::trace::enabled().then(|| obs::trace::intern(table));
        let t0 = Instant::now();
        let waited = loop {
            shared.poke_maintenance();
            if t0.elapsed() >= cfg.max_delay {
                break false;
            }
            std::thread::sleep(cfg.retry_tick.min(cfg.max_delay));
            bytes = shared.db.delta_bytes(table)?;
            if bytes <= soft {
                break true;
            }
        };
        if let Some(t) = trace_table {
            obs::event!(
                obs::TraceKind::AdmissionDelay,
                table: t,
                dur_ns: t0.elapsed().as_nanos() as u64,
                a: bytes as u64,
                b: soft as u64,
            );
        }
        if waited {
            return Ok(());
        }
        if bytes > hard {
            self.metrics.counters.rejects.fetch_add(1, Relaxed);
            shared
                .metrics
                .table(table)
                .counters
                .rejects
                .fetch_add(1, Relaxed);
            if let Some(t) = trace_table {
                obs::event!(
                    obs::TraceKind::AdmissionReject,
                    table: t,
                    a: bytes as u64,
                    b: hard as u64,
                );
            }
            return Err(ServerError::Backpressure {
                table: table.to_string(),
                delta_bytes: bytes,
                limit_bytes: hard,
            });
        }
        // between soft and hard: admitted after the delay (backpressure
        // smooths, the hard limit walls)
        Ok(())
    }
}

/// A transaction opened through a [`Session`]: the engine's [`DbTxn`]
/// plus admission control on the first write per table and commit/abort
/// metrics. Dropping without committing aborts (and counts an abort).
pub struct SessionTxn<'s> {
    session: &'s Session,
    txn: Option<DbTxn<'s>>,
    touched: Vec<String>,
}

impl<'s> SessionTxn<'s> {
    fn txn_mut(&mut self) -> &mut DbTxn<'s> {
        self.txn.as_mut().expect("transaction still open")
    }

    /// Declare a write to `table`: runs the admission check once per
    /// table per transaction. The typed write wrappers call this
    /// implicitly; callers staging through [`SessionTxn::raw`] call it
    /// themselves.
    pub fn touch(&mut self, table: &str) -> Result<(), ServerError> {
        if self.touched.iter().any(|t| t == table) {
            return Ok(());
        }
        self.session.admit(table)?;
        self.touched.push(table.to_string());
        Ok(())
    }

    /// The underlying engine transaction, for statements without a
    /// wrapper. Pair writes with [`SessionTxn::touch`] so admission
    /// control and per-table metrics still see them.
    pub fn raw(&mut self) -> &mut DbTxn<'s> {
        self.txn_mut()
    }

    /// Batched columnar append (see [`DbTxn::append`]).
    pub fn append(&mut self, table: &str, rows: Batch) -> Result<usize, ServerError> {
        self.touch(table)?;
        Ok(self.txn_mut().append(table, rows)?)
    }

    /// One-row insert (see [`DbTxn::insert`]).
    pub fn insert(&mut self, table: &str, tuple: Tuple) -> Result<(), ServerError> {
        self.touch(table)?;
        Ok(self.txn_mut().insert(table, tuple)?)
    }

    /// Positional batch delete (see [`DbTxn::delete_rids`]).
    pub fn delete_rids(&mut self, table: &str, rids: &[u64]) -> Result<usize, ServerError> {
        self.touch(table)?;
        Ok(self.txn_mut().delete_rids(table, rids)?)
    }

    /// Positional single-column update (see [`DbTxn::update_col`]).
    pub fn update_col(
        &mut self,
        table: &str,
        rids: &[u64],
        col: usize,
        values: ColumnVec,
    ) -> Result<usize, ServerError> {
        self.touch(table)?;
        Ok(self.txn_mut().update_col(table, rids, col, values)?)
    }

    /// Predicate delete (see [`DbTxn::delete_where`]).
    pub fn delete_where(&mut self, table: &str, pred: Expr) -> Result<usize, ServerError> {
        self.touch(table)?;
        Ok(self.txn_mut().delete_where(table, pred)?)
    }

    /// Range-restricted predicate delete (see [`DbTxn::delete_where_ranged`]).
    pub fn delete_where_ranged(
        &mut self,
        table: &str,
        pred: Expr,
        bounds: ScanBounds,
    ) -> Result<usize, ServerError> {
        self.touch(table)?;
        Ok(self.txn_mut().delete_where_ranged(table, pred, bounds)?)
    }

    /// Predicate update (see [`DbTxn::update_where`]).
    pub fn update_where(
        &mut self,
        table: &str,
        pred: Expr,
        sets: Vec<(usize, Expr)>,
    ) -> Result<usize, ServerError> {
        self.touch(table)?;
        Ok(self.txn_mut().update_where(table, pred, sets)?)
    }

    /// Scan under the transaction's own view (reads are not gated).
    pub fn scan_with(&self, table: &str, spec: ScanSpec) -> Result<TableScan<'_>, ServerError> {
        Ok(self
            .txn
            .as_ref()
            .expect("transaction still open")
            .scan_with(table, spec)?)
    }

    /// Visible row count under the transaction's view.
    pub fn visible_rows(&self, table: &str) -> Result<u64, ServerError> {
        Ok(self
            .txn
            .as_ref()
            .expect("transaction still open")
            .visible_rows(table)?)
    }

    /// Commit, recording latency per session and per touched table.
    /// Conflicts count as aborts (and conflicts) in the metrics.
    pub fn commit(mut self) -> Result<u64, ServerError> {
        let txn = self.txn.take().expect("transaction still open");
        let counters = &self.session.metrics.counters;
        let t0 = Instant::now();
        match txn.commit() {
            Ok(seq) => {
                let elapsed = t0.elapsed();
                counters.commits.fetch_add(1, Relaxed);
                self.session.metrics.commit_latency.record(elapsed);
                for table in &self.touched {
                    let tm = self.session.shared.metrics.table(table);
                    tm.counters.commits.fetch_add(1, Relaxed);
                    tm.commit_latency.record(elapsed);
                }
                Ok(seq)
            }
            Err(e) => {
                counters.aborts.fetch_add(1, Relaxed);
                let conflict = matches!(
                    e,
                    DbError::Conflict { .. } | DbError::Txn(txn::TxnError::Conflict { .. })
                );
                if conflict {
                    counters.conflicts.fetch_add(1, Relaxed);
                }
                for table in &self.touched {
                    let tm = self.session.shared.metrics.table(table);
                    tm.counters.aborts.fetch_add(1, Relaxed);
                    if conflict {
                        tm.counters.conflicts.fetch_add(1, Relaxed);
                    }
                }
                Err(e.into())
            }
        }
    }

    /// Abort, discarding all staged updates.
    pub fn abort(mut self) {
        if let Some(txn) = self.txn.take() {
            txn.abort();
            self.session.metrics.counters.aborts.fetch_add(1, Relaxed);
        }
    }
}

impl Drop for SessionTxn<'_> {
    fn drop(&mut self) {
        if let Some(txn) = self.txn.take() {
            txn.abort();
            self.session.metrics.counters.aborts.fetch_add(1, Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::{Schema, TableMeta, Value, ValueType};
    use engine::{TableOptions, UpdatePolicy, ALL_POLICIES};
    use exec::run_to_rows;
    use std::time::Duration;

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)])
    }

    fn rows(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| vec![Value::Int(i), Value::Int(i * 10)])
            .collect()
    }

    fn db_with(policy: UpdatePolicy, opts: TableOptions) -> Arc<Database> {
        let db = Arc::new(Database::new());
        db.create_table(
            TableMeta::new("t", schema(), vec![0]),
            opts.with_policy(policy),
            rows(1000),
        )
        .unwrap();
        db
    }

    fn batch(lo: i64, n: i64) -> Batch {
        let rows: Vec<Tuple> = (lo..lo + n)
            .map(|i| vec![Value::Int(i), Value::Int(0)])
            .collect();
        Batch::from_rows(&[ValueType::Int, ValueType::Int], &rows)
    }

    #[test]
    fn sessions_commit_concurrently_and_metrics_accumulate() {
        let db = db_with(UpdatePolicy::Pdt, TableOptions::default());
        let server = Server::start(
            db,
            ServerConfig {
                max_sessions: 4,
                maintenance: None,
                ..ServerConfig::default()
            },
        );
        let mut handles = Vec::new();
        for w in 0..4i64 {
            handles.push(
                server
                    .spawn(&format!("writer-{w}"), move |s| {
                        for i in 0..5i64 {
                            let mut txn = s.begin();
                            txn.append("t", batch(10_000 + w * 1000 + i * 10, 5))
                                .unwrap();
                            txn.commit().unwrap();
                        }
                        s.query("t", |view| {
                            let mut scan = view.scan_with("t", ScanSpec::all()).unwrap();
                            run_to_rows(&mut scan).len()
                        })
                    })
                    .unwrap(),
            );
        }
        for h in handles {
            assert!(h.join().unwrap() >= 1000);
        }
        let m = server.shutdown();
        assert_eq!(m.total_commits(), 20);
        assert_eq!(m.total_queries(), 4);
        let t = m.tables.iter().find(|t| t.name == "t").unwrap();
        assert_eq!(t.counters.commits, 20);
        assert_eq!(t.commit_latency.unwrap().count, 20);
        assert_eq!(t.scan_latency.unwrap().count, 4);
        assert!(m.commits_per_sec() > 0.0);
    }

    /// Restarting the server must bring back checkpointed state through
    /// the persisted compressed images: the checkpoint's WAL marker stops
    /// replay at the pinned sequence, so the folded commits can only come
    /// back from disk images.
    #[test]
    fn cold_start_restores_checkpointed_state_from_images() {
        let dir = std::env::temp_dir().join(format!("pdt_srv_cold_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("db.wal");
        let images = dir.join("images");
        let register = |db: &Database| {
            db.create_table(
                TableMeta::new("t", schema(), vec![0]),
                TableOptions::default().with_policy(UpdatePolicy::Pdt),
                rows(100),
            )
            .map(|_| ())
        };
        let want = {
            let server = Server::cold_start(
                &wal,
                &images,
                register,
                ServerConfig {
                    maintenance: None,
                    ..ServerConfig::default()
                },
            )
            .unwrap();
            let s = server.session("writer");
            let mut txn = s.begin();
            txn.append("t", batch(10_000, 5)).unwrap();
            txn.delete_where("t", exec::expr::col(0).lt(exec::expr::lit(10i64)))
                .unwrap();
            txn.commit().unwrap();
            // fold the commit into a persisted image, then one more
            // commit so recovery also replays a WAL tail
            assert!(server.db().checkpoint("t").unwrap());
            let mut txn = s.begin();
            txn.append("t", batch(20_000, 3)).unwrap();
            txn.commit().unwrap();
            let got = s.query("t", |view| {
                run_to_rows(&mut view.scan_with("t", ScanSpec::all()).unwrap())
            });
            server.shutdown();
            got
        };
        let server = Server::cold_start(
            &wal,
            &images,
            register,
            ServerConfig {
                maintenance: None,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let got = server.session("reader").query("t", |view| {
            run_to_rows(&mut view.scan_with("t", ScanSpec::all()).unwrap())
        });
        assert_eq!(got, want, "cold start diverged from pre-restart state");
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pool_saturation_reports_busy() {
        let db = db_with(UpdatePolicy::Pdt, TableOptions::default());
        let server = Server::start(
            db,
            ServerConfig {
                max_sessions: 1,
                maintenance: None,
                ..ServerConfig::default()
            },
        );
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let h = server
            .spawn("blocker", move |_| {
                block_rx.recv().ok();
            })
            .unwrap();
        let err = loop {
            // the worker may not have dequeued yet; Busy is based on
            // in-flight reservations, so the second spawn must fail
            match server.spawn("rejected", |_| ()) {
                Err(e) => break e,
                Ok(extra) => {
                    // raced with the first job finishing? impossible: it
                    // blocks on the channel — only reachable if reserve
                    // raced; drain and retry
                    extra.join().unwrap();
                }
            }
        };
        assert!(matches!(err, ServerError::Busy { limit: 1 }), "{err}");
        block_tx.send(()).unwrap();
        h.join().unwrap();
        server.shutdown();
    }

    #[test]
    fn spawned_panic_is_contained() {
        let db = db_with(UpdatePolicy::Pdt, TableOptions::default());
        let server = Server::start(
            db,
            ServerConfig {
                max_sessions: 2,
                maintenance: None,
                ..ServerConfig::default()
            },
        );
        let h = server.spawn("doomed", |_| panic!("boom")).unwrap();
        match h.join() {
            Err(ServerError::SessionPanicked(m)) => assert!(m.contains("boom")),
            other => panic!("expected SessionPanicked, got {other:?}"),
        }
        // the pool worker survived the panic
        let h = server.spawn("fine", |_| 7).unwrap();
        assert_eq!(h.join().unwrap(), 7);
        server.shutdown();
    }

    #[test]
    fn conflict_counts_as_abort_and_conflict() {
        let db = db_with(UpdatePolicy::Pdt, TableOptions::default());
        let server = Server::start(
            db,
            ServerConfig {
                maintenance: None,
                ..ServerConfig::default()
            },
        );
        let s = server.session("clasher");
        let mut a = s.begin();
        let mut b = s.begin();
        a.update_col("t", &[5], 1, ColumnVec::Int(vec![1])).unwrap();
        b.update_col("t", &[5], 1, ColumnVec::Int(vec![2])).unwrap();
        a.commit().unwrap();
        let err = b.commit().unwrap_err();
        assert!(matches!(err, ServerError::Db(_)), "{err}");
        let m = s.metrics();
        assert_eq!(m.counters.commits, 1);
        assert_eq!(m.counters.aborts, 1);
        assert_eq!(m.counters.conflicts, 1);
        // dropped-without-commit counts an abort
        {
            let mut c = s.begin();
            c.append("t", batch(50_000, 3)).unwrap();
        }
        assert_eq!(s.metrics().counters.aborts, 2);
        server.shutdown();
    }

    /// Satellite: a session that sustains writes with maintenance disabled
    /// must get delayed/rejected (not grow the delta without bound), and
    /// resume once a checkpoint drains the table — across all policies.
    #[test]
    fn backpressure_rejects_then_recovers_after_checkpoint() {
        for policy in ALL_POLICIES {
            // tiny budget so a few appends cross it; no maintenance
            let opts = TableOptions {
                checkpoint_threshold_bytes: 4 << 10,
                flush_threshold_bytes: 1 << 10,
                ..TableOptions::default()
            };
            let db = db_with(policy, opts);
            let server = Server::start(
                db.clone(),
                ServerConfig {
                    maintenance: None,
                    admission: AdmissionConfig {
                        soft_multiple: 1.0,
                        hard_multiple: 2.0,
                        max_delay: Duration::from_millis(4),
                        retry_tick: Duration::from_millis(1),
                    },
                    ..ServerConfig::default()
                },
            );
            let s = server.session("firehose");
            let mut rejected = None;
            let mut next = 100_000i64;
            for _ in 0..10_000 {
                let mut txn = s.begin();
                match txn.append("t", batch(next, 64)) {
                    Ok(_) => {
                        next += 64;
                        txn.commit().unwrap();
                    }
                    Err(e) => {
                        rejected = Some(e);
                        break;
                    }
                }
            }
            let err = rejected
                .unwrap_or_else(|| panic!("{policy:?}: sustained writes were never backpressured"));
            assert!(
                matches!(err, ServerError::Backpressure { .. }),
                "{policy:?}: {err}"
            );
            let hard = (4096 * 2) as usize;
            let bytes = db.delta_bytes("t").unwrap();
            // the delta stopped growing near the hard limit instead of
            // absorbing all 10k batches (the "not OOM" half); generous
            // slack for one admitted transaction's overshoot
            assert!(
                bytes < hard * 16,
                "{policy:?}: delta grew to {bytes} despite backpressure"
            );
            let m = s.metrics();
            assert!(m.counters.delays >= 1, "{policy:?}: no delay recorded");
            assert!(m.counters.rejects >= 1, "{policy:?}: no reject recorded");
            // a checkpoint drains the table; writes resume
            db.checkpoint("t").unwrap();
            let mut txn = s.begin();
            txn.append("t", batch(next, 8))
                .unwrap_or_else(|e| panic!("{policy:?}: write after checkpoint: {e}"));
            txn.commit().unwrap();
            server.shutdown();
        }
    }

    #[test]
    fn query_labels_key_the_shared_registry() {
        let db = db_with(UpdatePolicy::Pdt, TableOptions::default());
        let server = Server::start(
            db,
            ServerConfig {
                maintenance: None,
                ..ServerConfig::default()
            },
        );
        let s = server.session("reader");
        for _ in 0..3 {
            s.query("q06", |view| {
                let mut scan = view
                    .scan_with(
                        "t",
                        ScanSpec::all().key_range(vec![Value::Int(0)], vec![Value::Int(9)]),
                    )
                    .unwrap();
                run_to_rows(&mut scan).len()
            });
        }
        let m = server.metrics();
        let q = m.tables.iter().find(|t| t.name == "q06").unwrap();
        assert_eq!(q.scan_latency.unwrap().count, 3);
        assert_eq!(s.metrics().queries, 3);
        server.shutdown();
    }
}
