//! Per-table and per-session serving metrics, built on
//! [`exec::LatencyStats`].
//!
//! Sessions record commit and query latencies into two registries: one
//! keyed by session name, one keyed by an arbitrary label — table names
//! for commit latency, and whatever the caller passes to
//! [`crate::Session::query`] (a table name, a query id like `q06`) for
//! scan latency. [`MetricsSnapshot`] freezes everything (counters plus
//! nearest-rank p50/p95/p99 summaries) and implements `Display` for a
//! one-call report.

use engine::{Database, MaintenanceStats};
use exec::{LatencyStats, LatencySummary};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared event counters (one set per table, one per session).
#[derive(Default)]
pub(crate) struct Counters {
    pub commits: AtomicU64,
    pub aborts: AtomicU64,
    pub conflicts: AtomicU64,
    pub delays: AtomicU64,
    pub rejects: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            commits: self.commits.load(Relaxed),
            aborts: self.aborts.load(Relaxed),
            conflicts: self.conflicts.load(Relaxed),
            delays: self.delays.load(Relaxed),
            rejects: self.rejects.load(Relaxed),
        }
    }
}

/// Point-in-time copy of one counter set (a table's or a session's).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted (explicitly or by a failed commit).
    pub aborts: u64,
    /// Aborts caused by write-write conflicts (subset of `aborts`).
    pub conflicts: u64,
    /// Admission checks that delayed a writer.
    pub delays: u64,
    /// Admission checks that rejected a writer ([`crate::ServerError::Backpressure`]).
    pub rejects: u64,
}

pub(crate) struct TableMetrics {
    pub counters: Counters,
    pub commit_latency: LatencyStats,
    pub scan_latency: LatencyStats,
}

pub(crate) struct SessionMetrics {
    pub name: String,
    pub counters: Counters,
    pub queries: AtomicU64,
    pub commit_latency: LatencyStats,
    pub query_latency: LatencyStats,
}

/// One table's (or query label's) frozen metrics.
#[derive(Debug, Clone)]
pub struct TableMetricsSnapshot {
    pub name: String,
    pub counters: CounterSnapshot,
    /// Commit latency of transactions that touched the table.
    pub commit_latency: Option<LatencySummary>,
    /// Latency of queries recorded under this label.
    pub scan_latency: Option<LatencySummary>,
}

/// One session's frozen metrics.
#[derive(Debug, Clone)]
pub struct SessionMetricsSnapshot {
    pub name: String,
    pub counters: CounterSnapshot,
    /// Queries the session ran via [`crate::Session::query`].
    pub queries: u64,
    pub commit_latency: Option<LatencySummary>,
    pub query_latency: Option<LatencySummary>,
}

/// Everything the server measured, frozen at one instant.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Time since the server started.
    pub uptime: Duration,
    /// Per-table (and per-query-label) metrics, sorted by name.
    pub tables: Vec<TableMetricsSnapshot>,
    /// Per-session metrics, in session creation order.
    pub sessions: Vec<SessionMetricsSnapshot>,
    /// Background maintenance counters — flushes, checkpoints, and
    /// sub-partition compaction (steps, blocks merged vs reused, stable
    /// bytes saved). `None` when the server runs without a scheduler.
    pub maintenance: Option<MaintenanceStats>,
    /// Everything above plus the engine's own counters, re-expressed in
    /// the unified dotted namespace ([`engine::Database::pour_metrics`]
    /// for the `db.*` names, `server.*`/`maintenance.*` for this crate) —
    /// exposition-ready via [`obs::MetricsSnapshot::to_text`]
    /// (Prometheus) or [`obs::MetricsSnapshot::to_json`].
    pub unified: obs::MetricsSnapshot,
}

impl MetricsSnapshot {
    /// Total committed transactions across sessions.
    pub fn total_commits(&self) -> u64 {
        self.sessions.iter().map(|s| s.counters.commits).sum()
    }

    /// Total queries across sessions.
    pub fn total_queries(&self) -> u64 {
        self.sessions.iter().map(|s| s.queries).sum()
    }

    /// Committed transactions per second of uptime.
    pub fn commits_per_sec(&self) -> f64 {
        self.total_commits() as f64 / self.uptime.as_secs_f64().max(1e-9)
    }

    /// Queries per second of uptime.
    pub fn queries_per_sec(&self) -> f64 {
        self.total_queries() as f64 / self.uptime.as_secs_f64().max(1e-9)
    }
}

fn fmt_latency(f: &mut fmt::Formatter<'_>, label: &str, l: &Option<LatencySummary>) -> fmt::Result {
    match l {
        Some(s) => write!(f, " {label}[{s}]"),
        None => Ok(()),
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "server: uptime {:.3}s, {} commits ({:.1}/s), {} queries ({:.1}/s)",
            self.uptime.as_secs_f64(),
            self.total_commits(),
            self.commits_per_sec(),
            self.total_queries(),
            self.queries_per_sec(),
        )?;
        for t in &self.tables {
            let c = &t.counters;
            write!(
                f,
                "  table {}: {} commits, {} aborts ({} conflicts), {} delays, {} rejects",
                t.name, c.commits, c.aborts, c.conflicts, c.delays, c.rejects
            )?;
            fmt_latency(f, "commit", &t.commit_latency)?;
            fmt_latency(f, "scan", &t.scan_latency)?;
            writeln!(f)?;
        }
        for s in &self.sessions {
            let c = &s.counters;
            write!(
                f,
                "  session {}: {} commits, {} aborts ({} conflicts), {} queries, {} delays, {} rejects",
                s.name, c.commits, c.aborts, c.conflicts, s.queries, c.delays, c.rejects
            )?;
            fmt_latency(f, "commit", &s.commit_latency)?;
            fmt_latency(f, "query", &s.query_latency)?;
            writeln!(f)?;
        }
        if let Some(m) = &self.maintenance {
            writeln!(f, "  {m}")?;
        }
        Ok(())
    }
}

/// Live metric stores, created on demand.
pub(crate) struct Registry {
    started: Instant,
    tables: RwLock<BTreeMap<String, Arc<TableMetrics>>>,
    sessions: Mutex<Vec<Arc<SessionMetrics>>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            started: Instant::now(),
            tables: RwLock::new(BTreeMap::new()),
            sessions: Mutex::new(Vec::new()),
        }
    }

    /// Get-or-create the metrics of a table / query label.
    pub fn table(&self, name: &str) -> Arc<TableMetrics> {
        if let Some(t) = self.tables.read().get(name) {
            return t.clone();
        }
        self.tables
            .write()
            .entry(name.to_string())
            .or_insert_with(|| {
                Arc::new(TableMetrics {
                    counters: Counters::default(),
                    commit_latency: LatencyStats::new(),
                    scan_latency: LatencyStats::new(),
                })
            })
            .clone()
    }

    /// Register a new session's metrics (sessions are never deduplicated —
    /// two sessions with one name report separately).
    pub fn session(&self, name: &str) -> Arc<SessionMetrics> {
        let m = Arc::new(SessionMetrics {
            name: name.to_string(),
            counters: Counters::default(),
            queries: AtomicU64::new(0),
            commit_latency: LatencyStats::new(),
            query_latency: LatencyStats::new(),
        });
        self.sessions.lock().push(m.clone());
        m
    }

    /// Freeze everything; `maintenance` is the scheduler's counters
    /// (owned by the server, not the registry), passed through verbatim;
    /// `db` contributes the engine's `db.*` names to the unified view.
    pub fn snapshot(
        &self,
        db: &Database,
        maintenance: Option<MaintenanceStats>,
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime: self.started.elapsed(),
            unified: self.unified(db, maintenance.as_ref()),
            maintenance,
            tables: self
                .tables
                .read()
                .iter()
                .map(|(name, t)| TableMetricsSnapshot {
                    name: name.clone(),
                    counters: t.counters.snapshot(),
                    commit_latency: t.commit_latency.summary(),
                    scan_latency: t.scan_latency.summary(),
                })
                .collect(),
            sessions: self
                .sessions
                .lock()
                .iter()
                .map(|s| SessionMetricsSnapshot {
                    name: s.name.clone(),
                    counters: s.counters.snapshot(),
                    queries: s.queries.load(Relaxed),
                    commit_latency: s.commit_latency.summary(),
                    query_latency: s.query_latency.summary(),
                })
                .collect(),
        }
    }

    /// Pour every stat island into one [`obs::Registry`] and freeze it:
    /// the engine's `db.*` names, the scheduler's `maintenance.*`
    /// counters, and this registry's `server.*` counters and latency
    /// percentiles (gauges labelled with `q="p50"|"p95"|"p99"|"max"`).
    fn unified(
        &self,
        db: &Database,
        maintenance: Option<&MaintenanceStats>,
    ) -> obs::MetricsSnapshot {
        let reg = obs::Registry::new();
        db.pour_metrics(&reg);
        reg.gauge("server.uptime_ns", &[])
            .set(self.started.elapsed().as_nanos() as u64);
        if let Some(m) = maintenance {
            reg.counter("maintenance.flushes", &[]).add(m.flushes);
            reg.counter("maintenance.checkpoints", &[])
                .add(m.checkpoints);
            reg.counter("maintenance.compactions", &[])
                .add(m.compactions);
            reg.counter("maintenance.compaction.blocks_merged", &[])
                .add(m.compaction_blocks_merged);
            reg.counter("maintenance.compaction.blocks_reused", &[])
                .add(m.compaction_blocks_reused);
            reg.counter("maintenance.compaction.bytes_saved", &[])
                .add(m.compaction_bytes_saved);
            reg.counter("maintenance.stable_bytes_written", &[])
                .add(m.stable_bytes_written);
            reg.counter("maintenance.delta_bytes_retired", &[])
                .add(m.delta_bytes_retired);
            reg.counter("maintenance.errors", &[]).add(m.errors);
        }
        for (name, t) in self.tables.read().iter() {
            let key = ("table", name.as_str());
            let c = t.counters.snapshot();
            reg.counter("server.table.commits", &[key]).add(c.commits);
            reg.counter("server.table.aborts", &[key]).add(c.aborts);
            reg.counter("server.table.conflicts", &[key])
                .add(c.conflicts);
            reg.counter("server.table.delays", &[key]).add(c.delays);
            reg.counter("server.table.rejects", &[key]).add(c.rejects);
            pour_latency(
                &reg,
                "server.table.commit_latency_ns",
                key,
                t.commit_latency.summary(),
            );
            pour_latency(
                &reg,
                "server.table.scan_latency_ns",
                key,
                t.scan_latency.summary(),
            );
        }
        for s in self.sessions.lock().iter() {
            let key = ("session", s.name.as_str());
            let c = s.counters.snapshot();
            reg.counter("server.session.commits", &[key]).add(c.commits);
            reg.counter("server.session.aborts", &[key]).add(c.aborts);
            reg.counter("server.session.conflicts", &[key])
                .add(c.conflicts);
            reg.counter("server.session.queries", &[key])
                .add(s.queries.load(Relaxed));
            pour_latency(
                &reg,
                "server.session.commit_latency_ns",
                key,
                s.commit_latency.summary(),
            );
            pour_latency(
                &reg,
                "server.session.query_latency_ns",
                key,
                s.query_latency.summary(),
            );
        }
        reg.snapshot()
    }
}

/// Pour one latency summary as labelled percentile gauges (skipped when
/// nothing was recorded).
fn pour_latency(
    reg: &obs::Registry,
    metric: &str,
    key: (&str, &str),
    summary: Option<LatencySummary>,
) {
    let Some(s) = summary else { return };
    for (q, v) in [
        ("p50", s.p50_ns),
        ("p95", s.p95_ns),
        ("p99", s.p99_ns),
        ("max", s.max_ns),
    ] {
        reg.gauge(metric, &[key, ("q", q)]).set(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_snapshot_and_display() {
        let r = Registry::new();
        let t = r.table("orders");
        t.counters.commits.fetch_add(3, Relaxed);
        t.commit_latency.record(Duration::from_micros(120));
        assert!(Arc::ptr_eq(&t, &r.table("orders")), "get-or-create");
        let s = r.session("rf-0");
        s.counters.commits.fetch_add(3, Relaxed);
        s.queries.fetch_add(1, Relaxed);
        s.query_latency.record(Duration::from_micros(50));
        let maint = MaintenanceStats {
            compactions: 2,
            compaction_blocks_reused: 11,
            ..Default::default()
        };
        let db = Database::new();
        let snap = r.snapshot(&db, Some(maint));
        assert_eq!(snap.tables.len(), 1);
        assert_eq!(snap.tables[0].counters.commits, 3);
        assert_eq!(snap.tables[0].commit_latency.unwrap().count, 1);
        assert_eq!(snap.total_commits(), 3);
        assert_eq!(snap.total_queries(), 1);
        assert!(snap.commits_per_sec() > 0.0);
        let text = snap.to_string();
        assert!(text.contains("table orders"), "{text}");
        assert!(text.contains("session rf-0"), "{text}");
        assert!(text.contains("p99"), "{text}");
        assert!(text.contains("2 compaction steps"), "{text}");
        assert!(text.contains("11 reused"), "{text}");
        // the same facts re-expressed in the unified namespace
        let u = &snap.unified;
        let commits = u
            .get_labeled("server.table.commits", &[("table", "orders")])
            .unwrap();
        assert_eq!(commits.value.as_u64(), Some(3));
        let p50 = u
            .get_labeled(
                "server.table.commit_latency_ns",
                &[("table", "orders"), ("q", "p50")],
            )
            .unwrap();
        assert!(p50.value.as_u64().unwrap() > 0);
        assert_eq!(u.value("maintenance.compactions"), Some(2));
        assert_eq!(u.value("db.txn.seq"), Some(0));
        let prom = u.to_text();
        assert!(
            prom.contains("server_table_commits{table=\"orders\"} 3"),
            "{prom}"
        );
    }
}
