//! Per-query execution accounting.
//!
//! The paper's Figure 19 separates each query bar into **scan time** (disk
//! read + decompression + applying updates) and **processing time** (the
//! rest), alongside **I/O volume**. [`QueryStats`] captures all three:
//! scan operators charge their wall time to a shared [`ScanClock`]; I/O
//! volume is delta-measured on the storage layer's `IoTracker`; total time
//! is measured by the harness around plan execution.

use columnar::{IoStats, IoTracker};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shared accumulator of time spent inside scan operators.
#[derive(Debug, Default, Clone)]
pub struct ScanClock {
    nanos: Arc<AtomicU64>,
}

impl ScanClock {
    /// Fresh clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge the duration since `start`.
    pub fn charge(&self, start: Instant) {
        self.nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Accumulated scan time in nanoseconds.
    pub fn nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// Accumulated scan time in seconds.
    pub fn secs(&self) -> f64 {
        self.nanos() as f64 / 1e9
    }
}

/// Thread-safe recorder of per-operation wall times — e.g. the latency of
/// repeated scans while background maintenance runs.
///
/// Memory is bounded: up to [`RESERVOIR_CAP`] samples are kept in a
/// reservoir (Vitter's Algorithm R with a deterministic internal generator,
/// so long-running servers don't grow without limit and fixed workloads
/// summarize identically across runs). Until the reservoir fills, every
/// sample is kept and percentiles are exact; past that they are estimates
/// over a uniform sample, while `count` and `max_ns` stay exact.
#[derive(Debug)]
pub struct LatencyStats {
    inner: Mutex<Reservoir>,
}

/// Number of samples [`LatencyStats`] retains for percentile estimation.
pub const RESERVOIR_CAP: usize = 4096;

#[derive(Debug)]
struct Reservoir {
    samples: Vec<u64>,
    /// Total samples ever recorded (not just retained).
    total: u64,
    /// Exact maximum over all recorded samples, evicted or not.
    max_ns: u64,
    /// xorshift64* state for replacement-slot selection.
    rng: u64,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            inner: Mutex::new(Reservoir {
                samples: Vec::new(),
                total: 0,
                max_ns: 0,
                rng: 0x9E37_79B9_7F4A_7C15,
            }),
        }
    }
}

impl Reservoir {
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Summary of a [`LatencyStats`] recording, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Operations recorded (exact, not just retained samples).
    pub count: usize,
    /// Median latency.
    pub p50_ns: u64,
    /// 95th-percentile latency.
    pub p95_ns: u64,
    /// 99th-percentile latency.
    pub p99_ns: u64,
    /// Exact maximum over every recorded operation.
    pub max_ns: u64,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ms = |ns: u64| ns as f64 / 1e6;
        write!(
            f,
            "n={} p50={:.3}ms p95={:.3}ms p99={:.3}ms max={:.3}ms",
            self.count,
            ms(self.p50_ns),
            ms(self.p95_ns),
            ms(self.p99_ns),
            ms(self.max_ns)
        )
    }
}

impl LatencyStats {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one operation's duration.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos() as u64;
        let mut r = self.inner.lock().expect("latency samples");
        r.total += 1;
        r.max_ns = r.max_ns.max(ns);
        if r.samples.len() < RESERVOIR_CAP {
            r.samples.push(ns);
        } else {
            // Algorithm R: the new sample replaces a random slot with
            // probability RESERVOIR_CAP / total, keeping the reservoir a
            // uniform sample of everything recorded.
            let total = r.total;
            let j = (r.next_rand() % total) as usize;
            if j < RESERVOIR_CAP {
                r.samples[j] = ns;
            }
        }
    }

    /// Time `f`, recording its wall duration.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record(t0.elapsed());
        out
    }

    /// Nearest-rank percentiles over the retained reservoir (exact until
    /// [`RESERVOIR_CAP`] samples, estimates past that; `count` and `max_ns`
    /// are always exact). Returns `None` when no samples were recorded.
    pub fn summary(&self) -> Option<LatencySummary> {
        let (mut s, total, max_ns) = {
            let r = self.inner.lock().expect("latency samples");
            (r.samples.clone(), r.total, r.max_ns)
        };
        if s.is_empty() {
            return None;
        }
        s.sort_unstable();
        let rank = |p: f64| -> u64 {
            let idx = ((p * s.len() as f64).ceil() as usize).clamp(1, s.len()) - 1;
            s[idx]
        };
        Some(LatencySummary {
            count: total as usize,
            p50_ns: rank(0.50),
            p95_ns: rank(0.95),
            p99_ns: rank(0.99),
            max_ns,
        })
    }
}

/// Full per-query result accounting.
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// Wall time of the whole query.
    pub total_secs: f64,
    /// Time spent inside scan operators (I/O simulation + decompression +
    /// update merging).
    pub scan_secs: f64,
    /// Compressed bytes of blocks touched.
    pub io: IoStats,
    /// Rows returned.
    pub rows: usize,
}

impl QueryStats {
    /// Processing (non-scan) component.
    pub fn processing_secs(&self) -> f64 {
        (self.total_secs - self.scan_secs).max(0.0)
    }

    /// Modelled cold-run time: measured CPU plus transfer of the touched
    /// bytes at `bytes_per_sec` (see DESIGN.md §4 — our block store is
    /// RAM-resident, the paper's devices are modelled analytically).
    pub fn cold_secs(&self, bytes_per_sec: f64) -> f64 {
        self.total_secs + self.io.transfer_secs(bytes_per_sec)
    }
}

/// Measure a closure producing rows, with scan time taken from `clock` and
/// I/O delta taken from `io`.
pub fn measure<T>(
    io: &IoTracker,
    clock: &ScanClock,
    f: impl FnOnce() -> (T, usize),
) -> (T, QueryStats) {
    let io_before = io.stats();
    let scan_before = clock.nanos();
    let t0 = Instant::now();
    let (out, rows) = f();
    let total_secs = t0.elapsed().as_secs_f64();
    let stats = QueryStats {
        total_secs,
        scan_secs: (clock.nanos() - scan_before) as f64 / 1e9,
        io: io.stats().since(&io_before),
        rows,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates() {
        let c = ScanClock::new();
        let t = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        c.charge(t);
        assert!(c.nanos() > 1_000_000);
        assert!(c.secs() > 0.0);
    }

    #[test]
    fn measure_computes_deltas() {
        let io = IoTracker::new();
        let clock = ScanClock::new();
        io.record_block(100); // pre-existing traffic must not count
        let (_out, stats) = measure(&io, &clock, || {
            io.record_block(50);
            ((), 7)
        });
        assert_eq!(stats.io.bytes_read, 50);
        assert_eq!(stats.rows, 7);
        assert!(stats.total_secs >= 0.0);
        assert!(stats.processing_secs() >= 0.0);
    }

    #[test]
    fn latency_percentiles_nearest_rank() {
        let l = LatencyStats::new();
        assert!(l.summary().is_none());
        for ns in [1u64, 2, 3, 4, 100] {
            l.record(Duration::from_nanos(ns));
        }
        let s = l.summary().unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.p50_ns, 3);
        assert_eq!(s.p95_ns, 100);
        assert_eq!(s.p99_ns, 100);
        assert_eq!(s.max_ns, 100);
        assert!(s.to_string().contains("p99"));
        let out = l.measure(|| 7);
        assert_eq!(out, 7);
        assert_eq!(l.summary().unwrap().count, 6);
    }

    #[test]
    fn latency_reservoir_is_bounded_and_representative() {
        let l = LatencyStats::new();
        let n = 3 * RESERVOIR_CAP as u64;
        for i in 0..n {
            l.record(Duration::from_nanos(i + 1));
        }
        let s = l.summary().unwrap();
        assert_eq!(s.count, n as usize, "count stays exact past the cap");
        assert_eq!(s.max_ns, n, "max stays exact even when evicted");
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns && s.p99_ns <= s.max_ns);
        // p50 of a uniform ramp should land around the middle of the range
        let mid = n / 2;
        assert!(
            s.p50_ns > mid / 2 && s.p50_ns < mid + mid / 2,
            "p50={} not near {mid}",
            s.p50_ns
        );
        {
            let r = l.inner.lock().unwrap();
            assert_eq!(r.samples.len(), RESERVOIR_CAP, "memory is bounded");
        }
    }

    #[test]
    fn cold_model_adds_transfer() {
        let s = QueryStats {
            total_secs: 1.0,
            scan_secs: 0.5,
            io: IoStats {
                blocks_read: 1,
                bytes_read: 300_000_000,
            },
            rows: 0,
        };
        let cold = s.cold_secs(150.0e6);
        assert!((cold - 3.0).abs() < 1e-9);
    }
}
