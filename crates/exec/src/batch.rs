//! Columnar row batches flowing between operators.

use columnar::{ColumnVec, Tuple, Value, ValueType};

/// A block of rows in columnar layout.
///
/// `rid_start` carries the RID of the first row *for scan outputs* (merge
/// scans emit consecutively numbered visible rows); operators that
/// reshuffle rows (joins, aggregation, sort) reset it to 0 — RIDs are a
/// storage-level concept consumed by DML, not a query-level one.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The column data, one vector per projected column.
    pub cols: Vec<ColumnVec>,
    /// RID of the first row (scan outputs only; 0 after reshuffling ops).
    pub rid_start: u64,
}

impl Batch {
    /// An empty batch with the given column types.
    pub fn empty(types: &[ValueType]) -> Batch {
        Batch::with_capacity(types, 0)
    }

    /// An empty batch whose columns reserve room for `cap` rows up front —
    /// use on ingest paths so repeated pushes never re-grow each column.
    pub fn with_capacity(types: &[ValueType], cap: usize) -> Batch {
        Batch {
            cols: types
                .iter()
                .map(|&t| ColumnVec::with_capacity(t, cap))
                .collect(),
            rid_start: 0,
        }
    }

    /// Build a batch from borrowed row tuples (clones every value).
    pub fn from_rows(types: &[ValueType], rows: &[Tuple]) -> Batch {
        let mut b = Batch::with_capacity(types, rows.len());
        for r in rows {
            for (c, v) in r.iter().enumerate() {
                b.cols[c].push(v);
            }
        }
        b
    }

    /// Build a batch from owned row tuples: values move into the columns,
    /// so strings transfer their buffers instead of being re-cloned.
    pub fn from_owned_rows(types: &[ValueType], rows: Vec<Tuple>) -> Batch {
        let mut b = Batch::with_capacity(types, rows.len());
        for r in rows {
            b.push_owned_row(r);
        }
        b
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.cols.first().map(|c| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// The column types, in projection order.
    pub fn types(&self) -> Vec<ValueType> {
        self.cols.iter().map(|c| c.vtype()).collect()
    }

    /// Read row `i` as a tuple (clones; use column access on hot paths).
    pub fn row(&self, i: usize) -> Tuple {
        self.cols.iter().map(|c| c.get(i)).collect()
    }

    /// All rows (test convenience).
    pub fn rows(&self) -> Vec<Tuple> {
        (0..self.num_rows()).map(|i| self.row(i)).collect()
    }

    /// Keep only the rows at the given indices (selection-vector apply).
    pub fn gather(&self, idx: &[usize]) -> Batch {
        let cols = self
            .cols
            .iter()
            .map(|c| {
                let mut out = ColumnVec::new(c.vtype());
                out.extend_gather(c, idx);
                out
            })
            .collect();
        Batch { cols, rid_start: 0 }
    }

    /// Keep only the listed columns, in the listed order.
    pub fn project(&self, cols: &[usize]) -> Batch {
        Batch {
            cols: cols.iter().map(|&c| self.cols[c].clone()).collect(),
            rid_start: self.rid_start,
        }
    }

    /// Horizontally concatenate two equal-length batches.
    pub fn zip(mut self, other: Batch) -> Batch {
        debug_assert_eq!(self.num_rows(), other.num_rows());
        self.cols.extend(other.cols);
        self
    }

    /// Append one row given as borrowed values (clones).
    pub fn push_row(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (c, v) in row.iter().enumerate() {
            self.cols[c].push(v);
        }
    }

    /// Append one owned row; values move into the columns without cloning.
    pub fn push_owned_row(&mut self, row: Tuple) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (c, v) in row.into_iter().enumerate() {
            self.cols[c].push_owned(v);
        }
    }

    /// Reserve room for `additional` more rows in every column.
    pub fn reserve(&mut self, additional: usize) {
        for c in &mut self.cols {
            c.reserve(additional);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Batch {
        Batch::from_rows(
            &[ValueType::Int, ValueType::Str],
            &[
                vec![Value::Int(1), Value::Str("a".into())],
                vec![Value::Int(2), Value::Str("b".into())],
                vec![Value::Int(3), Value::Str("c".into())],
            ],
        )
    }

    #[test]
    fn construction_and_access() {
        let b = batch();
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.num_cols(), 2);
        assert_eq!(b.row(1), vec![Value::Int(2), Value::Str("b".into())]);
        assert_eq!(b.types(), vec![ValueType::Int, ValueType::Str]);
    }

    #[test]
    fn gather_selects_rows() {
        let b = batch().gather(&[2, 0]);
        assert_eq!(b.rows()[0][0], Value::Int(3));
        assert_eq!(b.rows()[1][0], Value::Int(1));
    }

    #[test]
    fn project_and_zip() {
        let b = batch();
        let left = b.project(&[1]);
        let right = b.project(&[0]);
        let z = left.zip(right);
        assert_eq!(z.num_cols(), 2);
        assert_eq!(z.row(0), vec![Value::Str("a".into()), Value::Int(1)]);
    }

    #[test]
    fn push_row_appends() {
        let mut b = batch();
        b.push_row(&[Value::Int(9), Value::Str("z".into())]);
        assert_eq!(b.num_rows(), 4);
    }

    #[test]
    fn owned_construction_matches_borrowed() {
        let types = [ValueType::Int, ValueType::Str];
        let rows = vec![
            vec![Value::Int(1), Value::Str("a".into())],
            vec![Value::Int(2), Value::Str("b".into())],
        ];
        let borrowed = Batch::from_rows(&types, &rows);
        let mut owned = Batch::from_owned_rows(&types, rows.clone());
        assert_eq!(owned.rows(), borrowed.rows());
        owned.reserve(16);
        owned.push_owned_row(vec![Value::Int(3), Value::Str("c".into())]);
        assert_eq!(owned.num_rows(), 3);
        assert_eq!(owned.row(2), vec![Value::Int(3), Value::Str("c".into())]);
    }
}
