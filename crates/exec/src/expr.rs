//! Vectorized expression interpreter.
//!
//! Expressions evaluate over a [`Batch`] and produce a full column. Typed
//! fast paths cover the combinations the TPC-H workload exercises
//! (int/double arithmetic, int/double/date/string comparisons, `LIKE` with
//! `%` wildcards, `CASE`, `IN`, `BETWEEN`, `EXTRACT(YEAR)`, `SUBSTRING`);
//! a `Value`-level fallback keeps everything total.

use crate::batch::Batch;
use columnar::value::date_year;
use columnar::{ColumnVec, Value, ValueType};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn test(&self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Input column by index.
    Col(usize),
    /// Constant.
    Lit(Value),
    /// Numeric addition.
    Add(Box<Expr>, Box<Expr>),
    /// Numeric subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Numeric multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division always produces a double (decimal semantics).
    Div(Box<Expr>, Box<Expr>),
    /// Comparison producing a boolean column.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// N-ary conjunction.
    And(Vec<Expr>),
    /// N-ary disjunction.
    Or(Vec<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
    /// SQL `LIKE` with `%` wildcards (and literal everything else).
    Like(Box<Expr>, String),
    /// Negated [`Expr::Like`].
    NotLike(Box<Expr>, String),
    /// SQL `IN (v1, v2, ...)` membership test.
    InList(Box<Expr>, Vec<Value>),
    /// Inclusive range test.
    Between(Box<Expr>, Value, Value),
    /// `CASE WHEN c1 THEN v1 ... ELSE e END`.
    Case(Vec<(Expr, Expr)>, Box<Expr>),
    /// `EXTRACT(YEAR FROM date)` as Int.
    Year(Box<Expr>),
    /// `SUBSTRING(s FROM start FOR len)`, 1-based.
    Substr(Box<Expr>, usize, usize),
}

/// Shorthand for [`Expr::Col`].
pub fn col(i: usize) -> Expr {
    Expr::Col(i)
}

/// Shorthand for [`Expr::Lit`].
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

// builder methods named after the SQL operators they plan, not the std ops
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Plan `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
    /// Plan `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
    /// Plan `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
    /// Plan `self / rhs` (always a double — decimal semantics).
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }
    /// Plan `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }
    /// Plan `self <> rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }
    /// Plan `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }
    /// Plan `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }
    /// Plan `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }
    /// Plan `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }
    /// Plan `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(vec![self, rhs])
    }
    /// Plan `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(vec![self, rhs])
    }
    /// Plan `NOT self`.
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// Plan `self LIKE pattern` (`%` wildcards).
    pub fn like(self, pattern: &str) -> Expr {
        Expr::Like(Box::new(self), pattern.to_string())
    }
    /// Plan `self NOT LIKE pattern`.
    pub fn not_like(self, pattern: &str) -> Expr {
        Expr::NotLike(Box::new(self), pattern.to_string())
    }
    /// Plan `self IN (vals...)`.
    pub fn in_list(self, vals: Vec<Value>) -> Expr {
        Expr::InList(Box::new(self), vals)
    }
    /// Plan `self BETWEEN lo AND hi` (inclusive).
    pub fn between(self, lo: impl Into<Value>, hi: impl Into<Value>) -> Expr {
        Expr::Between(Box::new(self), lo.into(), hi.into())
    }
    /// Plan `EXTRACT(YEAR FROM self)`.
    pub fn year(self) -> Expr {
        Expr::Year(Box::new(self))
    }
    /// Plan `SUBSTRING(self FROM start FOR len)` (1-based).
    pub fn substr(self, start: usize, len: usize) -> Expr {
        Expr::Substr(Box::new(self), start, len)
    }

    /// Result type given the input column types.
    pub fn out_type(&self, input: &[ValueType]) -> ValueType {
        match self {
            Expr::Col(i) => input[*i],
            Expr::Lit(v) => v.value_type().unwrap_or(ValueType::Int),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                match (a.out_type(input), b.out_type(input)) {
                    (ValueType::Int, ValueType::Int) => ValueType::Int,
                    _ => ValueType::Double,
                }
            }
            Expr::Div(_, _) => ValueType::Double,
            Expr::Cmp(..)
            | Expr::And(_)
            | Expr::Or(_)
            | Expr::Not(_)
            | Expr::Like(..)
            | Expr::NotLike(..)
            | Expr::InList(..)
            | Expr::Between(..) => ValueType::Bool,
            Expr::Case(whens, els) => whens
                .first()
                .map(|(_, v)| v.out_type(input))
                .unwrap_or_else(|| els.out_type(input)),
            Expr::Year(_) => ValueType::Int,
            Expr::Substr(..) => ValueType::Str,
        }
    }

    /// Evaluate over a batch, producing one value per row.
    pub fn eval(&self, batch: &Batch) -> ColumnVec {
        let n = batch.num_rows();
        match self {
            Expr::Col(i) => batch.cols[*i].clone(),
            Expr::Lit(v) => broadcast(v, n),
            Expr::Add(a, b) => arith(a.eval(batch), b.eval(batch), i64::wrapping_add, |x, y| {
                x + y
            }),
            Expr::Sub(a, b) => arith(a.eval(batch), b.eval(batch), i64::wrapping_sub, |x, y| {
                x - y
            }),
            Expr::Mul(a, b) => arith(a.eval(batch), b.eval(batch), i64::wrapping_mul, |x, y| {
                x * y
            }),
            Expr::Div(a, b) => {
                let (a, b) = (to_f64(a.eval(batch)), to_f64(b.eval(batch)));
                ColumnVec::Double(a.iter().zip(&b).map(|(x, y)| x / y).collect())
            }
            Expr::Cmp(op, a, b) => compare(*op, a.eval(batch), b.eval(batch)),
            Expr::And(parts) => {
                let mut acc = vec![true; n];
                for p in parts {
                    let v = bools(p.eval(batch));
                    for (a, b) in acc.iter_mut().zip(v) {
                        *a = *a && b;
                    }
                }
                ColumnVec::Bool(acc)
            }
            Expr::Or(parts) => {
                let mut acc = vec![false; n];
                for p in parts {
                    let v = bools(p.eval(batch));
                    for (a, b) in acc.iter_mut().zip(v) {
                        *a = *a || b;
                    }
                }
                ColumnVec::Bool(acc)
            }
            Expr::Not(a) => ColumnVec::Bool(bools(a.eval(batch)).into_iter().map(|b| !b).collect()),
            Expr::Like(a, pat) => {
                let v = a.eval(batch);
                let m = LikeMatcher::new(pat);
                ColumnVec::Bool(v.as_str().iter().map(|s| m.matches(s)).collect())
            }
            Expr::NotLike(a, pat) => {
                let v = a.eval(batch);
                let m = LikeMatcher::new(pat);
                ColumnVec::Bool(v.as_str().iter().map(|s| !m.matches(s)).collect())
            }
            Expr::InList(a, list) => {
                let v = a.eval(batch);
                ColumnVec::Bool((0..v.len()).map(|i| list.contains(&v.get(i))).collect())
            }
            Expr::Between(a, lo, hi) => {
                let v = a.eval(batch);
                ColumnVec::Bool(
                    (0..v.len())
                        .map(|i| {
                            let x = v.get(i);
                            x >= *lo && x <= *hi
                        })
                        .collect(),
                )
            }
            Expr::Case(whens, els) => {
                let conds: Vec<Vec<bool>> =
                    whens.iter().map(|(c, _)| bools(c.eval(batch))).collect();
                let vals: Vec<ColumnVec> = whens.iter().map(|(_, v)| v.eval(batch)).collect();
                let fallback = els.eval(batch);
                let mut out = ColumnVec::new(fallback.vtype());
                'row: for i in 0..n {
                    for (c, v) in conds.iter().zip(&vals) {
                        if c[i] {
                            out.push(&v.get(i));
                            continue 'row;
                        }
                    }
                    out.push(&fallback.get(i));
                }
                out
            }
            Expr::Year(a) => {
                let v = a.eval(batch);
                ColumnVec::Int(v.as_date().iter().map(|&d| date_year(d)).collect())
            }
            Expr::Substr(a, start, len) => {
                let v = a.eval(batch);
                ColumnVec::Str(
                    v.as_str()
                        .iter()
                        .map(|s| {
                            let from = (start - 1).min(s.len());
                            let to = (from + len).min(s.len());
                            s[from..to].to_string()
                        })
                        .collect(),
                )
            }
        }
    }

    /// Evaluate as a selection predicate.
    pub fn eval_bool(&self, batch: &Batch) -> Vec<bool> {
        bools(self.eval(batch))
    }
}

fn broadcast(v: &Value, n: usize) -> ColumnVec {
    let vt = v.value_type().unwrap_or(ValueType::Int);
    let mut c = ColumnVec::with_capacity(vt, n);
    for _ in 0..n {
        c.push(v);
    }
    c
}

fn bools(c: ColumnVec) -> Vec<bool> {
    match c {
        ColumnVec::Bool(v) => v,
        other => panic!("expected boolean column, got {:?}", other.vtype()),
    }
}

fn to_f64(c: ColumnVec) -> Vec<f64> {
    match c {
        ColumnVec::Double(v) => v,
        ColumnVec::Int(v) => v.into_iter().map(|x| x as f64).collect(),
        other => panic!("expected numeric column, got {:?}", other.vtype()),
    }
}

fn arith(
    a: ColumnVec,
    b: ColumnVec,
    f_int: fn(i64, i64) -> i64,
    f_dbl: fn(f64, f64) -> f64,
) -> ColumnVec {
    match (a, b) {
        (ColumnVec::Int(x), ColumnVec::Int(y)) => {
            ColumnVec::Int(x.iter().zip(&y).map(|(a, b)| f_int(*a, *b)).collect())
        }
        (a, b) => {
            let (x, y) = (to_f64(a), to_f64(b));
            ColumnVec::Double(x.iter().zip(&y).map(|(a, b)| f_dbl(*a, *b)).collect())
        }
    }
}

fn compare(op: CmpOp, a: ColumnVec, b: ColumnVec) -> ColumnVec {
    let out = match (&a, &b) {
        (ColumnVec::Int(x), ColumnVec::Int(y)) => {
            x.iter().zip(y).map(|(a, b)| op.test(a.cmp(b))).collect()
        }
        (ColumnVec::Double(x), ColumnVec::Double(y)) => x
            .iter()
            .zip(y)
            .map(|(a, b)| op.test(a.total_cmp(b)))
            .collect(),
        (ColumnVec::Date(x), ColumnVec::Date(y)) => {
            x.iter().zip(y).map(|(a, b)| op.test(a.cmp(b))).collect()
        }
        (ColumnVec::Str(x), ColumnVec::Str(y)) => {
            x.iter().zip(y).map(|(a, b)| op.test(a.cmp(b))).collect()
        }
        (ColumnVec::Int(x), ColumnVec::Double(y)) => x
            .iter()
            .zip(y)
            .map(|(a, b)| op.test((*a as f64).total_cmp(b)))
            .collect(),
        (ColumnVec::Double(x), ColumnVec::Int(y)) => x
            .iter()
            .zip(y)
            .map(|(a, b)| op.test(a.total_cmp(&(*b as f64))))
            .collect(),
        _ => (0..a.len())
            .map(|i| op.test(a.get(i).cmp(&b.get(i))))
            .collect(),
    };
    ColumnVec::Bool(out)
}

/// `%`-wildcard matcher for SQL `LIKE`.
struct LikeMatcher {
    segments: Vec<String>,
    starts_any: bool,
    ends_any: bool,
}

impl LikeMatcher {
    fn new(pattern: &str) -> Self {
        LikeMatcher {
            segments: pattern
                .split('%')
                .filter(|s| !s.is_empty())
                .map(String::from)
                .collect(),
            starts_any: pattern.starts_with('%'),
            ends_any: pattern.ends_with('%'),
        }
    }

    fn matches(&self, text: &str) -> bool {
        let mut segs: &[String] = &self.segments;
        let mut rest = text;
        if !self.starts_any {
            match segs.split_first() {
                Some((first, others)) => {
                    if !rest.starts_with(first.as_str()) {
                        return false;
                    }
                    rest = &rest[first.len()..];
                    segs = others;
                }
                // pattern without any `%` and without segments: empty pattern
                None => return text.is_empty(),
            }
        }
        if !self.ends_any {
            match segs.split_last() {
                Some((last, others)) => {
                    if !rest.ends_with(last.as_str()) {
                        return false;
                    }
                    rest = &rest[..rest.len() - last.len()];
                    segs = others;
                }
                // all segments consumed by the prefix: text must be spent
                None => return rest.is_empty(),
            }
        }
        // middle segments: greedy left-to-right search
        for seg in segs {
            match rest.find(seg.as_str()) {
                Some(pos) => rest = &rest[pos + seg.len()..],
                None => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::parse_date;

    fn batch() -> Batch {
        Batch::from_rows(
            &[
                ValueType::Int,
                ValueType::Double,
                ValueType::Str,
                ValueType::Date,
            ],
            &[
                vec![
                    Value::Int(1),
                    Value::Double(0.5),
                    Value::Str("PROMO BRUSHED".into()),
                    Value::Date(parse_date("1994-03-01").unwrap()),
                ],
                vec![
                    Value::Int(2),
                    Value::Double(1.5),
                    Value::Str("STANDARD green box".into()),
                    Value::Date(parse_date("1995-07-15").unwrap()),
                ],
                vec![
                    Value::Int(3),
                    Value::Double(2.5),
                    Value::Str("PROMO green".into()),
                    Value::Date(parse_date("1994-12-31").unwrap()),
                ],
            ],
        )
    }

    #[test]
    fn arithmetic_types() {
        let b = batch();
        assert_eq!(col(0).add(lit(10i64)).eval(&b).as_int(), &[11, 12, 13]);
        assert_eq!(col(0).mul(col(1)).eval(&b).as_double(), &[0.5, 3.0, 7.5]);
        assert_eq!(col(0).div(lit(2i64)).eval(&b).as_double(), &[0.5, 1.0, 1.5]);
    }

    #[test]
    fn comparisons_and_boolean_logic() {
        let b = batch();
        assert_eq!(col(0).gt(lit(1i64)).eval_bool(&b), vec![false, true, true]);
        assert_eq!(
            col(0).gt(lit(1i64)).and(col(1).lt(lit(2.0))).eval_bool(&b),
            vec![false, true, false]
        );
        assert_eq!(
            col(0).eq(lit(1i64)).or(col(0).eq(lit(3i64))).eval_bool(&b),
            vec![true, false, true]
        );
        assert_eq!(
            col(0).eq(lit(1i64)).not().eval_bool(&b),
            vec![false, true, true]
        );
        // cross numeric compare
        assert_eq!(col(0).ge(col(1)).eval_bool(&b), vec![true, true, true]);
    }

    #[test]
    fn date_comparison_and_year() {
        let b = batch();
        let cutoff = lit(Value::Date(parse_date("1995-01-01").unwrap()));
        assert_eq!(col(3).lt(cutoff).eval_bool(&b), vec![true, false, true]);
        assert_eq!(col(3).year().eval(&b).as_int(), &[1994, 1995, 1994]);
    }

    #[test]
    fn like_patterns() {
        let b = batch();
        assert_eq!(col(2).like("PROMO%").eval_bool(&b), vec![true, false, true]);
        assert_eq!(
            col(2).like("%green%").eval_bool(&b),
            vec![false, true, true]
        );
        assert_eq!(
            col(2).like("%green").eval_bool(&b),
            vec![false, false, true]
        );
        assert_eq!(
            col(2).not_like("%green%").eval_bool(&b),
            vec![true, false, false]
        );
        assert_eq!(
            col(2).like("%BRUSHED%green%").eval_bool(&b),
            vec![false, false, false]
        );
    }

    #[test]
    fn in_between_case() {
        let b = batch();
        assert_eq!(
            col(0)
                .in_list(vec![Value::Int(1), Value::Int(3)])
                .eval_bool(&b),
            vec![true, false, true]
        );
        assert_eq!(
            col(1).between(1.0, 2.0).eval_bool(&b),
            vec![false, true, false]
        );
        let c = Expr::Case(
            vec![(col(0).eq(lit(2i64)), lit(100i64))],
            Box::new(lit(0i64)),
        );
        assert_eq!(c.eval(&b).as_int(), &[0, 100, 0]);
    }

    #[test]
    fn substr_extracts() {
        let b = batch();
        assert_eq!(
            col(2).substr(1, 5).eval(&b).as_str(),
            &[
                "PROMO".to_string(),
                "STAND".to_string(),
                "PROMO".to_string()
            ]
        );
    }

    #[test]
    fn out_types() {
        let input = [
            ValueType::Int,
            ValueType::Double,
            ValueType::Str,
            ValueType::Date,
        ];
        assert_eq!(col(0).add(lit(1i64)).out_type(&input), ValueType::Int);
        assert_eq!(col(0).add(col(1)).out_type(&input), ValueType::Double);
        assert_eq!(col(0).div(lit(2i64)).out_type(&input), ValueType::Double);
        assert_eq!(col(0).gt(lit(2i64)).out_type(&input), ValueType::Bool);
        assert_eq!(col(3).year().out_type(&input), ValueType::Int);
        assert_eq!(col(2).substr(1, 2).out_type(&input), ValueType::Str);
    }
}
