//! # Block-oriented query executor
//!
//! A small vectorized (block-at-a-time, in the MonetDB/X100 tradition the
//! paper's system descends from) query executor over the columnar read
//! store, with differential updates merged in during scans:
//!
//! * [`batch::Batch`] — a block of rows in columnar layout with a starting
//!   RID (output rows of a merge scan are consecutively numbered),
//! * [`expr::Expr`] — a vectorized expression interpreter (arithmetic,
//!   comparisons, boolean logic, `LIKE`, `CASE`, `IN`, date extraction),
//! * [`ops`] — pull-based operators: table scans (clean / PDT-merging /
//!   VDT-merging, single-segment or partition unions), the
//!   partition-parallel [`ParallelUnionScan`], filter, project, hash
//!   aggregation, hash joins (inner/left-outer/semi/anti), sort, top-n
//!   and limit,
//! * [`stats`] — per-query accounting of scan time vs processing time and
//!   I/O volume: exactly the quantities plotted in the paper's Figure 19.
//!
//! Plans are built by hand (no SQL frontend): the TPC-H queries in the
//! `tpch` crate compose these operators directly.

#![warn(missing_docs)]

pub mod batch;
pub mod expr;
pub mod ops;
pub mod stats;

pub use batch::Batch;
pub use expr::{CmpOp, Expr};
pub use ops::aggregate::{AggFunc, AggSpec, HashAggregate};
pub use ops::filter::Filter;
pub use ops::join::{HashJoin, JoinKind};
pub use ops::project::Project;
pub use ops::scan::{DeltaLayers, ScanBounds, ScanSegment, TableScan};
pub use ops::sort::{Limit, Sort, SortKey, TopN};
pub use ops::union::{ParallelUnionScan, ScanTask, UnionPart};
pub use ops::{run_to_rows, BoxOp, Operator};
pub use stats::{measure, LatencyStats, LatencySummary, QueryStats, ScanClock, RESERVOIR_CAP};
