//! Selection: keep rows satisfying a boolean expression.

use crate::batch::Batch;
use crate::expr::Expr;
use crate::ops::Operator;
use columnar::ValueType;

/// Filter operator.
pub struct Filter<'a> {
    input: Box<dyn Operator + 'a>,
    predicate: Expr,
}

impl<'a> Filter<'a> {
    /// Keep only `input` rows where `predicate` evaluates true.
    pub fn new(input: Box<dyn Operator + 'a>, predicate: Expr) -> Self {
        Filter { input, predicate }
    }
}

impl Operator for Filter<'_> {
    fn next_batch(&mut self) -> Option<Batch> {
        loop {
            let batch = self.input.next_batch()?;
            let keep = self.predicate.eval_bool(&batch);
            let idx: Vec<usize> = keep
                .iter()
                .enumerate()
                .filter_map(|(i, &k)| k.then_some(i))
                .collect();
            if idx.len() == batch.num_rows() {
                return Some(batch);
            }
            if !idx.is_empty() {
                return Some(batch.gather(&idx));
            }
            // fully filtered batch: pull the next one
        }
    }

    fn out_types(&self) -> Vec<ValueType> {
        self.input.out_types()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::ops::{run_to_rows, ValuesOp};
    use columnar::Value;

    fn input() -> Box<dyn Operator> {
        let rows: Vec<Vec<Value>> = (0..10).map(|i| vec![Value::Int(i)]).collect();
        Box::new(ValuesOp::new(&[ValueType::Int], &rows))
    }

    #[test]
    fn filters_rows() {
        let mut f = Filter::new(input(), col(0).ge(lit(7i64)));
        let got = run_to_rows(&mut f);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0][0], Value::Int(7));
    }

    #[test]
    fn all_pass_returns_batch_unchanged() {
        let mut f = Filter::new(input(), col(0).ge(lit(0i64)));
        assert_eq!(run_to_rows(&mut f).len(), 10);
    }

    #[test]
    fn none_pass_returns_none() {
        let mut f = Filter::new(input(), col(0).gt(lit(100i64)));
        assert!(run_to_rows(&mut f).is_empty());
    }
}
