//! Table scans: clean, PDT-merging (positional), VDT-merging and
//! row-buffer-merging (both value-based).
//!
//! This operator is where the paper's central comparison materialises:
//!
//! * **PDT mode** reads exactly the projected columns and applies updates
//!   positionally (no key I/O, no key comparisons). Stacked PDTs
//!   (Read/Write/Trans — eq. (9)) are merged in sequence: each layer's
//!   output RIDs are the next layer's SIDs.
//! * **VDT mode** must additionally read **all sort-key columns** and runs
//!   MergeUnion/MergeDiff value comparisons per tuple.
//! * **Rows mode** folds a copy-on-write row buffer ([`rowstore`]) into the
//!   scan — the classic delta-store baseline. Being value-addressed, it
//!   pays the same sort-key I/O and comparison tax as the VDT.
//! * **Clean mode** scans the stable image only (the "no-updates" bars of
//!   Figure 19).
//!
//! Ranged scans resolve a sort-key prefix range to a SID range through the
//! (stale-tolerant) sparse index and position all delta structures
//! accordingly.

use crate::batch::Batch;
use crate::ops::Operator;
use crate::stats::ScanClock;
use columnar::{ColumnVec, IoTracker, ScanRange, StableTable, Value, ValueType};
use pdt::{Pdt, PdtMerger};
use rowstore::{RowBuffer, RowMerger};
use std::time::Instant;
use vdt::{Vdt, VdtMerger};

/// Differential layers to merge into the scan.
pub enum DeltaLayers<'a> {
    /// Scan the stable image only.
    None,
    /// Positional merge through a stack of PDTs, bottom layer first
    /// (e.g. `[read_pdt, write_pdt, trans_pdt]`).
    Pdt(Vec<&'a Pdt>),
    /// Value-based merge through a VDT.
    Vdt(&'a Vdt),
    /// Value-based merge through a copy-on-write row buffer.
    Rows(&'a RowBuffer),
}

/// Inclusive sort-key prefix bounds for a ranged scan.
#[derive(Debug, Clone, Default)]
pub struct ScanBounds {
    /// Inclusive lower bound on a sort-key prefix (`None`: unbounded).
    pub lo: Option<Vec<Value>>,
    /// Inclusive upper bound on a sort-key prefix (`None`: unbounded).
    pub hi: Option<Vec<Value>>,
}

/// One horizontal slice of a range-partitioned table, as a scan sees it:
/// the partition's stable image, the delta layers to merge over it, and
/// the global RID of the partition's first visible row. A
/// [`TableScan::union`] walks a vector of these in split order, re-basing
/// each partition's locally consecutive RIDs by `rid_base` so the union
/// emits globally consecutive RIDs.
pub struct ScanSegment<'a> {
    /// The partition's stable image.
    pub stable: &'a StableTable,
    /// The delta layers a scan must merge over it.
    pub layers: DeltaLayers<'a>,
    /// Global visible RID of this partition's first row (the sum of all
    /// earlier partitions' visible row counts).
    pub rid_base: u64,
    /// Tracker to charge this segment's block reads to instead of the
    /// union's (`None`: use the union's). The engine passes per-partition
    /// trackers scoped to each partition's heat sink, so a union scan's
    /// block touches attribute to the right partition.
    pub io: Option<IoTracker>,
}

enum MergeState<'a> {
    None,
    Pdt(Vec<PdtMerger<'a>>),
    Vdt(Box<VdtMerger<'a>>),
    Rows(Box<RowMerger<'a>>),
}

/// The scan operator.
///
/// ## Pinning
///
/// A scan borrows its stable table and delta layers for its whole
/// lifetime — it never re-reads them from the database. The engine's read
/// views hand out these borrows from `Arc`-held snapshots (stable image +
/// committed delta capture), so a scan is pinned to one consistent cut:
/// background maintenance may swap a fresh stable image or retire delta
/// layers mid-scan, and the scan keeps reading the pinned versions,
/// emitting exactly the rows visible when its view opened.
///
/// ## Partitions
///
/// A scan is either single-segment ([`TableScan::new`] /
/// [`TableScan::ranged`], the unpartitioned case — all RIDs local) or a
/// union over the ordered partitions of a range-partitioned table
/// ([`TableScan::union`]): each partition runs the same per-segment merge
/// machinery against its own stable slice and delta layers, and the union
/// re-bases every emitted batch by the partition's `rid_base` so output
/// RIDs stay globally consecutive across split points.
pub struct TableScan<'a> {
    table: &'a StableTable,
    proj: Vec<usize>,
    range: ScanRange,
    /// columns actually read from storage (proj ∪ sort key for VDT mode)
    io_cols: Vec<usize>,
    state: MergeState<'a>,
    next_block: usize,
    end_block: usize,
    /// The *current segment* is exhausted (the union may still advance).
    finished: bool,
    io: IoTracker,
    clock: ScanClock,
    vdt: Option<&'a Vdt>,
    drain_upper: Option<Vec<Value>>,
    /// RID of the first row this scan would emit (even if it emits none —
    /// e.g. a fully ghosted range); DML rank computations rely on it.
    /// Global for unions (first segment's base + its local start).
    start_rid: u64,
    /// Visible-rid output window `[rid_lo, rid_hi)` in *global* RIDs — see
    /// [`TableScan::clamp_rids`].
    rid_lo: u64,
    rid_hi: u64,
    /// Global RID of the current segment's first visible row (0 for
    /// single-segment scans).
    rid_base: u64,
    /// Remaining partition segments, in split order.
    pending: std::collections::VecDeque<ScanSegment<'a>>,
    /// The whole scan (every segment) is exhausted, or the rid window's
    /// upper edge was passed.
    done: bool,
    /// Some batch has been emitted (freezes `start_rid` across segment
    /// advances).
    emitted: bool,
    /// Kept across segment advances so `bounds` can re-resolve per slice.
    bounds: ScanBounds,
    /// The union-level tracker: the default for segments without their own
    /// `io` override (`None` outside a union — `io` is then the only
    /// tracker).
    union_io: Option<IoTracker>,
    /// `explain_analyze` counters attached via [`TableScan::set_profile`];
    /// carried across segment advances.
    profile: Option<std::sync::Arc<obs::ScanProfile>>,
    /// Blocks the zone map pruned off this segment's range in
    /// [`TableScan::ranged`] (clean scans only).
    zone_skipped: u64,
}

impl<'a> TableScan<'a> {
    /// Full-table scan.
    pub fn new(
        table: &'a StableTable,
        delta: DeltaLayers<'a>,
        proj: Vec<usize>,
        io: IoTracker,
        clock: ScanClock,
    ) -> Self {
        Self::ranged(table, delta, proj, ScanBounds::default(), io, clock)
    }

    /// Ranged scan over a sort-key prefix interval (both bounds inclusive).
    pub fn ranged(
        table: &'a StableTable,
        delta: DeltaLayers<'a>,
        proj: Vec<usize>,
        bounds: ScanBounds,
        io: IoTracker,
        clock: ScanClock,
    ) -> Self {
        let range = table.sid_range(bounds.lo.as_deref(), bounds.hi.as_deref());
        let mut start_rid = range.start;
        let (state, io_cols, vdt, drain_upper) = match delta {
            DeltaLayers::None => (MergeState::None, proj.clone(), None, None),
            DeltaLayers::Pdt(layers) => {
                // stack the mergers: each layer starts where the previous
                // layer's output begins
                let mut mergers = Vec::with_capacity(layers.len());
                let mut start = range.start;
                for p in layers {
                    let m = PdtMerger::new(p, start);
                    start = m.next_rid();
                    mergers.push(m);
                }
                start_rid = start;
                (MergeState::Pdt(mergers), proj.clone(), None, None)
            }
            DeltaLayers::Vdt(v) => {
                let io_cols = value_io_cols(table, &proj);
                let merger = if range.start == 0 {
                    VdtMerger::new(v)
                } else {
                    let key = table
                        .sk_of_row(range.start, &io)
                        .expect("range start within table");
                    VdtMerger::new_ranged(v, range.start, &key)
                };
                start_rid = merger.next_rid();
                let upper = drain_upper_key(table, &range, &io);
                (MergeState::Vdt(Box::new(merger)), io_cols, Some(v), upper)
            }
            DeltaLayers::Rows(rb) => {
                let io_cols = value_io_cols(table, &proj);
                let merger = if range.start == 0 {
                    RowMerger::new(rb)
                } else {
                    let key = table
                        .sk_of_row(range.start, &io)
                        .expect("range start within table");
                    RowMerger::new_ranged(rb, range.start, &key)
                };
                start_rid = merger.next_rid();
                let upper = drain_upper_key(table, &range, &io);
                (MergeState::Rows(Box::new(merger)), io_cols, None, upper)
            }
        };
        let mut zone_skipped = 0u64;
        let (next_block, end_block) = if range.is_empty() {
            (usize::MAX, 0)
        } else {
            let mut first = table.block_of(range.start);
            let mut last = table.block_of(range.end.saturating_sub(1)) + 1;
            if matches!(state, MergeState::None) {
                let conservative = (last - first) as u64;
                // Clean scans may skip blocks via the exact per-block
                // min/max zone map: `sid_range` stays over-inclusive (one
                // block early) so positionally patched scans never lose
                // ghost-relative inserts, but with no differential layer a
                // skipped block provably holds no qualifying row. Merging
                // scans must keep the conservative range — their mergers
                // consume blocks in SID order.
                let (lo_b, hi_b) =
                    table.block_range_for(bounds.lo.as_deref(), bounds.hi.as_deref());
                first = first.max(lo_b);
                last = last.min(hi_b);
                // Every skipped leading row sorts below `lo`, so the rank
                // of the scan's first (potential) output row — what DML
                // insert positioning reads off `start_rid` — anchors at
                // the first surviving block, or at the range's end when
                // no block survives.
                let anchor = if first >= table.num_blocks() {
                    range.end
                } else {
                    table.block_range(first).0
                };
                start_rid = start_rid.max(anchor).min(range.end);
                zone_skipped = conservative
                    - if first < last {
                        (last - first) as u64
                    } else {
                        0
                    };
            }
            if first < last {
                (first, last)
            } else {
                (usize::MAX, 0)
            }
        };
        let finished = next_block == usize::MAX && state_kind(&state) == 0;
        TableScan {
            table,
            proj,
            range,
            io_cols,
            state,
            next_block,
            end_block,
            finished,
            io,
            clock,
            vdt,
            drain_upper,
            start_rid,
            rid_lo: 0,
            rid_hi: u64::MAX,
            rid_base: 0,
            pending: std::collections::VecDeque::new(),
            done: false,
            emitted: false,
            bounds,
            union_io: None,
            profile: None,
            zone_skipped,
        }
    }

    /// Attach `explain_analyze` profile counters. The current segment is
    /// accounted (merge path, zone-map-skipped blocks) immediately;
    /// later segments are accounted as the union advances into them.
    pub fn set_profile(&mut self, profile: std::sync::Arc<obs::ScanProfile>) {
        use std::sync::atomic::Ordering::Relaxed;
        profile.segments.fetch_add(1, Relaxed);
        profile.blocks_skipped.fetch_add(self.zone_skipped, Relaxed);
        profile.record_path(match state_kind(&self.state) {
            0 => obs::MergePath::Clean,
            1 => obs::MergePath::PdtKernel,
            2 => obs::MergePath::VdtKernel,
            _ => obs::MergePath::RowsKernel,
        });
        self.profile = Some(profile);
    }

    /// The attached `explain_analyze` profile, if any — clone the `Arc`
    /// before draining the scan to read the counters afterwards.
    pub fn profile(&self) -> Option<std::sync::Arc<obs::ScanProfile>> {
        self.profile.clone()
    }

    /// Union scan over the ordered partitions of a range-partitioned
    /// table: every segment is scanned with the same projection and
    /// sort-key bounds (each partition resolves the bounds against its own
    /// sparse index), and emitted RIDs are re-based by each segment's
    /// `rid_base` so the union's output is globally rid-consecutive —
    /// batch `rid_start`s continue across split points exactly as if the
    /// table were one image. `segments` must be non-empty and ordered by
    /// `rid_base`.
    pub fn union(
        mut segments: Vec<ScanSegment<'a>>,
        proj: Vec<usize>,
        bounds: ScanBounds,
        io: IoTracker,
        clock: ScanClock,
    ) -> Self {
        assert!(!segments.is_empty(), "union scan needs ≥ 1 segment");
        let rest: std::collections::VecDeque<ScanSegment<'a>> = segments.split_off(1).into();
        let first = segments.pop().expect("non-empty");
        let seg_io = first.io.unwrap_or_else(|| io.clone());
        let mut scan = TableScan::ranged(first.stable, first.layers, proj, bounds, seg_io, clock);
        scan.union_io = Some(io);
        scan.rid_base = first.rid_base;
        scan.start_rid += first.rid_base;
        scan.pending = rest;
        scan
    }

    /// Drop the current segment and re-initialise the scan over the next
    /// pending one (preserving the global rid window and, once any row
    /// has been emitted, `start_rid`). Returns `false` when no segment
    /// remains. Segments that end at or before the window's lower edge
    /// are skipped without touching their blocks — the per-partition
    /// clamp that keeps rid-window scans from paying for partitions
    /// wholly outside the window.
    fn advance_segment(&mut self) -> bool {
        loop {
            let Some(seg) = self.pending.pop_front() else {
                return false;
            };
            // this segment spans [seg.rid_base, next.rid_base): skip it
            // when the window starts at or past its end
            if let Some(next) = self.pending.front() {
                if next.rid_base <= self.rid_lo {
                    continue;
                }
            }
            let base_io = self.union_io.clone().unwrap_or_else(|| self.io.clone());
            let seg_io = seg.io.unwrap_or_else(|| base_io.clone());
            let mut fresh = TableScan::ranged(
                seg.stable,
                seg.layers,
                std::mem::take(&mut self.proj),
                self.bounds.clone(),
                seg_io,
                self.clock.clone(),
            );
            fresh.union_io = Some(base_io);
            fresh.rid_base = seg.rid_base;
            fresh.rid_lo = self.rid_lo;
            fresh.rid_hi = self.rid_hi;
            // start_rid is the rank of the first row the *union* would
            // emit: while earlier segments emitted nothing (their ranges
            // resolved empty), the fresh segment's rank supersedes theirs
            fresh.start_rid = if self.emitted {
                self.start_rid
            } else {
                seg.rid_base + fresh.start_rid
            };
            fresh.emitted = self.emitted;
            fresh.pending = std::mem::take(&mut self.pending);
            if let Some(p) = self.profile.take() {
                fresh.set_profile(p);
            }
            *self = fresh;
            return true;
        }
    }

    /// Restrict the scan's *output* to the visible positions `[lo, hi)`
    /// (global positions for a partition union). Batches before the window
    /// are skipped, the batch straddling an edge is sliced, and the scan
    /// finishes as soon as it passes `hi` — the early-exit positional DML
    /// (`delete_rids`, `update_col`) relies on this when collecting
    /// pre-images. Block I/O within the window is unchanged: positions
    /// only map to blocks directly when no delta is merged, so the clamp
    /// trims rows, not reads. For a union the window is clamped **per
    /// partition**: each segment's batches are re-based to global RIDs
    /// before clipping, a window straddling a split point takes the tail
    /// of one partition and the head of the next, and partitions wholly
    /// below the window are skipped without any block I/O.
    pub fn clamp_rids(&mut self, lo: u64, hi: u64) {
        self.rid_lo = lo;
        self.rid_hi = hi;
        // the current segment spans [rid_base, next.rid_base): when the
        // window starts at or past its end, retire it unscanned —
        // `advance_segment` then skips any further wholly-below segments
        if let Some(next) = self.pending.front() {
            if next.rid_base <= lo {
                self.finished = true;
            }
        }
    }

    /// Slice `b` (already re-based to global RIDs) to the rid window;
    /// `None` means "outside, keep going" — unless the scan was marked
    /// done by passing the window's end.
    fn clip_to_window(&mut self, b: Batch) -> Option<Batch> {
        let start = b.rid_start;
        let end = start + b.num_rows() as u64;
        if start >= self.rid_hi {
            // every later batch — and every later partition — is past the
            // window: the whole union is done, not just this segment
            self.done = true;
            return None;
        }
        if end <= self.rid_lo {
            return None;
        }
        if start >= self.rid_lo && end <= self.rid_hi {
            return Some(b);
        }
        let lo = self.rid_lo.max(start);
        let hi = self.rid_hi.min(end);
        let cols = b
            .cols
            .iter()
            .map(|c| c.slice_range((lo - start) as usize, (hi - start) as usize))
            .collect();
        Some(Batch {
            cols,
            rid_start: lo,
        })
    }

    /// RID of the first row this scan would emit: the rank of the scan
    /// range's start in the visible (merged) image. Valid even when the
    /// whole range is ghosted and the scan emits nothing — the property
    /// insert-positioning DML depends on.
    pub fn start_rid(&self) -> u64 {
        self.start_rid
    }

    /// Decode the scan's columns for block `b`, sliced to the scan range.
    /// Returns `(start_sid, per-io_col data)`.
    fn read_block(&self, b: usize) -> (u64, Vec<ColumnVec>) {
        let profile_bytes0 = self.profile.as_ref().map(|_| self.io.stats().bytes_read);
        let (bstart, bend) = self.table.block_range(b);
        let lo = self.range.start.max(bstart);
        let hi = self.range.end.min(bend);
        let cols: Vec<ColumnVec> = self
            .io_cols
            .iter()
            .map(|&c| {
                let full = self
                    .table
                    .read_block(c, b, &self.io)
                    .expect("block within table");
                if lo == bstart && hi == bend {
                    full
                } else {
                    // representation-preserving: coded blocks stay coded
                    full.slice_range((lo - bstart) as usize, (hi - bstart) as usize)
                }
            })
            .collect();
        if let Some(p) = &self.profile {
            use std::sync::atomic::Ordering::Relaxed;
            p.blocks_decoded.fetch_add(1, Relaxed);
            let bytes = self.io.stats().bytes_read - profile_bytes0.unwrap_or(0);
            p.bytes_read.fetch_add(bytes, Relaxed);
        }
        (lo, cols)
    }

    fn proj_types(&self) -> Vec<ValueType> {
        self.proj
            .iter()
            .map(|&c| self.table.schema().vtype(c))
            .collect()
    }

    /// Push a block through PDT layers `layer..`, returning the output
    /// RID-start and columns.
    fn feed_pdt(
        mergers: &mut [PdtMerger<'a>],
        proj: &[usize],
        types: &[ValueType],
        mut start: u64,
        mut cols: Vec<ColumnVec>,
    ) -> (u64, Vec<ColumnVec>) {
        for m in mergers.iter_mut() {
            let rid0 = m.next_rid();
            // dictionary-coded inputs get coded outputs so the merge stays
            // on the u32 path through every stacked layer
            let mut out: Vec<ColumnVec> = types
                .iter()
                .zip(&cols)
                .map(|(&t, c)| match c.dict() {
                    Some(d) => ColumnVec::new_coded(d.clone()),
                    None => ColumnVec::new(t),
                })
                .collect();
            let len = cols.first().map(|c| c.len()).unwrap_or(0);
            m.merge_block(start, len, proj, &cols, &mut out);
            start = rid0;
            cols = out;
        }
        (start, cols)
    }

    /// Drain trailing inserts of every PDT layer (after the last block).
    fn finish_pdt(&mut self) -> Option<Batch> {
        let types = self.proj_types();
        let MergeState::Pdt(ref mut mergers) = self.state else {
            return None;
        };
        let n = mergers.len();
        let mut collected: Vec<ColumnVec> = types.iter().map(|&t| ColumnVec::new(t)).collect();
        let mut rid_start = None;
        let mut end = self.range.end;
        for k in 0..n {
            // drain layer k at its input end, then push the drained rows
            // through the layers above it
            let rid0 = mergers[k].next_rid();
            let mut drained: Vec<ColumnVec> = types.iter().map(|&t| ColumnVec::new(t)).collect();
            mergers[k].drain_inserts_at(end, &self.proj, &mut drained);
            end = mergers[k].next_rid(); // input end for layer k+1
            if !drained[0].is_empty() {
                let (r0, cols) =
                    Self::feed_pdt(&mut mergers[k + 1..], &self.proj, &types, rid0, drained);
                if rid_start.is_none() {
                    rid_start = Some(r0);
                }
                for (o, c) in collected.iter_mut().zip(&cols) {
                    o.extend_range(c, 0, c.len());
                }
            }
        }
        if collected[0].is_empty() {
            None
        } else {
            Some(Batch {
                cols: collected,
                rid_start: rid_start.unwrap_or(0),
            })
        }
    }
}

fn state_kind(s: &MergeState) -> u8 {
    match s {
        MergeState::None => 0,
        MergeState::Pdt(_) => 1,
        MergeState::Vdt(_) => 2,
        MergeState::Rows(_) => 3,
    }
}

/// Columns a value-based merge must read: the projection plus every
/// sort-key column (the tax positional merging avoids).
fn value_io_cols(table: &StableTable, proj: &[usize]) -> Vec<usize> {
    let mut io_cols = proj.to_vec();
    for &c in table.sort_key().cols() {
        if !io_cols.contains(&c) {
            io_cols.push(c);
        }
    }
    io_cols
}

/// Sort key of the first stable row past the scanned range: buffered
/// inserts beyond it must not be drained by a ranged scan.
fn drain_upper_key(table: &StableTable, range: &ScanRange, io: &IoTracker) -> Option<Vec<Value>> {
    if range.end < table.row_count() {
        Some(
            table
                .sk_of_row(range.end, io)
                .expect("range end within table"),
        )
    } else {
        None
    }
}

impl<'a> Operator for TableScan<'a> {
    fn next_batch(&mut self) -> Option<Batch> {
        // a batch may be legitimately empty mid-stream (fully deleted
        // block): loop — not recurse — to the next one, so a long run of
        // ghosted blocks (common right before a checkpoint retires heavy
        // deletes) cannot grow the stack with the table
        loop {
            if self.done {
                return None;
            }
            if self.finished {
                // current segment exhausted: next partition, if any
                if !self.advance_segment() {
                    self.done = true;
                    return None;
                }
                continue;
            }
            let t0 = Instant::now();
            let out = self.produce();
            self.clock.charge(t0);
            if let Some(p) = &self.profile {
                p.wall_ns.fetch_add(
                    t0.elapsed().as_nanos() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
            }
            let Some(mut b) = out else {
                continue; // `produce` marked the segment finished
            };
            if b.is_empty() {
                continue;
            }
            // partition-local → global RIDs, then clip globally
            b.rid_start += self.rid_base;
            self.emitted = true;
            match self.clip_to_window(b) {
                Some(mut clipped) => {
                    // late materialization: dictionary codes are decoded to
                    // strings only here, at batch emission — everything
                    // upstream (merge, clipping, stacking) ran on u32 codes
                    for c in &mut clipped.cols {
                        c.materialize_in_place();
                    }
                    if let Some(p) = &self.profile {
                        use std::sync::atomic::Ordering::Relaxed;
                        p.batches.fetch_add(1, Relaxed);
                        p.rows.fetch_add(clipped.num_rows() as u64, Relaxed);
                    }
                    return Some(clipped);
                }
                None => continue,
            }
        }
    }

    fn out_types(&self) -> Vec<ValueType> {
        self.proj_types()
    }
}

impl<'a> TableScan<'a> {
    fn produce(&mut self) -> Option<Batch> {
        'produce: {
            // blocks remaining?
            if self.next_block != usize::MAX && self.next_block < self.end_block {
                let b = self.next_block;
                self.next_block += 1;
                let (start_sid, cols) = self.read_block(b);
                let len = cols.first().map(|c| c.len()).unwrap_or(0);
                match &mut self.state {
                    MergeState::None => {
                        break 'produce Some(Batch {
                            cols,
                            rid_start: start_sid,
                        });
                    }
                    MergeState::Pdt(mergers) => {
                        let types: Vec<ValueType> = self
                            .proj
                            .iter()
                            .map(|&c| self.table.schema().vtype(c))
                            .collect();
                        let (rid0, cols) =
                            Self::feed_pdt(mergers, &self.proj, &types, start_sid, cols);
                        break 'produce Some(Batch {
                            cols,
                            rid_start: rid0,
                        });
                    }
                    MergeState::Vdt(_) | MergeState::Rows(_) => {
                        // split decoded columns into projection + sort key
                        let nproj = self.proj.len();
                        let sk_cols = self.table.sort_key().cols();
                        let sk_in: Vec<ColumnVec> = sk_cols
                            .iter()
                            .map(|c| {
                                let pos =
                                    self.io_cols.iter().position(|x| x == c).expect("sk read");
                                cols[pos].clone()
                            })
                            .collect();
                        let mut out: Vec<ColumnVec> = (0..nproj)
                            .map(|k| match cols[k].dict() {
                                Some(d) => ColumnVec::new_coded(d.clone()),
                                None => ColumnVec::new(cols[k].vtype()),
                            })
                            .collect();
                        let rid0 = match &mut self.state {
                            MergeState::Vdt(merger) => {
                                let rid0 = merger.next_rid();
                                merger.merge_block(
                                    len,
                                    &self.proj,
                                    &sk_in,
                                    &cols[..nproj],
                                    &mut out,
                                );
                                rid0
                            }
                            MergeState::Rows(merger) => {
                                let rid0 = merger.next_rid();
                                merger.merge_block(
                                    len,
                                    &self.proj,
                                    &sk_in,
                                    &cols[..nproj],
                                    &mut out,
                                );
                                rid0
                            }
                            _ => unreachable!(),
                        };
                        break 'produce Some(Batch {
                            cols: out,
                            rid_start: rid0,
                        });
                    }
                }
            }
            // blocks exhausted: drain pending inserts once
            self.finished = true;
            match &mut self.state {
                MergeState::None => None,
                MergeState::Pdt(_) => {
                    break 'produce self.finish_pdt();
                }
                MergeState::Vdt(_) | MergeState::Rows(_) => {
                    let mut out: Vec<ColumnVec> = self
                        .proj
                        .iter()
                        .map(|&c| ColumnVec::new(self.table.schema().vtype(c)))
                        .collect();
                    let rid0 = match &mut self.state {
                        MergeState::Vdt(merger) => {
                            let rid0 = merger.next_rid();
                            merger.drain_inserts(self.drain_upper.as_deref(), &self.proj, &mut out);
                            rid0
                        }
                        MergeState::Rows(merger) => {
                            let rid0 = merger.next_rid();
                            merger.drain_inserts(self.drain_upper.as_deref(), &self.proj, &mut out);
                            rid0
                        }
                        _ => unreachable!(),
                    };
                    if out[0].is_empty() {
                        None
                    } else {
                        Some(Batch {
                            cols: out,
                            rid_start: rid0,
                        })
                    }
                }
            }
        }
    }
}

// `vdt` field is kept for debugging/assertions.
impl std::fmt::Debug for TableScan<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableScan")
            .field("proj", &self.proj)
            .field("range", &self.range)
            .field("mode", &state_kind(&self.state))
            .field("has_vdt", &self.vdt.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::run_to_rows;
    use columnar::{Schema, TableMeta, TableOptions, Tuple};
    use pdt::checkpoint::merge_rows;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("k", ValueType::Int),
            ("a", ValueType::Int),
            ("b", ValueType::Str),
        ])
    }

    fn rows(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Int(i * 10),
                    Value::Int(i),
                    Value::Str(format!("r{i}")),
                ]
            })
            .collect()
    }

    fn table(n: i64) -> StableTable {
        StableTable::bulk_load(
            TableMeta::new("t", schema(), vec![0]),
            TableOptions {
                block_rows: 4,
                compressed: true,
            },
            &rows(n),
        )
        .unwrap()
    }

    fn updated_pdt() -> Pdt {
        let mut p = Pdt::new(schema(), vec![0]);
        p.add_insert(
            0,
            0,
            &[Value::Int(-5), Value::Int(99), Value::Str("new".into())],
        );
        p.add_delete(3, &[Value::Int(20)]); // stable 2
        p.add_modify(5, 1, &Value::Int(-4)); // stable 4
                                             // append at the end: 20 stable + 1 ins − 1 del = rid 20
        p.add_insert(
            20,
            20,
            &[Value::Int(999), Value::Int(0), Value::Str("tail".into())],
        );
        p
    }

    #[test]
    fn clean_scan_roundtrip() {
        let t = table(20);
        let io = IoTracker::new();
        let clock = ScanClock::new();
        let mut scan = TableScan::new(&t, DeltaLayers::None, vec![0, 1, 2], io, clock.clone());
        assert_eq!(run_to_rows(&mut scan), rows(20));
        assert!(clock.nanos() > 0);
    }

    #[test]
    fn pdt_scan_matches_row_merge() {
        let t = table(20);
        let p = updated_pdt();
        let io = IoTracker::new();
        let mut scan = TableScan::new(
            &t,
            DeltaLayers::Pdt(vec![&p]),
            vec![0, 1, 2],
            io,
            ScanClock::new(),
        );
        assert_eq!(run_to_rows(&mut scan), merge_rows(&rows(20), &p));
    }

    #[test]
    fn stacked_pdt_scan() {
        let t = table(20);
        let lower = updated_pdt();
        let mid = merge_rows(&rows(20), &lower);
        let mut upper = Pdt::new(schema(), vec![0]);
        upper.add_delete(0, &[Value::Int(-5)]); // delete the lower insert
        upper.add_modify(4, 2, &Value::Str("upper".into()));
        // after upper's delete at rid 0, rid 7 corresponds to sid 8
        upper.add_insert(
            8,
            7,
            &[Value::Int(55), Value::Int(5), Value::Str("u-ins".into())],
        );
        let want = merge_rows(&mid, &upper);
        let io = IoTracker::new();
        let mut scan = TableScan::new(
            &t,
            DeltaLayers::Pdt(vec![&lower, &upper]),
            vec![0, 1, 2],
            io,
            ScanClock::new(),
        );
        assert_eq!(run_to_rows(&mut scan), want);
    }

    #[test]
    fn vdt_scan_matches_row_merge() {
        let t = table(20);
        let mut v = Vdt::new(schema(), vec![0]);
        v.insert(vec![
            Value::Int(-5),
            Value::Int(99),
            Value::Str("new".into()),
        ]);
        v.delete(&[Value::Int(20)]);
        v.modify(&rows(20)[4], 1, Value::Int(-4));
        v.insert(vec![Value::Int(999), Value::Int(0), Value::Str("t".into())]);
        let want = v.merge_rows(&rows(20));
        let io = IoTracker::new();
        let mut scan = TableScan::new(
            &t,
            DeltaLayers::Vdt(&v),
            vec![0, 1, 2],
            io,
            ScanClock::new(),
        );
        assert_eq!(run_to_rows(&mut scan), want);
    }

    #[test]
    fn rows_scan_matches_row_merge() {
        let t = table(20);
        let base = rows(20);
        let mut b = RowBuffer::new(schema(), vec![0]);
        b.insert(vec![
            Value::Int(-5),
            Value::Int(99),
            Value::Str("new".into()),
        ]);
        b.delete_key(&[Value::Int(20)]);
        b.modify(&base[4], 1, Value::Int(-4));
        b.insert(vec![Value::Int(999), Value::Int(0), Value::Str("t".into())]);
        let want = b.merge_rows(&base);
        let io = IoTracker::new();
        let mut scan = TableScan::new(
            &t,
            DeltaLayers::Rows(&b),
            vec![0, 1, 2],
            io,
            ScanClock::new(),
        );
        assert_eq!(run_to_rows(&mut scan), want);
    }

    #[test]
    fn ranged_scan_rows_matches_filtered_full_scan() {
        let t = table(40);
        let mut b = RowBuffer::new(schema(), vec![0]);
        b.delete_key(&[Value::Int(200)]);
        b.insert(vec![Value::Int(195), Value::Int(0), Value::Str("g".into())]);
        let io = IoTracker::new();
        let mut scan = TableScan::ranged(
            &t,
            DeltaLayers::Rows(&b),
            vec![0],
            ScanBounds {
                lo: Some(vec![Value::Int(190)]),
                hi: Some(vec![Value::Int(210)]),
            },
            io,
            ScanClock::new(),
        );
        let got = run_to_rows(&mut scan);
        let keys: Vec<i64> = got.iter().map(|r| r[0].as_int()).collect();
        assert!(keys.contains(&195) && !keys.contains(&200));
    }

    #[test]
    fn rows_scan_pays_key_column_io_like_vdt() {
        let t = table(1000);
        let b = RowBuffer::new(schema(), vec![0]);
        let p = Pdt::new(schema(), vec![0]);
        let io_pdt = IoTracker::new();
        let mut scan = TableScan::new(
            &t,
            DeltaLayers::Pdt(vec![&p]),
            vec![1],
            io_pdt.clone(),
            ScanClock::new(),
        );
        while scan.next_batch().is_some() {}
        let io_rows = IoTracker::new();
        let mut scan = TableScan::new(
            &t,
            DeltaLayers::Rows(&b),
            vec![1],
            io_rows.clone(),
            ScanClock::new(),
        );
        while scan.next_batch().is_some() {}
        assert!(
            io_rows.stats().bytes_read > io_pdt.stats().bytes_read,
            "row-buffer merging must read the sort-key column: {} vs {}",
            io_rows.stats().bytes_read,
            io_pdt.stats().bytes_read
        );
    }

    #[test]
    fn vdt_pays_key_column_io_pdt_does_not() {
        let t = table(1000);
        let p = Pdt::new(schema(), vec![0]);
        let v = Vdt::new(schema(), vec![0]);
        // project only column 1 (not the sort key)
        let io_pdt = IoTracker::new();
        let mut scan = TableScan::new(
            &t,
            DeltaLayers::Pdt(vec![&p]),
            vec![1],
            io_pdt.clone(),
            ScanClock::new(),
        );
        while scan.next_batch().is_some() {}
        let io_vdt = IoTracker::new();
        let mut scan = TableScan::new(
            &t,
            DeltaLayers::Vdt(&v),
            vec![1],
            io_vdt.clone(),
            ScanClock::new(),
        );
        while scan.next_batch().is_some() {}
        assert!(
            io_vdt.stats().bytes_read > io_pdt.stats().bytes_read,
            "VDT must read the sort-key column: {} vs {}",
            io_vdt.stats().bytes_read,
            io_pdt.stats().bytes_read
        );
    }

    #[test]
    fn ranged_scan_pdt_covers_predicate() {
        let t = table(40);
        let mut p = Pdt::new(schema(), vec![0]);
        // delete key 200 (sid 20, rid 20) then insert 195 before the ghost
        p.add_delete(20, &[Value::Int(200)]);
        let sid = p.sk_rid_to_sid(&[Value::Int(195)], 20);
        assert_eq!(sid, 20);
        p.add_insert(
            sid,
            20,
            &[Value::Int(195), Value::Int(0), Value::Str("g".into())],
        );
        let io = IoTracker::new();
        let mut scan = TableScan::ranged(
            &t,
            DeltaLayers::Pdt(vec![&p]),
            vec![0],
            ScanBounds {
                lo: Some(vec![Value::Int(190)]),
                hi: Some(vec![Value::Int(210)]),
            },
            io.clone(),
            ScanClock::new(),
        );
        let got = run_to_rows(&mut scan);
        let keys: Vec<i64> = got.iter().map(|r| r[0].as_int()).collect();
        assert!(keys.contains(&190) && keys.contains(&195) && keys.contains(&210));
        assert!(!keys.contains(&200));
        // ranged: must not have read the whole table
        let full = t.total_bytes();
        assert!(io.stats().bytes_read < full / 2);
    }

    /// A clean ranged scan may use the exact per-block zone map and skip
    /// the extra leading block `sid_range` keeps for ghost-relative
    /// inserts; a merging scan over the same bounds must not.
    #[test]
    fn clean_ranged_scan_skips_blocks_via_zone_map() {
        let t = table(40);
        let bounds = || ScanBounds {
            lo: Some(vec![Value::Int(200)]),
            hi: Some(vec![Value::Int(250)]),
        };
        let in_range = |r: &Tuple| (200..=250).contains(&r[0].as_int());
        let p = Pdt::new(schema(), vec![0]);
        let io_merged = IoTracker::new();
        let mut merged = TableScan::ranged(
            &t,
            DeltaLayers::Pdt(vec![&p]),
            vec![0, 1, 2],
            bounds(),
            io_merged.clone(),
            ScanClock::new(),
        );
        let want: Vec<Tuple> = run_to_rows(&mut merged)
            .into_iter()
            .filter(|r| in_range(r))
            .collect();
        let io_clean = IoTracker::new();
        let mut clean = TableScan::ranged(
            &t,
            DeltaLayers::None,
            vec![0, 1, 2],
            bounds(),
            io_clean.clone(),
            ScanClock::new(),
        );
        let got: Vec<Tuple> = run_to_rows(&mut clean)
            .into_iter()
            .filter(|r| in_range(r))
            .collect();
        assert_eq!(got, want, "zone-map skipping must not drop qualifying rows");
        assert_eq!(got.len(), 6, "keys 200..=250 step 10");
        assert!(
            io_clean.stats().blocks_read < io_merged.stats().blocks_read,
            "clean scan must skip the over-inclusive leading block: {} vs {} blocks",
            io_clean.stats().blocks_read,
            io_merged.stats().blocks_read
        );
        assert!(io_clean.stats().bytes_read < io_merged.stats().bytes_read);
    }

    /// When the zone map skips leading blocks, `start_rid` must advance
    /// past them — DML insert positioning ranks keys against it, and a
    /// stale conservative rank would file inserts at ghost positions.
    #[test]
    fn clean_ranged_scan_start_rid_anchors_past_skipped_blocks() {
        let t = table(40); // keys 0..390
                           // lo beyond every key: all blocks skipped, rank = row count
        let mut scan = TableScan::ranged(
            &t,
            DeltaLayers::None,
            vec![0],
            ScanBounds {
                lo: Some(vec![Value::Int(500)]),
                hi: None,
            },
            IoTracker::new(),
            ScanClock::new(),
        );
        assert!(scan.next_batch().is_none());
        assert_eq!(scan.start_rid(), 40);
        // lo mid-table: rank anchors at the first surviving block, which
        // is also the first emitted row
        let mut scan = TableScan::ranged(
            &t,
            DeltaLayers::None,
            vec![0],
            ScanBounds {
                lo: Some(vec![Value::Int(200)]),
                hi: None,
            },
            IoTracker::new(),
            ScanClock::new(),
        );
        let first = scan.next_batch().expect("tail of the table qualifies");
        assert_eq!(first.rid_start, 20, "sid of key 200");
        assert_eq!(scan.start_rid(), first.rid_start);
    }

    #[test]
    fn ranged_scan_vdt_matches_filtered_full_scan() {
        let t = table(40);
        let mut v = Vdt::new(schema(), vec![0]);
        v.delete(&[Value::Int(200)]);
        v.insert(vec![Value::Int(195), Value::Int(0), Value::Str("g".into())]);
        let io = IoTracker::new();
        let mut scan = TableScan::ranged(
            &t,
            DeltaLayers::Vdt(&v),
            vec![0],
            ScanBounds {
                lo: Some(vec![Value::Int(190)]),
                hi: Some(vec![Value::Int(210)]),
            },
            io,
            ScanClock::new(),
        );
        let got = run_to_rows(&mut scan);
        let keys: Vec<i64> = got.iter().map(|r| r[0].as_int()).collect();
        assert!(keys.contains(&195) && !keys.contains(&200));
    }

    #[test]
    fn rid_clamp_slices_and_early_exits() {
        let t = table(20);
        let p = updated_pdt();
        for (lo, hi) in [(0u64, 21u64), (3, 9), (0, 1), (19, 21), (7, 7)] {
            let io = IoTracker::new();
            let mut full = TableScan::new(
                &t,
                DeltaLayers::Pdt(vec![&p]),
                vec![0, 1, 2],
                io.clone(),
                ScanClock::new(),
            );
            let all = run_to_rows(&mut full);
            let mut clamped = TableScan::new(
                &t,
                DeltaLayers::Pdt(vec![&p]),
                vec![0, 1, 2],
                io.clone(),
                ScanClock::new(),
            );
            clamped.clamp_rids(lo, hi);
            let want: Vec<Tuple> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| (*i as u64) >= lo && (*i as u64) < hi)
                .map(|(_, r)| r.clone())
                .collect();
            let mut got = Vec::new();
            let mut expect_rid = lo;
            while let Some(b) = clamped.next_batch() {
                assert_eq!(b.rid_start, expect_rid, "clamped batches stay consecutive");
                expect_rid += b.num_rows() as u64;
                got.extend(b.rows());
            }
            assert_eq!(got, want, "window [{lo},{hi})");
        }
    }

    /// Stable slice holding rows `lo..lo+n` of the keyspace (keys `i*10`).
    fn table_slice(lo: i64, n: i64) -> StableTable {
        let rows: Vec<Tuple> = (lo..lo + n)
            .map(|i| {
                vec![
                    Value::Int(i * 10),
                    Value::Int(i),
                    Value::Str(format!("r{i}")),
                ]
            })
            .collect();
        StableTable::bulk_load(
            TableMeta::new("t", schema(), vec![0]),
            TableOptions {
                block_rows: 4,
                compressed: true,
            },
            &rows,
        )
        .unwrap()
    }

    /// Two partitions (rows 0..20 and 20..40 of the keyspace), each with
    /// its own delta: one delete + one insert per partition, so the
    /// partition visible counts stay at 20 each.
    fn two_partition_fixture() -> (StableTable, StableTable, Pdt, Pdt) {
        let p0 = table_slice(0, 20);
        let p1 = table_slice(20, 20);
        let mut d0 = Pdt::new(schema(), vec![0]);
        d0.add_delete(3, &[Value::Int(30)]);
        d0.add_insert(
            7,
            6,
            &[Value::Int(65), Value::Int(0), Value::Str("n0".into())],
        );
        let mut d1 = Pdt::new(schema(), vec![0]);
        d1.add_delete(5, &[Value::Int(250)]);
        d1.add_insert(
            0,
            0,
            &[Value::Int(195), Value::Int(0), Value::Str("n1".into())],
        );
        (p0, p1, d0, d1)
    }

    #[test]
    fn union_scan_emits_globally_consecutive_rids() {
        let (p0, p1, d0, d1) = two_partition_fixture();
        // per-partition reference scans
        let io = IoTracker::new();
        let mut s0 = TableScan::new(
            &p0,
            DeltaLayers::Pdt(vec![&d0]),
            vec![0, 1, 2],
            io.clone(),
            ScanClock::new(),
        );
        let mut want = run_to_rows(&mut s0);
        let part0_visible = want.len() as u64;
        let mut s1 = TableScan::new(
            &p1,
            DeltaLayers::Pdt(vec![&d1]),
            vec![0, 1, 2],
            io.clone(),
            ScanClock::new(),
        );
        want.extend(run_to_rows(&mut s1));

        let mut union = TableScan::union(
            vec![
                ScanSegment {
                    stable: &p0,
                    layers: DeltaLayers::Pdt(vec![&d0]),
                    rid_base: 0,
                    io: None,
                },
                ScanSegment {
                    stable: &p1,
                    layers: DeltaLayers::Pdt(vec![&d1]),
                    rid_base: part0_visible,
                    io: None,
                },
            ],
            vec![0, 1, 2],
            ScanBounds::default(),
            io,
            ScanClock::new(),
        );
        let mut got = Vec::new();
        let mut expect_rid = 0u64;
        while let Some(b) = union.next_batch() {
            assert_eq!(
                b.rid_start, expect_rid,
                "union batches must stay rid-consecutive across the split"
            );
            expect_rid += b.num_rows() as u64;
            got.extend(b.rows());
        }
        assert_eq!(got, want);
        assert_eq!(expect_rid, 40, "both partitions net 20 visible rows");
        // keys strictly ascending across the split point
        let keys: Vec<i64> = got.iter().map(|r| r[0].as_int()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "{keys:?}");
    }

    /// `start_rid` must be the global rank of the first row the union
    /// would emit, even when the key range lies wholly inside a later
    /// partition (earlier segments resolve empty ranges and must not pin
    /// the stale first-segment rank).
    #[test]
    fn union_start_rid_tracks_first_emitting_segment() {
        let (p0, p1, d0, d1) = two_partition_fixture();
        let mut scan = TableScan::union(
            fixture_segments(&p0, &p1, &d0, &d1),
            vec![0, 1, 2],
            ScanBounds {
                // keys 250..290 live in partition 1, past its first key
                // (partition 0's range resolves past its data)
                lo: Some(vec![Value::Int(250)]),
                hi: Some(vec![Value::Int(290)]),
            },
            IoTracker::new(),
            ScanClock::new(),
        );
        let first = scan.next_batch().expect("range is populated");
        // the stale-tolerant sparse index is over-inclusive (partition 0
        // may emit its last block), but start_rid must equal the first
        // emitted global rank — not partition 0's stale empty-range rank
        assert_eq!(
            scan.start_rid(),
            first.rid_start,
            "start_rid must anchor at the first emitting segment's rank"
        );
    }

    /// Regression for the rid-window clamp when the window straddles a
    /// partition split: the window must be clamped *per partition* — tail
    /// of one slice, head of the next — never applied to each partition
    /// as if it were the whole table (which would re-emit every
    /// partition's rows at the window's local offsets).
    /// The fixture's two segments (both partitions net 20 visible rows:
    /// one delete + one insert each).
    fn fixture_segments<'a>(
        p0: &'a StableTable,
        p1: &'a StableTable,
        d0: &'a Pdt,
        d1: &'a Pdt,
    ) -> Vec<ScanSegment<'a>> {
        vec![
            ScanSegment {
                stable: p0,
                layers: DeltaLayers::Pdt(vec![d0]),
                rid_base: 0,
                io: None,
            },
            ScanSegment {
                stable: p1,
                layers: DeltaLayers::Pdt(vec![d1]),
                rid_base: 20,
                io: None,
            },
        ]
    }

    #[test]
    fn union_rid_clamp_straddles_partition_split() {
        let (p0, p1, d0, d1) = two_partition_fixture();
        let full = {
            let mut scan = TableScan::union(
                fixture_segments(&p0, &p1, &d0, &d1),
                vec![0, 1, 2],
                ScanBounds::default(),
                IoTracker::new(),
                ScanClock::new(),
            );
            run_to_rows(&mut scan)
        };
        // windows: straddling the split, inside one partition, at the
        // edges, empty, and past the end
        for (lo, hi) in [
            (15u64, 25u64),
            (19, 21),
            (0, 40),
            (20, 20),
            (20, 40),
            (0, 20),
            (38, 60),
            (5, 7),
        ] {
            let io = IoTracker::new();
            let mut scan = TableScan::union(
                fixture_segments(&p0, &p1, &d0, &d1),
                vec![0, 1, 2],
                ScanBounds::default(),
                io.clone(),
                ScanClock::new(),
            );
            scan.clamp_rids(lo, hi);
            let want: Vec<Tuple> = full
                .iter()
                .enumerate()
                .filter(|(i, _)| (*i as u64) >= lo && (*i as u64) < hi)
                .map(|(_, r)| r.clone())
                .collect();
            let mut got = Vec::new();
            let mut expect_rid = lo;
            while let Some(b) = scan.next_batch() {
                assert_eq!(
                    b.rid_start, expect_rid,
                    "window [{lo},{hi}): clamped union batches stay consecutive"
                );
                expect_rid += b.num_rows() as u64;
                got.extend(b.rows());
            }
            assert_eq!(got, want, "window [{lo},{hi})");
            if lo >= 20 {
                // partitions wholly below the window are skipped: a
                // window inside partition 1 must read exactly what a
                // scan of partition 1 alone (locally clamped) reads
                let ref_io = IoTracker::new();
                let mut ref_scan = TableScan::new(
                    &p1,
                    DeltaLayers::Pdt(vec![&d1]),
                    vec![0, 1, 2],
                    ref_io.clone(),
                    ScanClock::new(),
                );
                ref_scan.clamp_rids(lo - 20, hi.saturating_sub(20));
                run_to_rows(&mut ref_scan);
                assert_eq!(
                    io.stats().bytes_read,
                    ref_io.stats().bytes_read,
                    "window [{lo},{hi}) read the skipped partition"
                );
            }
        }
    }

    #[test]
    fn rid_start_is_consecutive_across_batches() {
        let t = table(20);
        let p = updated_pdt();
        let io = IoTracker::new();
        let mut scan = TableScan::new(
            &t,
            DeltaLayers::Pdt(vec![&p]),
            vec![0],
            io,
            ScanClock::new(),
        );
        let mut expect = 0u64;
        while let Some(b) = scan.next_batch() {
            assert_eq!(b.rid_start, expect, "batches must be rid-consecutive");
            expect += b.num_rows() as u64;
        }
        // total visible rows
        assert_eq!(expect, (20 + p.delta_total()) as u64);
    }
}
