//! Partition-parallel union scan.
//!
//! [`TableScan::union`](crate::TableScan::union) walks a partitioned
//! table's slices sequentially on the calling thread — correct everywhere,
//! including inside transactions whose staged layers cannot leave the
//! thread. This operator is the throughput counterpart: each partition's
//! MergeScan runs as a task on a **worker pool**, batches stream back over
//! a bounded per-partition channel, and the union re-emits them in
//! partition order with globally consecutive RIDs — the first place scans
//! use more than one core.
//!
//! The operator is deliberately decoupled from the engine: a partition is
//! just a [`ScanTask`] — a closure that owns everything its scan needs
//! (`Arc`-held stable slice + delta snapshot) and drives it to completion
//! against an emit callback. The engine builds one task per partition from
//! a read view; the pool, ordering and rid re-basing live here.
//!
//! Ordering and memory: every partition has its **own** bounded channel,
//! and the consumer drains only the in-order partition's — a partition
//! running ahead fills its few-batch buffer and then blocks its worker,
//! so memory is bounded by `partitions × capacity` batches, never a whole
//! partition. Tasks are claimed in partition order, so the in-order
//! partition is always complete or in progress; workers blocked on later
//! partitions' full buffers unblock as the consumer advances. A worker
//! that dies mid-partition (a panicking scan) closes its channel without
//! the explicit `Done` marker, which the consumer detects and reports by
//! re-raising the worker's panic — a failed partition can never silently
//! truncate a query's results.

use crate::batch::Batch;
use crate::ops::Operator;
use columnar::ValueType;
use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One partition's scan, packaged to run on a pool thread: the closure
/// owns its data (snapshot `Arc`s) and calls `emit` once per batch with
/// **partition-local** rid starts. It must stop when `emit` returns
/// `false` (the consumer is gone or past its rid window).
pub type ScanTask = Box<dyn FnOnce(&mut dyn FnMut(Batch) -> bool) + Send>;

/// A partition entry for [`ParallelUnionScan`].
pub struct UnionPart {
    /// Global visible RID of the partition's first row.
    pub rid_base: u64,
    /// The partition's scan.
    pub task: ScanTask,
}

/// The shared claim queue: each entry is one partition's task plus the
/// send side of its bounded channel.
type TaskQueue = Arc<Mutex<VecDeque<(ScanTask, SyncSender<Msg>)>>>;

enum Msg {
    Batch(Batch),
    /// The partition's scan completed. A channel that closes without this
    /// marker means its worker died mid-scan.
    Done,
}

/// Batches of slack per partition channel: enough to keep the pool busy,
/// bounded so a partition running ahead blocks instead of buffering
/// itself entirely.
const CHANNEL_SLACK: usize = 4;

/// The partition-parallel union scan operator. Implements [`Operator`], so
/// it drops into any plan where a [`crate::TableScan`] would.
pub struct ParallelUnionScan {
    /// Per-partition receive side, taken as each partition completes.
    rxs: Vec<Option<Receiver<Msg>>>,
    workers: Vec<JoinHandle<()>>,
    rid_bases: Vec<u64>,
    /// Next partition to emit (all earlier ones fully emitted).
    next_part: usize,
    types: Vec<ValueType>,
}

impl ParallelUnionScan {
    /// Spawn up to `workers` pool threads over the partition tasks.
    /// Batches are re-emitted in partition order with RIDs re-based to
    /// each partition's `rid_base`.
    pub fn new(parts: Vec<UnionPart>, types: Vec<ValueType>, workers: usize) -> Self {
        let n = parts.len();
        let nworkers = workers.clamp(1, n.max(1));
        let rid_bases: Vec<u64> = parts.iter().map(|p| p.rid_base).collect();
        let mut rxs = Vec::with_capacity(n);
        // tasks are claimed front-to-back so low partitions start first:
        // the in-order partition is always complete or in progress, and
        // workers blocked on later partitions' buffers cannot starve it
        let queue: TaskQueue = Arc::new(Mutex::new(
            parts
                .into_iter()
                .map(|p| {
                    let (tx, rx) = sync_channel::<Msg>(CHANNEL_SLACK);
                    rxs.push(Some(rx));
                    (p.task, tx)
                })
                .collect(),
        ));
        let spawn_worker = |queue: TaskQueue| {
            std::thread::Builder::new()
                .name("scan-union".into())
                .spawn(move || loop {
                    let Some((task, tx)) = queue.lock().expect("union queue").pop_front() else {
                        return;
                    };
                    let mut alive = true;
                    task(&mut |b: Batch| {
                        alive = tx.send(Msg::Batch(b)).is_ok();
                        alive
                    });
                    // a receiver dropped mid-partition means the consumer
                    // is gone entirely: stop claiming work
                    if !alive || tx.send(Msg::Done).is_err() {
                        return;
                    }
                })
                .expect("spawn union scan worker")
        };
        let handles = (0..nworkers).map(|_| spawn_worker(queue.clone())).collect();
        ParallelUnionScan {
            rxs,
            workers: handles,
            rid_bases,
            next_part: 0,
            types,
        }
    }

    /// A partition's channel closed without its `Done` marker: its worker
    /// panicked mid-scan. Join the pool and re-raise the first panic so
    /// the failure propagates instead of truncating the result.
    fn propagate_worker_death(&mut self) -> ! {
        self.rxs.clear(); // unblock producers stuck on full channels
        for w in self.workers.drain(..) {
            if let Err(p) = w.join() {
                std::panic::resume_unwind(p);
            }
        }
        unreachable!("a union scan channel closed early but no worker panicked");
    }
}

impl Operator for ParallelUnionScan {
    fn next_batch(&mut self) -> Option<Batch> {
        loop {
            if self.next_part >= self.rxs.len() {
                return None;
            }
            // drain only the in-order partition: later partitions fill
            // their own bounded channels and block their workers
            let rx = self.rxs[self.next_part]
                .as_ref()
                .expect("open partitions keep their receiver");
            match rx.recv() {
                Ok(Msg::Batch(mut b)) => {
                    b.rid_start += self.rid_bases[self.next_part];
                    return Some(b);
                }
                Ok(Msg::Done) => {
                    self.rxs[self.next_part] = None;
                    self.next_part += 1;
                }
                Err(_) => self.propagate_worker_death(),
            }
        }
    }

    fn out_types(&self) -> Vec<ValueType> {
        self.types.clone()
    }
}

impl Drop for ParallelUnionScan {
    fn drop(&mut self) {
        // drop every receiver to unblock producers, then join (panics of
        // an abandoned scan are intentionally swallowed here — a consumer
        // that drops mid-stream no longer cares about the tail)
        self.rxs.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::ColumnVec;

    /// A task emitting `count` single-row batches with local rids.
    fn counting_task(count: usize, val: i64) -> ScanTask {
        Box::new(move |emit| {
            for i in 0..count {
                let b = Batch {
                    cols: vec![ColumnVec::Int(vec![val + i as i64])],
                    rid_start: i as u64,
                };
                if !emit(b) {
                    return;
                }
            }
        })
    }

    #[test]
    fn parallel_union_preserves_partition_order_and_rebases_rids() {
        for workers in [1, 2, 8] {
            let parts = vec![
                UnionPart {
                    rid_base: 0,
                    task: counting_task(3, 100),
                },
                UnionPart {
                    rid_base: 3,
                    task: counting_task(2, 200),
                },
                UnionPart {
                    rid_base: 5,
                    task: counting_task(0, 0),
                },
                UnionPart {
                    rid_base: 5,
                    task: counting_task(4, 300),
                },
            ];
            let mut scan = ParallelUnionScan::new(parts, vec![ValueType::Int], workers);
            let mut expect_rid = 0u64;
            let mut vals = Vec::new();
            while let Some(b) = scan.next_batch() {
                assert_eq!(b.rid_start, expect_rid, "workers={workers}");
                expect_rid += b.num_rows() as u64;
                vals.extend(b.rows().into_iter().map(|r| r[0].as_int()));
            }
            assert_eq!(
                vals,
                vec![100, 101, 102, 200, 201, 300, 301, 302, 303],
                "workers={workers}"
            );
        }
    }

    #[test]
    fn memory_stays_bounded_while_late_partitions_run_ahead() {
        // partition 0 emits many batches; partitions 1..3 are "fast" and
        // would buffer entirely under an unbounded design. With bounded
        // per-partition channels they block after CHANNEL_SLACK batches,
        // and everything still drains in order.
        let parts = (0..4)
            .map(|p| UnionPart {
                rid_base: p as u64 * 64,
                task: counting_task(64, p as i64 * 1000),
            })
            .collect();
        let mut scan = ParallelUnionScan::new(parts, vec![ValueType::Int], 4);
        let mut rows = 0u64;
        let mut expect_rid = 0u64;
        while let Some(b) = scan.next_batch() {
            assert_eq!(b.rid_start, expect_rid);
            expect_rid += b.num_rows() as u64;
            rows += b.num_rows() as u64;
        }
        assert_eq!(rows, 256);
    }

    #[test]
    fn dropping_mid_stream_does_not_hang() {
        // more batches than the channels hold: producers block on send,
        // the drop must release them and join cleanly
        let parts = (0..4)
            .map(|p| UnionPart {
                rid_base: p * 1000,
                task: counting_task(1000, p as i64 * 1000),
            })
            .collect();
        let mut scan = ParallelUnionScan::new(parts, vec![ValueType::Int], 2);
        let _ = scan.next_batch();
        drop(scan); // must not deadlock
    }

    #[test]
    fn panicking_worker_propagates_instead_of_truncating() {
        let parts = vec![
            UnionPart {
                rid_base: 0,
                task: counting_task(2, 0),
            },
            UnionPart {
                rid_base: 2,
                task: Box::new(|emit| {
                    emit(Batch {
                        cols: vec![ColumnVec::Int(vec![7])],
                        rid_start: 0,
                    });
                    panic!("scan worker died mid-partition");
                }),
            },
        ];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mut scan = ParallelUnionScan::new(parts, vec![ValueType::Int], 2);
            let mut rows = 0;
            while let Some(b) = scan.next_batch() {
                rows += b.num_rows();
            }
            rows
        }));
        // the dead partition's missing tail must not look like success
        assert!(result.is_err(), "worker panic was swallowed");
    }
}
