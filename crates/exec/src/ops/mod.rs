//! Pull-based physical operators.
//!
//! Every operator yields columnar [`Batch`]es via [`Operator::next_batch`]
//! until exhaustion. Plans are trees of boxed operators built by hand.

pub mod aggregate;
pub mod filter;
pub mod join;
pub mod profiled;
pub mod project;
pub mod scan;
pub mod sort;
pub mod union;

use crate::batch::Batch;
use columnar::{Tuple, ValueType};

/// A boxed operator borrowing scan state with lifetime `'a`.
pub type BoxOp<'a> = Box<dyn Operator + 'a>;

/// A block-at-a-time physical operator.
pub trait Operator {
    /// Produce the next batch of rows, or `None` when exhausted.
    fn next_batch(&mut self) -> Option<Batch>;

    /// Types of the output columns (fixed at construction).
    fn out_types(&self) -> Vec<ValueType>;
}

/// Drain an operator into materialised rows (plan roots, tests).
pub fn run_to_rows(op: &mut dyn Operator) -> Vec<Tuple> {
    let mut rows = Vec::new();
    while let Some(b) = op.next_batch() {
        rows.extend(b.rows());
    }
    rows
}

/// A leaf operator yielding one prebuilt batch (tests, literal tables).
pub struct ValuesOp {
    types: Vec<ValueType>,
    batch: Option<Batch>,
}

impl ValuesOp {
    /// A one-batch operator over `rows`.
    pub fn new(types: &[ValueType], rows: &[Tuple]) -> Self {
        ValuesOp {
            types: types.to_vec(),
            batch: Some(Batch::from_rows(types, rows)),
        }
    }
}

impl Operator for ValuesOp {
    fn next_batch(&mut self) -> Option<Batch> {
        self.batch.take().filter(|b| !b.is_empty())
    }

    fn out_types(&self) -> Vec<ValueType> {
        self.types.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::Value;

    #[test]
    fn values_and_run_to_rows() {
        let rows = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        let mut op = ValuesOp::new(&[ValueType::Int], &rows);
        assert_eq!(op.out_types(), vec![ValueType::Int]);
        assert_eq!(run_to_rows(&mut op), rows);
        // exhausted
        assert!(op.next_batch().is_none());
    }

    #[test]
    fn empty_values_yields_nothing() {
        let mut op = ValuesOp::new(&[ValueType::Int], &[]);
        assert!(op.next_batch().is_none());
    }
}
