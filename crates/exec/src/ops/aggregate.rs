//! Hash aggregation with grouping.

use crate::batch::Batch;
use crate::expr::Expr;
use crate::ops::Operator;
use columnar::{ColumnVec, Tuple, Value, ValueType};
use std::collections::{HashMap, HashSet};

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum (Int stays Int, anything else accumulates as Double).
    Sum,
    /// Count of rows (the expression is still evaluated for typing but any
    /// value counts — our columns are NOT NULL).
    Count,
    /// Arithmetic mean as Double.
    Avg,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Number of distinct expression values.
    CountDistinct,
}

/// One aggregate: a function applied to an expression over the group.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated expression (evaluated per input row).
    pub expr: Expr,
}

impl AggSpec {
    /// `func` over `expr`.
    pub fn new(func: AggFunc, expr: Expr) -> Self {
        AggSpec { func, expr }
    }

    fn out_type(&self, in_types: &[ValueType]) -> ValueType {
        match self.func {
            AggFunc::Count | AggFunc::CountDistinct => ValueType::Int,
            AggFunc::Avg => ValueType::Double,
            AggFunc::Sum => match self.expr.out_type(in_types) {
                ValueType::Int => ValueType::Int,
                _ => ValueType::Double,
            },
            AggFunc::Min | AggFunc::Max => self.expr.out_type(in_types),
        }
    }
}

enum Acc {
    SumInt(i64),
    SumDouble(f64),
    Count(i64),
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
    Distinct(HashSet<Value>),
}

impl Acc {
    fn new(func: AggFunc, vt: ValueType) -> Acc {
        match func {
            AggFunc::Sum => match vt {
                ValueType::Int => Acc::SumInt(0),
                _ => Acc::SumDouble(0.0),
            },
            AggFunc::Count => Acc::Count(0),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::CountDistinct => Acc::Distinct(HashSet::new()),
        }
    }

    fn update(&mut self, v: Value) {
        match self {
            Acc::SumInt(s) => *s += v.as_int(),
            Acc::SumDouble(s) => *s += v.as_double(),
            Acc::Count(c) => *c += 1,
            Acc::Avg { sum, n } => {
                *sum += v.as_double();
                *n += 1;
            }
            Acc::Min(m) => {
                if m.as_ref().map(|m| v < *m).unwrap_or(true) {
                    *m = Some(v);
                }
            }
            Acc::Max(m) => {
                if m.as_ref().map(|m| v > *m).unwrap_or(true) {
                    *m = Some(v);
                }
            }
            Acc::Distinct(set) => {
                set.insert(v);
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            Acc::SumInt(s) => Value::Int(s),
            Acc::SumDouble(s) => Value::Double(s),
            Acc::Count(c) => Value::Int(c),
            Acc::Avg { sum, n } => Value::Double(if n == 0 { 0.0 } else { sum / n as f64 }),
            Acc::Min(m) | Acc::Max(m) => m.unwrap_or(Value::Null),
            Acc::Distinct(set) => Value::Int(set.len() as i64),
        }
    }
}

/// Hash aggregation: `GROUP BY group_cols` computing `aggs`. With empty
/// `group_cols` produces exactly one (possibly zero-initialised) row —
/// scalar aggregation. Output columns: group columns, then aggregates.
pub struct HashAggregate<'a> {
    input: Box<dyn Operator + 'a>,
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    types: Vec<ValueType>,
    done: bool,
}

impl<'a> HashAggregate<'a> {
    /// Group `input` by `group_cols` and compute `aggs` per group; output
    /// columns are the group keys followed by the aggregates.
    pub fn new(input: Box<dyn Operator + 'a>, group_cols: Vec<usize>, aggs: Vec<AggSpec>) -> Self {
        let in_types = input.out_types();
        let mut types: Vec<ValueType> = group_cols.iter().map(|&c| in_types[c]).collect();
        types.extend(aggs.iter().map(|a| a.out_type(&in_types)));
        HashAggregate {
            input,
            group_cols,
            aggs,
            types,
            done: false,
        }
    }
}

impl Operator for HashAggregate<'_> {
    fn next_batch(&mut self) -> Option<Batch> {
        if self.done {
            return None;
        }
        self.done = true;
        let in_types = self.input.out_types();
        let mut groups: HashMap<Tuple, Vec<Acc>> = HashMap::new();
        let make_accs = |aggs: &[AggSpec]| -> Vec<Acc> {
            aggs.iter()
                .map(|a| Acc::new(a.func, a.expr.out_type(&in_types)))
                .collect()
        };
        while let Some(batch) = self.input.next_batch() {
            let agg_inputs: Vec<ColumnVec> =
                self.aggs.iter().map(|a| a.expr.eval(&batch)).collect();
            for i in 0..batch.num_rows() {
                let key: Tuple = self
                    .group_cols
                    .iter()
                    .map(|&c| batch.cols[c].get(i))
                    .collect();
                let accs = groups.entry(key).or_insert_with(|| make_accs(&self.aggs));
                for (a, input) in accs.iter_mut().zip(&agg_inputs) {
                    a.update(input.get(i));
                }
            }
        }
        if groups.is_empty() && self.group_cols.is_empty() {
            // scalar aggregate over empty input: one zero row
            groups.insert(Vec::new(), make_accs(&self.aggs));
        }
        if groups.is_empty() {
            return None;
        }
        let mut out = Batch::empty(&self.types);
        for (key, accs) in groups {
            let mut row = key;
            row.extend(accs.into_iter().map(Acc::finish));
            out.push_row(&row);
        }
        Some(out)
    }

    fn out_types(&self) -> Vec<ValueType> {
        self.types.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::ops::{run_to_rows, ValuesOp};

    fn input() -> Box<dyn Operator> {
        let rows: Vec<Tuple> = [
            ("a", 1i64, 2.0),
            ("a", 3, 4.0),
            ("b", 5, 6.0),
            ("b", 5, 8.0),
        ]
        .iter()
        .map(|(g, i, d)| vec![Value::Str(g.to_string()), Value::Int(*i), Value::Double(*d)])
        .collect();
        Box::new(ValuesOp::new(
            &[ValueType::Str, ValueType::Int, ValueType::Double],
            &rows,
        ))
    }

    fn by_group(rows: Vec<Tuple>) -> HashMap<String, Tuple> {
        rows.into_iter()
            .map(|r| (r[0].as_str().to_string(), r))
            .collect()
    }

    #[test]
    fn grouped_aggregates() {
        let mut agg = HashAggregate::new(
            input(),
            vec![0],
            vec![
                AggSpec::new(AggFunc::Sum, col(1)),
                AggSpec::new(AggFunc::Avg, col(2)),
                AggSpec::new(AggFunc::Count, lit(1i64)),
                AggSpec::new(AggFunc::Min, col(1)),
                AggSpec::new(AggFunc::Max, col(2)),
                AggSpec::new(AggFunc::CountDistinct, col(1)),
            ],
        );
        let rows = by_group(run_to_rows(&mut agg));
        let a = &rows["a"];
        assert_eq!(a[1], Value::Int(4));
        assert_eq!(a[2], Value::Double(3.0));
        assert_eq!(a[3], Value::Int(2));
        assert_eq!(a[4], Value::Int(1));
        assert_eq!(a[5], Value::Double(4.0));
        assert_eq!(a[6], Value::Int(2));
        let b = &rows["b"];
        assert_eq!(b[1], Value::Int(10));
        assert_eq!(b[6], Value::Int(1), "distinct of {{5,5}}");
    }

    #[test]
    fn scalar_aggregate() {
        let mut agg = HashAggregate::new(
            input(),
            vec![],
            vec![AggSpec::new(AggFunc::Sum, col(1).mul(lit(2i64)))],
        );
        let rows = run_to_rows(&mut agg);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(28));
    }

    #[test]
    fn scalar_aggregate_over_empty_input() {
        let empty = Box::new(ValuesOp::new(&[ValueType::Int], &[]));
        let mut agg = HashAggregate::new(empty, vec![], vec![AggSpec::new(AggFunc::Count, col(0))]);
        let rows = run_to_rows(&mut agg);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(0));
    }

    #[test]
    fn sum_of_double_expression() {
        let mut agg = HashAggregate::new(
            input(),
            vec![],
            vec![AggSpec::new(AggFunc::Sum, col(2).mul(col(1)))],
        );
        let rows = run_to_rows(&mut agg);
        assert_eq!(rows[0][0], Value::Double(2.0 + 12.0 + 30.0 + 40.0));
    }
}
