//! Sort, Top-N and Limit.

use crate::batch::Batch;
use crate::ops::Operator;
use columnar::{Tuple, ValueType};
use std::cmp::Ordering;

/// One sort criterion: column index + direction.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    /// Column index in the input batch.
    pub col: usize,
    /// Descending when true.
    pub desc: bool,
}

impl SortKey {
    /// Ascending sort on `col`.
    pub fn asc(col: usize) -> Self {
        SortKey { col, desc: false }
    }

    /// Descending sort on `col`.
    pub fn desc(col: usize) -> Self {
        SortKey { col, desc: true }
    }
}

fn cmp_rows(a: &Tuple, b: &Tuple, keys: &[SortKey]) -> Ordering {
    for k in keys {
        let ord = a[k.col].cmp(&b[k.col]);
        let ord = if k.desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Full materializing sort.
pub struct Sort<'a> {
    input: Box<dyn Operator + 'a>,
    keys: Vec<SortKey>,
    types: Vec<ValueType>,
    done: bool,
}

impl<'a> Sort<'a> {
    /// Sort `input` by `keys` (stable, fully materializing).
    pub fn new(input: Box<dyn Operator + 'a>, keys: Vec<SortKey>) -> Self {
        let types = input.out_types();
        Sort {
            input,
            keys,
            types,
            done: false,
        }
    }
}

impl Operator for Sort<'_> {
    fn next_batch(&mut self) -> Option<Batch> {
        if self.done {
            return None;
        }
        self.done = true;
        let mut rows: Vec<Tuple> = Vec::new();
        while let Some(b) = self.input.next_batch() {
            rows.extend(b.rows());
        }
        if rows.is_empty() {
            return None;
        }
        rows.sort_by(|a, b| cmp_rows(a, b, &self.keys));
        Some(Batch::from_rows(&self.types, &rows))
    }

    fn out_types(&self) -> Vec<ValueType> {
        self.types.clone()
    }
}

/// Sort + keep the first `n` rows (ORDER BY ... LIMIT n).
pub struct TopN<'a> {
    inner: Sort<'a>,
    n: usize,
}

impl<'a> TopN<'a> {
    /// Keep the first `n` rows of `input` sorted by `keys`.
    pub fn new(input: Box<dyn Operator + 'a>, keys: Vec<SortKey>, n: usize) -> Self {
        TopN {
            inner: Sort::new(input, keys),
            n,
        }
    }
}

impl Operator for TopN<'_> {
    fn next_batch(&mut self) -> Option<Batch> {
        let b = self.inner.next_batch()?;
        let keep = b.num_rows().min(self.n);
        let idx: Vec<usize> = (0..keep).collect();
        Some(b.gather(&idx))
    }

    fn out_types(&self) -> Vec<ValueType> {
        self.inner.out_types()
    }
}

/// Plain LIMIT without ordering.
pub struct Limit<'a> {
    input: Box<dyn Operator + 'a>,
    remaining: usize,
}

impl<'a> Limit<'a> {
    /// Pass at most `n` rows of `input` through.
    pub fn new(input: Box<dyn Operator + 'a>, n: usize) -> Self {
        Limit {
            input,
            remaining: n,
        }
    }
}

impl Operator for Limit<'_> {
    fn next_batch(&mut self) -> Option<Batch> {
        if self.remaining == 0 {
            return None;
        }
        let b = self.input.next_batch()?;
        if b.num_rows() <= self.remaining {
            self.remaining -= b.num_rows();
            Some(b)
        } else {
            let idx: Vec<usize> = (0..self.remaining).collect();
            self.remaining = 0;
            Some(b.gather(&idx))
        }
    }

    fn out_types(&self) -> Vec<ValueType> {
        self.input.out_types()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{run_to_rows, ValuesOp};
    use columnar::Value;

    fn input() -> Box<dyn Operator> {
        let rows: Vec<Tuple> = [(3, "c"), (1, "a"), (2, "b"), (1, "z")]
            .iter()
            .map(|(i, s)| vec![Value::Int(*i), Value::Str(s.to_string())])
            .collect();
        Box::new(ValuesOp::new(&[ValueType::Int, ValueType::Str], &rows))
    }

    #[test]
    fn sort_multi_key() {
        let mut s = Sort::new(input(), vec![SortKey::asc(0), SortKey::desc(1)]);
        let got = run_to_rows(&mut s);
        let keys: Vec<(i64, String)> = got
            .iter()
            .map(|r| (r[0].as_int(), r[1].as_str().to_string()))
            .collect();
        assert_eq!(
            keys,
            vec![
                (1, "z".into()),
                (1, "a".into()),
                (2, "b".into()),
                (3, "c".into())
            ]
        );
    }

    #[test]
    fn topn_truncates() {
        let mut t = TopN::new(input(), vec![SortKey::desc(0)], 2);
        let got = run_to_rows(&mut t);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0][0], Value::Int(3));
    }

    #[test]
    fn limit_without_order() {
        let mut l = Limit::new(input(), 3);
        assert_eq!(run_to_rows(&mut l).len(), 3);
        let mut l = Limit::new(input(), 0);
        assert!(run_to_rows(&mut l).is_empty());
    }
}
