//! Hash joins: inner, left-outer, semi and anti.

use crate::batch::Batch;
use crate::ops::Operator;
use columnar::{Tuple, Value, ValueType};
use std::collections::HashMap;

/// Join flavours. The *probe* side streams; the *build* side is
/// materialised into the hash table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Emit probe ++ build columns for every key match.
    Inner,
    /// Emit every probe row; build columns are type defaults when
    /// unmatched, and a trailing `matched: Bool` column reports whether a
    /// match existed (our typed columns have no null representation).
    LeftOuter,
    /// Emit probe rows that have at least one match (no build columns).
    Semi,
    /// Emit probe rows that have no match (no build columns).
    Anti,
}

/// Hash join operator.
pub struct HashJoin<'a> {
    probe: Box<dyn Operator + 'a>,
    build: Option<Box<dyn Operator + 'a>>,
    probe_keys: Vec<usize>,
    build_keys: Vec<usize>,
    kind: JoinKind,
    table: HashMap<Tuple, Vec<Tuple>>,
    build_width: usize,
    types: Vec<ValueType>,
}

impl<'a> HashJoin<'a> {
    /// Hash-join `probe` against `build` on the given key columns; output
    /// is the probe row followed by the matched build row (inner/outer).
    pub fn new(
        probe: Box<dyn Operator + 'a>,
        build: Box<dyn Operator + 'a>,
        probe_keys: Vec<usize>,
        build_keys: Vec<usize>,
        kind: JoinKind,
    ) -> Self {
        let mut types = probe.out_types();
        let build_types = build.out_types();
        let build_width = build_types.len();
        if matches!(kind, JoinKind::Inner | JoinKind::LeftOuter) {
            types.extend(build_types);
        }
        if kind == JoinKind::LeftOuter {
            types.push(ValueType::Bool); // `matched` indicator
        }
        HashJoin {
            probe,
            build: Some(build),
            probe_keys,
            build_keys,
            kind,
            table: HashMap::new(),
            build_width,
            types,
        }
    }

    fn build_table(&mut self) {
        let Some(mut build) = self.build.take() else {
            return;
        };
        while let Some(b) = build.next_batch() {
            for i in 0..b.num_rows() {
                let key: Tuple = self.build_keys.iter().map(|&c| b.cols[c].get(i)).collect();
                self.table.entry(key).or_default().push(b.row(i));
            }
        }
    }
}

impl Operator for HashJoin<'_> {
    fn next_batch(&mut self) -> Option<Batch> {
        self.build_table();
        loop {
            let batch = self.probe.next_batch()?;
            let mut out = Batch::empty(&self.types);
            for i in 0..batch.num_rows() {
                let key: Tuple = self
                    .probe_keys
                    .iter()
                    .map(|&c| batch.cols[c].get(i))
                    .collect();
                let matches = self.table.get(&key);
                match self.kind {
                    JoinKind::Inner => {
                        if let Some(ms) = matches {
                            let probe_row = batch.row(i);
                            for m in ms {
                                let mut row = probe_row.clone();
                                row.extend(m.iter().cloned());
                                out.push_row(&row);
                            }
                        }
                    }
                    JoinKind::LeftOuter => {
                        let probe_row = batch.row(i);
                        match matches {
                            Some(ms) => {
                                for m in ms {
                                    let mut row = probe_row.clone();
                                    row.extend(m.iter().cloned());
                                    row.push(Value::Bool(true));
                                    out.push_row(&row);
                                }
                            }
                            None => {
                                let mut row = probe_row;
                                row.extend((0..self.build_width).map(|_| Value::Null));
                                row.push(Value::Bool(false));
                                out.push_row(&row);
                            }
                        }
                    }
                    JoinKind::Semi => {
                        if matches.is_some() {
                            out.push_row(&batch.row(i));
                        }
                    }
                    JoinKind::Anti => {
                        if matches.is_none() {
                            out.push_row(&batch.row(i));
                        }
                    }
                }
            }
            if !out.is_empty() {
                return Some(out);
            }
            // fully unmatched batch for Inner/Semi: pull more input
        }
    }

    fn out_types(&self) -> Vec<ValueType> {
        self.types.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{run_to_rows, ValuesOp};

    fn left() -> Box<dyn Operator> {
        let rows: Vec<Tuple> = [(1i64, "x"), (2, "y"), (3, "z")]
            .iter()
            .map(|(k, s)| vec![Value::Int(*k), Value::Str(s.to_string())])
            .collect();
        Box::new(ValuesOp::new(&[ValueType::Int, ValueType::Str], &rows))
    }

    fn right() -> Box<dyn Operator> {
        let rows: Vec<Tuple> = [(1i64, 100i64), (1, 101), (3, 300)]
            .iter()
            .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)])
            .collect();
        Box::new(ValuesOp::new(&[ValueType::Int, ValueType::Int], &rows))
    }

    #[test]
    fn inner_join_duplicates_matches() {
        let mut j = HashJoin::new(left(), right(), vec![0], vec![0], JoinKind::Inner);
        let got = run_to_rows(&mut j);
        assert_eq!(got.len(), 3); // key 1 matches twice, key 3 once
        assert_eq!(j.out_types().len(), 4);
    }

    #[test]
    fn left_outer_marks_matches() {
        let mut j = HashJoin::new(left(), right(), vec![0], vec![0], JoinKind::LeftOuter);
        assert_eq!(j.out_types().len(), 5, "probe + build + matched flag");
        let got = run_to_rows(&mut j);
        assert_eq!(got.len(), 4);
        let unmatched: Vec<_> = got.iter().filter(|r| r[4] == Value::Bool(false)).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0][0], Value::Int(2));
    }

    #[test]
    fn semi_and_anti() {
        let mut j = HashJoin::new(left(), right(), vec![0], vec![0], JoinKind::Semi);
        let got = run_to_rows(&mut j);
        assert_eq!(got.len(), 2); // keys 1 and 3, no duplication
        assert_eq!(j.out_types().len(), 2);

        let mut j = HashJoin::new(left(), right(), vec![0], vec![0], JoinKind::Anti);
        let got = run_to_rows(&mut j);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0][0], Value::Int(2));
    }
}
