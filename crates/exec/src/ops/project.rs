//! Projection: compute a list of expressions per row.

use crate::batch::Batch;
use crate::expr::Expr;
use crate::ops::Operator;
use columnar::ValueType;

/// Projection operator.
pub struct Project<'a> {
    input: Box<dyn Operator + 'a>,
    exprs: Vec<Expr>,
    types: Vec<ValueType>,
}

impl<'a> Project<'a> {
    /// Evaluate one output column per expression in `exprs`.
    pub fn new(input: Box<dyn Operator + 'a>, exprs: Vec<Expr>) -> Self {
        let in_types = input.out_types();
        let types = exprs.iter().map(|e| e.out_type(&in_types)).collect();
        Project {
            input,
            exprs,
            types,
        }
    }
}

impl Operator for Project<'_> {
    fn next_batch(&mut self) -> Option<Batch> {
        let batch = self.input.next_batch()?;
        let cols = self.exprs.iter().map(|e| e.eval(&batch)).collect();
        Some(Batch {
            cols,
            rid_start: batch.rid_start,
        })
    }

    fn out_types(&self) -> Vec<ValueType> {
        self.types.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::ops::{run_to_rows, ValuesOp};
    use columnar::Value;

    #[test]
    fn computes_expressions() {
        let rows: Vec<Vec<Value>> = (1..4)
            .map(|i| vec![Value::Int(i), Value::Double(i as f64)])
            .collect();
        let input = Box::new(ValuesOp::new(&[ValueType::Int, ValueType::Double], &rows));
        let mut p = Project::new(input, vec![col(0).mul(lit(2i64)), col(1).add(col(0))]);
        assert_eq!(p.out_types(), vec![ValueType::Int, ValueType::Double]);
        let got = run_to_rows(&mut p);
        assert_eq!(got[2], vec![Value::Int(6), Value::Double(6.0)]);
    }
}
