//! [`Profiled`] — an operator wrapper feeding `explain_analyze` reports.
//!
//! Wrapping an operator records batches, rows, and inclusive wall time
//! (children run inside the wrapped `next_batch`, as in `EXPLAIN
//! ANALYZE` actual-time) into a shared [`OpStats`]; after the plan
//! drains, the caller snapshots the stats into the plan-shaped
//! [`obs::OpProfile`] report.

use super::Operator;
use crate::batch::Batch;
use columnar::ValueType;
use obs::profile::OpStats;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::Instant;

/// Wraps an operator, recording per-operator batches/rows/wall time.
pub struct Profiled<Op> {
    inner: Op,
    stats: Arc<OpStats>,
}

impl<Op: Operator> Profiled<Op> {
    /// Wrap `inner`, reporting under `name` (e.g. `"Filter"`).
    pub fn new(name: &str, inner: Op) -> Self {
        Profiled {
            inner,
            stats: Arc::new(OpStats::new(name)),
        }
    }

    /// The shared counters — keep a clone to build the report after the
    /// plan drains.
    pub fn stats(&self) -> Arc<OpStats> {
        self.stats.clone()
    }
}

impl<Op: Operator> Operator for Profiled<Op> {
    fn next_batch(&mut self) -> Option<Batch> {
        let t0 = Instant::now();
        let out = self.inner.next_batch();
        self.stats
            .wall_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Relaxed);
        if let Some(b) = &out {
            self.stats.batches.fetch_add(1, Relaxed);
            self.stats.rows.fetch_add(b.num_rows() as u64, Relaxed);
        }
        out
    }

    fn out_types(&self) -> Vec<ValueType> {
        self.inner.out_types()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{run_to_rows, ValuesOp};
    use columnar::Value;

    #[test]
    fn profiled_counts_batches_rows_and_time() {
        let rows: Vec<_> = (0..5).map(|i| vec![Value::Int(i)]).collect();
        let mut op = Profiled::new("Values", ValuesOp::new(&[ValueType::Int], &rows));
        let stats = op.stats();
        assert_eq!(op.out_types(), vec![ValueType::Int]);
        assert_eq!(run_to_rows(&mut op).len(), 5);
        let report = stats.into_op(vec![]);
        assert_eq!(report.name, "Values");
        assert_eq!(report.batches, 1);
        assert_eq!(report.rows, 5);
    }
}
