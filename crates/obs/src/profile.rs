//! Per-query profiling: shared atomic counter blocks that scans and
//! operators fill in, plus the plan-shaped [`OpProfile`] report.
//!
//! The executor attaches a [`ScanProfile`] to a profiled table scan
//! (see `ScanSpec::profiled()` in the engine) and wraps downstream
//! operators in `exec::Profiled`, which updates an [`OpStats`]. After
//! the query drains, the caller snapshots both into an [`OpProfile`]
//! tree whose `Display` renders an `explain_analyze`-style report.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Merge path a profiled scan took, one label per partition state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePath {
    /// No delta: blocks decoded straight from stable storage.
    Clean = 1,
    /// PDT delta merged via the typed positional kernels.
    PdtKernel = 2,
    /// VDT delta merged via the typed kernels.
    VdtKernel = 3,
    /// Row-store delta merged via the typed kernels.
    RowsKernel = 4,
    /// Scalar fallback merge (no typed kernel applied).
    Scalar = 5,
}

impl MergePath {
    /// Human label, e.g. `"pdt-kernel"`.
    pub fn name(self) -> &'static str {
        match self {
            MergePath::Clean => "clean",
            MergePath::PdtKernel => "pdt-kernel",
            MergePath::VdtKernel => "vdt-kernel",
            MergePath::RowsKernel => "rows-kernel",
            MergePath::Scalar => "scalar",
        }
    }

    fn from_u64(v: u64) -> Option<MergePath> {
        Some(match v {
            1 => MergePath::Clean,
            2 => MergePath::PdtKernel,
            3 => MergePath::VdtKernel,
            4 => MergePath::RowsKernel,
            5 => MergePath::Scalar,
            _ => return None,
        })
    }
}

/// Live counters one profiled table scan accumulates (shared via `Arc`
/// between the executor and the caller that wants the report).
#[derive(Default)]
pub struct ScanProfile {
    /// Batches emitted.
    pub batches: AtomicU64,
    /// Rows emitted.
    pub rows: AtomicU64,
    /// Blocks decoded from stable storage.
    pub blocks_decoded: AtomicU64,
    /// Blocks skipped by zone-map range pruning (clean scans only).
    pub blocks_skipped: AtomicU64,
    /// Stored bytes read while decoding (approximate when the backing
    /// `IoTracker` is shared with concurrent scans).
    pub bytes_read: AtomicU64,
    /// Wall nanoseconds spent producing batches (merge + decode).
    pub wall_ns: AtomicU64,
    /// Partitions (scan segments) visited.
    pub segments: AtomicU64,
    paths: [AtomicU64; 6],
}

impl ScanProfile {
    /// Fresh, zeroed profile.
    pub fn new() -> ScanProfile {
        ScanProfile::default()
    }

    /// Count one partition taking `path` (a scan over several
    /// partitions can take several paths).
    pub fn record_path(&self, path: MergePath) {
        self.paths[path as usize].fetch_add(1, Relaxed);
    }

    /// Freeze the counters.
    pub fn snapshot(&self) -> ScanProfileSnapshot {
        let mut paths = Vec::new();
        for (i, c) in self.paths.iter().enumerate() {
            let n = c.load(Relaxed);
            if n > 0 {
                if let Some(p) = MergePath::from_u64(i as u64) {
                    paths.push((p, n));
                }
            }
        }
        ScanProfileSnapshot {
            batches: self.batches.load(Relaxed),
            rows: self.rows.load(Relaxed),
            blocks_decoded: self.blocks_decoded.load(Relaxed),
            blocks_skipped: self.blocks_skipped.load(Relaxed),
            bytes_read: self.bytes_read.load(Relaxed),
            wall_ns: self.wall_ns.load(Relaxed),
            segments: self.segments.load(Relaxed),
            paths,
        }
    }
}

/// Frozen [`ScanProfile`] counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScanProfileSnapshot {
    /// Batches emitted.
    pub batches: u64,
    /// Rows emitted.
    pub rows: u64,
    /// Blocks decoded from stable storage.
    pub blocks_decoded: u64,
    /// Blocks skipped by zone-map range pruning.
    pub blocks_skipped: u64,
    /// Stored bytes read while decoding.
    pub bytes_read: u64,
    /// Wall nanoseconds spent producing batches.
    pub wall_ns: u64,
    /// Partitions visited.
    pub segments: u64,
    /// Merge paths taken, with how many partitions took each.
    pub paths: Vec<(MergePath, u64)>,
}

impl ScanProfileSnapshot {
    /// Comma-joined path labels, e.g. `"clean,pdt-kernel"`.
    pub fn path_label(&self) -> String {
        if self.paths.is_empty() {
            return "-".to_string();
        }
        self.paths
            .iter()
            .map(|(p, _)| p.name())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Render as the leaf node of a plan report.
    pub fn into_op(self, table: &str) -> OpProfile {
        OpProfile {
            name: format!("Scan {table}"),
            detail: format!(
                "path={} blocks={} decoded/{} zone-skipped bytes={} segments={}",
                self.path_label(),
                self.blocks_decoded,
                self.blocks_skipped,
                self.bytes_read,
                self.segments
            ),
            batches: self.batches,
            rows: self.rows,
            wall_ns: self.wall_ns,
            children: Vec::new(),
        }
    }
}

/// Live per-operator counters behind `exec::Profiled`.
pub struct OpStats {
    /// Operator display name (e.g. `"Filter"`, `"Project"`).
    pub name: String,
    /// Batches this operator emitted.
    pub batches: AtomicU64,
    /// Rows this operator emitted.
    pub rows: AtomicU64,
    /// Wall nanoseconds inside this operator's `next_batch` (inclusive
    /// of children, like `EXPLAIN ANALYZE` actual-time).
    pub wall_ns: AtomicU64,
}

impl OpStats {
    /// Fresh counters for an operator called `name`.
    pub fn new(name: &str) -> OpStats {
        OpStats {
            name: name.to_string(),
            batches: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            wall_ns: AtomicU64::new(0),
        }
    }

    /// Freeze into a report node with the given children.
    pub fn into_op(&self, children: Vec<OpProfile>) -> OpProfile {
        OpProfile {
            name: self.name.clone(),
            detail: String::new(),
            batches: self.batches.load(Relaxed),
            rows: self.rows.load(Relaxed),
            wall_ns: self.wall_ns.load(Relaxed),
            children,
        }
    }
}

/// One node of a plan-shaped profile report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpProfile {
    /// Operator name (`"Scan orders"`, `"Filter"`, ...).
    pub name: String,
    /// Operator-specific detail line fragment.
    pub detail: String,
    /// Batches emitted.
    pub batches: u64,
    /// Rows emitted.
    pub rows: u64,
    /// Wall nanoseconds (inclusive of children).
    pub wall_ns: u64,
    /// Child operators (inputs).
    pub children: Vec<OpProfile>,
}

impl OpProfile {
    fn render(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let indent = "  ".repeat(depth);
        let arrow = if depth == 0 { "" } else { "-> " };
        write!(
            f,
            "{indent}{arrow}{} [rows={} batches={} time={:.3}ms",
            self.name,
            self.rows,
            self.batches,
            self.wall_ns as f64 / 1e6
        )?;
        if !self.detail.is_empty() {
            write!(f, " {}", self.detail)?;
        }
        writeln!(f, "]")?;
        for c in &self.children {
            c.render(f, depth + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for OpProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_profile_snapshot_and_report() {
        let p = ScanProfile::new();
        p.batches.fetch_add(2, Relaxed);
        p.rows.fetch_add(2048, Relaxed);
        p.blocks_decoded.fetch_add(3, Relaxed);
        p.blocks_skipped.fetch_add(5, Relaxed);
        p.bytes_read.fetch_add(4096, Relaxed);
        p.segments.fetch_add(1, Relaxed);
        p.record_path(MergePath::PdtKernel);
        let s = p.snapshot();
        assert_eq!(s.path_label(), "pdt-kernel");
        let op = OpStats::new("Filter");
        op.batches.fetch_add(2, Relaxed);
        op.rows.fetch_add(100, Relaxed);
        op.wall_ns.fetch_add(1_500_000, Relaxed);
        let report = op.into_op(vec![s.into_op("orders")]);
        let text = report.to_string();
        assert!(
            text.contains("Filter [rows=100 batches=2 time=1.500ms]"),
            "{text}"
        );
        assert!(text.contains("-> Scan orders"), "{text}");
        assert!(text.contains("path=pdt-kernel"), "{text}");
        assert!(text.contains("blocks=3 decoded/5 zone-skipped"), "{text}");
    }

    #[test]
    fn multiple_paths_join() {
        let p = ScanProfile::new();
        p.record_path(MergePath::Clean);
        p.record_path(MergePath::VdtKernel);
        assert_eq!(p.snapshot().path_label(), "clean,vdt-kernel");
        assert_eq!(ScanProfile::new().snapshot().path_label(), "-");
    }
}
