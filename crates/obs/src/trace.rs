//! Structured tracing: fixed-size records in lock-free per-thread rings.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** Every emission site is gated on
//!    [`enabled`] — a single relaxed atomic load. The `span!`/`event!`
//!    macros expand to that load and nothing else on the off path.
//! 2. **No locks on the hot path.** Each emitting thread owns a
//!    single-producer ring (`Ring`); the producer touches only its own
//!    head index (release store) and reads the drainer's tail (acquire
//!    load). A full ring drops *whole* records and counts them — it
//!    never blocks and never tears a record.
//! 3. **Fixed-size records.** A [`TraceRecord`] is a flat `Copy` struct;
//!    strings (table names) are interned once into small integer ids via
//!    [`intern`] and resolved back at decode time.
//!
//! Draining is cooperative: [`drain`] snapshots every registered ring
//! (serialized by the registry mutex, so concurrent drains cannot race
//! on a tail index), sorts by timestamp, and hands batches to a
//! [`TraceSink`]. [`TraceDrain`] wraps that in a background thread for
//! long-running processes.

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::mem::MaybeUninit;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// `table` id meaning "no table attached" (interner ids start at 1).
pub const NO_TABLE: u32 = 0;
/// `part` value meaning "no partition attached".
pub const NO_PART: u32 = u32::MAX;

/// Records each per-thread ring can hold before dropping new ones.
pub const RING_CAPACITY: usize = 16 * 1024;

/// What a trace record describes. Discriminants are stable and stored
/// raw in [`TraceRecord::kind`]; [`TraceKind::name`] gives the dotted
/// name used by the JSON sink and the docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum TraceKind {
    /// Whole engine commit: span over prepare → publish → durable wait.
    /// `a` = partitions touched, `b` = WAL entries logged.
    Commit = 1,
    /// Commit bytes handed to the group-commit buffer (under the group
    /// lock's caller). `a` = flush ticket returned.
    WalEnqueue = 2,
    /// One leader flush window: span over the batched `append_raw`.
    /// `a` = records in the batch, `b` = batch bytes.
    WalFlushWindow = 3,
    /// A committer's durable ack. `a` = ticket, `dur_ns` = wait time,
    /// `seq` = the durable ticket watermark at the ack.
    WalDurable = 4,
    /// Checkpoint phase 1: delta pinned under the commit guard.
    CheckpointPin = 5,
    /// Checkpoint phase 2: span over merge + image publish (off-lock).
    /// `a` = 1 when a compressed image was published.
    CheckpointMerge = 6,
    /// Checkpoint phase 3: WAL marker + stable swap installed.
    CheckpointInstall = 7,
    /// Compaction phase 1: pin. `a`/`b` = block range `[b0, b1)`.
    CompactionPin = 8,
    /// Compaction phase 2: span over ranged merge + splice + publish.
    /// `a`/`b` = block range `[b0, b1)`.
    CompactionMerge = 9,
    /// Compaction phase 3: ranged WAL marker + install.
    /// `a`/`b` = block range `[b0, b1)`.
    CompactionInstall = 10,
    /// Admission control made a writer wait. `dur_ns` = time waited,
    /// `a` = delta bytes at admission, `b` = soft limit.
    AdmissionDelay = 11,
    /// Admission control rejected a writer with backpressure.
    /// `a` = delta bytes at admission, `b` = hard limit.
    AdmissionReject = 12,
    /// Recovery adopted a checkpoint image for one partition.
    /// `seq` = image sequence, `a` = residual WAL entries replayed.
    RecoveryImageAdopt = 13,
    /// Recovery replayed WAL commits into one partition's delta.
    /// `a` = entries replayed, `b` = commits, `seq` = last sequence.
    RecoveryWalReplay = 14,
    /// Slow-query log: a commit exceeded its table's threshold — one
    /// event per touched (table, partition). `dur_ns` = total commit,
    /// `a` = WAL entries for the partition, `b` = durable-wait
    /// nanoseconds.
    SlowCommit = 15,
    /// Slow-query log: a server query exceeded the configured
    /// threshold. `dur_ns` = query wall time, `a` = rows returned.
    SlowScan = 16,
}

impl TraceKind {
    /// Dotted name, e.g. `"wal.flush_window"`.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Commit => "commit",
            TraceKind::WalEnqueue => "wal.enqueue",
            TraceKind::WalFlushWindow => "wal.flush_window",
            TraceKind::WalDurable => "wal.durable",
            TraceKind::CheckpointPin => "checkpoint.pin",
            TraceKind::CheckpointMerge => "checkpoint.merge",
            TraceKind::CheckpointInstall => "checkpoint.install",
            TraceKind::CompactionPin => "compaction.pin",
            TraceKind::CompactionMerge => "compaction.merge",
            TraceKind::CompactionInstall => "compaction.install",
            TraceKind::AdmissionDelay => "admission.delay",
            TraceKind::AdmissionReject => "admission.reject",
            TraceKind::RecoveryImageAdopt => "recovery.image_adopt",
            TraceKind::RecoveryWalReplay => "recovery.wal_replay",
            TraceKind::SlowCommit => "slow.commit",
            TraceKind::SlowScan => "slow.scan",
        }
    }

    /// Inverse of the raw discriminant stored in [`TraceRecord::kind`].
    pub fn from_u16(v: u16) -> Option<TraceKind> {
        Some(match v {
            1 => TraceKind::Commit,
            2 => TraceKind::WalEnqueue,
            3 => TraceKind::WalFlushWindow,
            4 => TraceKind::WalDurable,
            5 => TraceKind::CheckpointPin,
            6 => TraceKind::CheckpointMerge,
            7 => TraceKind::CheckpointInstall,
            8 => TraceKind::CompactionPin,
            9 => TraceKind::CompactionMerge,
            10 => TraceKind::CompactionInstall,
            11 => TraceKind::AdmissionDelay,
            12 => TraceKind::AdmissionReject,
            13 => TraceKind::RecoveryImageAdopt,
            14 => TraceKind::RecoveryWalReplay,
            15 => TraceKind::SlowCommit,
            16 => TraceKind::SlowScan,
            _ => return None,
        })
    }
}

/// One fixed-size trace record (64 bytes, `Copy`).
///
/// Span records carry a non-zero `dur_ns`; point events leave it zero.
/// `table` is an [`intern`] id (`NO_TABLE` when absent), `part` a
/// partition index (`NO_PART` when absent). `a`/`b` are kind-specific
/// payloads documented on each [`TraceKind`] variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds; 0 for point events.
    pub dur_ns: u64,
    /// Raw [`TraceKind`] discriminant.
    pub kind: u16,
    /// Small id of the emitting thread (assigned on first emission).
    pub thread: u16,
    /// Interned table name, or [`NO_TABLE`].
    pub table: u32,
    /// Partition index, or [`NO_PART`].
    pub part: u32,
    /// Commit / checkpoint sequence number, 0 when not applicable.
    pub seq: u64,
    /// Kind-specific payload (see [`TraceKind`] docs).
    pub a: u64,
    /// Kind-specific payload (see [`TraceKind`] docs).
    pub b: u64,
}

impl TraceRecord {
    /// A record of `kind` stamped with the current trace timestamp.
    pub fn new(kind: TraceKind) -> TraceRecord {
        TraceRecord {
            ts_ns: now_ns(),
            dur_ns: 0,
            kind: kind as u16,
            thread: 0,
            table: NO_TABLE,
            part: NO_PART,
            seq: 0,
            a: 0,
            b: 0,
        }
    }
}

// ---------------------------------------------------------------------
// Global enable flag and clock.

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether tracing is on. This is the *only* cost instrumented code
/// pays when tracing is off: one relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn tracing on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the first trace timestamp of the process.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------
// String interner (table names → u32 ids).

struct Interner {
    map: HashMap<String, u32>,
    names: Vec<String>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            // Id 0 is NO_TABLE.
            names: vec![String::new()],
        })
    })
}

/// Intern `name`, returning a stable non-zero id for trace records.
pub fn intern(name: &str) -> u32 {
    if let Some(&id) = interner().read().unwrap().map.get(name) {
        return id;
    }
    let mut w = interner().write().unwrap();
    if let Some(&id) = w.map.get(name) {
        return id;
    }
    let id = w.names.len() as u32;
    w.names.push(name.to_string());
    w.map.insert(name.to_string(), id);
    id
}

/// Resolve an interned id back to its string (`None` for [`NO_TABLE`]
/// or unknown ids).
pub fn resolve(id: u32) -> Option<String> {
    if id == NO_TABLE {
        return None;
    }
    interner().read().unwrap().names.get(id as usize).cloned()
}

// ---------------------------------------------------------------------
// Per-thread SPSC ring buffers.

struct Ring {
    slots: Box<[UnsafeCell<MaybeUninit<TraceRecord>>]>,
    /// Producer cursor (owned by the emitting thread; release-stored
    /// after the slot is written so the drainer sees complete records).
    head: AtomicUsize,
    /// Consumer cursor (advanced only under the registry lock).
    tail: AtomicUsize,
    thread: u16,
}

// The producer writes only slots in [head, head+1) that the consumer
// (which reads [tail, head)) cannot touch, and cursor updates use
// release/acquire pairs; records are `Copy`, so a stale read of an
// already-consumed slot cannot occur and drops are whole-record.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    fn new(thread: u16) -> Ring {
        let slots = (0..RING_CAPACITY)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            thread,
        }
    }

    /// Producer side: called only from the owning thread.
    fn push(&self, rec: TraceRecord) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots.len() {
            return false; // full: drop the whole record
        }
        let slot = &self.slots[head % self.slots.len()];
        unsafe { (*slot.get()).write(rec) };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: serialized by the registry lock.
    fn drain_into(&self, out: &mut Vec<TraceRecord>) {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        let mut i = tail;
        while i != head {
            let slot = &self.slots[i % self.slots.len()];
            out.push(unsafe { (*slot.get()).assume_init_read() });
            i = i.wrapping_add(1);
        }
        self.tail.store(head, Ordering::Release);
    }
}

struct RingRegistry {
    rings: Mutex<Vec<Arc<Ring>>>,
    next_thread: AtomicUsize,
    dropped: AtomicU64,
}

fn registry() -> &'static RingRegistry {
    static REGISTRY: OnceLock<RingRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| RingRegistry {
        rings: Mutex::new(Vec::new()),
        next_thread: AtomicUsize::new(1),
        dropped: AtomicU64::new(0),
    })
}

thread_local! {
    static MY_RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
}

/// Emit one record into the calling thread's ring (no-op when tracing
/// is off). The record's `thread` field is filled in here.
pub fn emit(mut rec: TraceRecord) {
    if !enabled() {
        return;
    }
    MY_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let reg = registry();
            let id = reg.next_thread.fetch_add(1, Ordering::Relaxed);
            let ring = Arc::new(Ring::new((id & 0xffff) as u16));
            reg.rings.lock().unwrap().push(ring.clone());
            ring
        });
        rec.thread = ring.thread;
        if !ring.push(rec) {
            registry().dropped.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Records dropped so far because a ring was full (whole records only).
pub fn dropped() -> u64 {
    registry().dropped.load(Ordering::Relaxed)
}

/// Drain every thread's ring, returning all pending records sorted by
/// timestamp. Concurrent drains are serialized; emission keeps going
/// lock-free while a drain runs.
pub fn drain() -> Vec<TraceRecord> {
    let mut out = Vec::new();
    let rings = registry().rings.lock().unwrap();
    for ring in rings.iter() {
        ring.drain_into(&mut out);
    }
    drop(rings);
    out.sort_by_key(|r| r.ts_ns);
    out
}

/// Drain into `sink` (skipping the call entirely when nothing is
/// pending). Returns how many records were delivered.
pub fn drain_to(sink: &dyn TraceSink) -> usize {
    let batch = drain();
    if !batch.is_empty() {
        sink.record(&batch);
    }
    batch.len()
}

// ---------------------------------------------------------------------
// Spans.

/// RAII guard emitting a span record (with `dur_ns` filled in) on drop.
/// Created by the `obs::span!` macro; [`SpanGuard::disabled`] is the
/// no-op variant used when tracing is off.
pub struct SpanGuard {
    state: Option<(TraceRecord, Instant)>,
}

impl SpanGuard {
    /// A live span: `rec` is emitted on drop with its duration set.
    pub fn started(rec: TraceRecord) -> SpanGuard {
        SpanGuard {
            state: Some((rec, Instant::now())),
        }
    }

    /// The no-op span used when tracing is off.
    pub fn disabled() -> SpanGuard {
        SpanGuard { state: None }
    }

    /// Set the `a` payload after the span started (e.g. a batch size
    /// known only at the end).
    pub fn set_a(&mut self, v: u64) {
        if let Some((rec, _)) = &mut self.state {
            rec.a = v;
        }
    }

    /// Set the `b` payload after the span started.
    pub fn set_b(&mut self, v: u64) {
        if let Some((rec, _)) = &mut self.state {
            rec.b = v;
        }
    }

    /// Set the sequence number after the span started.
    pub fn set_seq(&mut self, v: u64) {
        if let Some((rec, _)) = &mut self.state {
            rec.seq = v;
        }
    }

    /// Drop the span without emitting anything (e.g. on error paths
    /// that emit their own record).
    pub fn cancel(&mut self) {
        self.state = None;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((mut rec, t0)) = self.state.take() {
            rec.dur_ns = t0.elapsed().as_nanos() as u64;
            emit(rec);
        }
    }
}

// ---------------------------------------------------------------------
// Sinks and decoding.

/// Where drained trace batches go.
pub trait TraceSink: Send + Sync {
    /// Deliver one drained batch (already timestamp-sorted).
    fn record(&self, batch: &[TraceRecord]);
}

/// A decoded trace record: kind resolved, table id resolved to a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Span duration (0 for point events).
    pub dur_ns: u64,
    /// Decoded kind.
    pub kind: TraceKind,
    /// Emitting thread id.
    pub thread: u16,
    /// Table name, if the record carried one.
    pub table: Option<String>,
    /// Partition index, if the record carried one.
    pub part: Option<u32>,
    /// Sequence number (0 when not applicable).
    pub seq: u64,
    /// Kind-specific payload.
    pub a: u64,
    /// Kind-specific payload.
    pub b: u64,
}

/// Decode a raw record (resolving kind and table name). Returns `None`
/// for unknown kinds.
pub fn decode(rec: &TraceRecord) -> Option<TraceEvent> {
    Some(TraceEvent {
        ts_ns: rec.ts_ns,
        dur_ns: rec.dur_ns,
        kind: TraceKind::from_u16(rec.kind)?,
        thread: rec.thread,
        table: resolve(rec.table),
        part: (rec.part != NO_PART).then_some(rec.part),
        seq: rec.seq,
        a: rec.a,
        b: rec.b,
    })
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>12}ns {}", self.ts_ns, self.kind.name())?;
        if let Some(t) = &self.table {
            write!(f, " table={t}")?;
        }
        if let Some(p) = self.part {
            write!(f, " part={p}")?;
        }
        if self.seq != 0 {
            write!(f, " seq={}", self.seq)?;
        }
        if self.dur_ns != 0 {
            write!(f, " dur={}ns", self.dur_ns)?;
        }
        write!(f, " a={} b={}", self.a, self.b)
    }
}

/// In-memory sink for tests: accumulates every drained record.
#[derive(Default)]
pub struct MemorySink {
    records: Mutex<Vec<TraceRecord>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Copy of everything recorded so far.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().unwrap().clone()
    }

    /// Everything recorded so far, decoded (unknown kinds skipped).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.records().iter().filter_map(decode).collect()
    }
}

impl TraceSink for MemorySink {
    fn record(&self, batch: &[TraceRecord]) {
        self.records.lock().unwrap().extend_from_slice(batch);
    }
}

fn write_json_line(out: &mut impl std::io::Write, e: &TraceEvent) -> std::io::Result<()> {
    write!(
        out,
        "{{\"ts_ns\":{},\"kind\":\"{}\"",
        e.ts_ns,
        e.kind.name()
    )?;
    if e.dur_ns != 0 {
        write!(out, ",\"dur_ns\":{}", e.dur_ns)?;
    }
    if let Some(t) = &e.table {
        write!(
            out,
            ",\"table\":\"{}\"",
            t.replace('\\', "\\\\").replace('"', "\\\"")
        )?;
    }
    if let Some(p) = e.part {
        write!(out, ",\"part\":{p}")?;
    }
    if e.seq != 0 {
        write!(out, ",\"seq\":{}", e.seq)?;
    }
    writeln!(
        out,
        ",\"a\":{},\"b\":{},\"thread\":{}}}",
        e.a, e.b, e.thread
    )
}

/// Line-JSON file sink for operations: one JSON object per record.
pub struct JsonLinesSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonLinesSink {
    /// Create (truncating) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonLinesSink> {
        Ok(JsonLinesSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl TraceSink for JsonLinesSink {
    fn record(&self, batch: &[TraceRecord]) {
        let mut out = self.out.lock().unwrap();
        for rec in batch {
            if let Some(e) = decode(rec) {
                let _ = write_json_line(&mut *out, &e);
            }
        }
        let _ = out.flush();
    }
}

// ---------------------------------------------------------------------
// Background drain thread.

/// Background thread draining the rings into a sink on an interval.
/// Stopping (or dropping) performs one final drain so no enabled-time
/// records are left behind.
pub struct TraceDrain {
    stop: Arc<AtomicBool>,
    sink: Arc<dyn TraceSink>,
    handle: Option<JoinHandle<()>>,
}

impl TraceDrain {
    /// Start draining into `sink` every `interval`.
    pub fn start(sink: Arc<dyn TraceSink>, interval: Duration) -> TraceDrain {
        let stop = Arc::new(AtomicBool::new(false));
        let (s2, k2) = (stop.clone(), sink.clone());
        let handle = std::thread::Builder::new()
            .name("obs-trace-drain".into())
            .spawn(move || {
                while !s2.load(Ordering::Relaxed) {
                    drain_to(&*k2);
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn trace drain thread");
        TraceDrain {
            stop,
            sink,
            handle: Some(handle),
        }
    }

    /// Stop the thread and run one final drain.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
            drain_to(&*self.sink);
        }
    }
}

impl Drop for TraceDrain {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trace layer is process-global; tests that enable it and
    // drain must not interleave. (Other test binaries are separate
    // processes and unaffected.)
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_is_a_noop() {
        let _g = serial();
        set_enabled(false);
        drain();
        emit(TraceRecord::new(TraceKind::Commit));
        let _span = crate::span!(TraceKind::WalFlushWindow, a: 7);
        drop(_span);
        assert!(drain().is_empty());
    }

    #[test]
    fn span_and_event_roundtrip() {
        let _g = serial();
        set_enabled(true);
        drain();
        let t = intern("orders");
        crate::event!(TraceKind::CheckpointPin, table: t, part: 3, seq: 42);
        {
            let mut sp = crate::span!(TraceKind::CheckpointMerge, table: t, part: 3);
            sp.set_seq(42);
            std::thread::sleep(Duration::from_millis(1));
        }
        set_enabled(false);
        let recs = drain();
        let evs: Vec<_> = recs.iter().filter_map(decode).collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, TraceKind::CheckpointPin);
        assert_eq!(evs[0].table.as_deref(), Some("orders"));
        assert_eq!(evs[0].part, Some(3));
        assert_eq!(evs[0].seq, 42);
        assert_eq!(evs[0].dur_ns, 0);
        assert_eq!(evs[1].kind, TraceKind::CheckpointMerge);
        assert!(evs[1].dur_ns > 0, "span records its duration");
        assert!(evs[0].ts_ns <= evs[1].ts_ns, "drain sorts by timestamp");
        assert!(evs[1].to_string().contains("checkpoint.merge"));
    }

    #[test]
    fn concurrent_emitters_never_tear() {
        let _g = serial();
        set_enabled(true);
        drain();
        let before_dropped = dropped();
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 30_000; // overflows RING_CAPACITY on purpose
        let sink = Arc::new(MemorySink::new());
        let done = Arc::new(AtomicBool::new(false));
        let drainer = {
            let (sink, done) = (sink.clone(), done.clone());
            std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    drain_to(&*sink);
                    std::thread::yield_now();
                }
                drain_to(&*sink);
            })
        };
        let emitters: Vec<_> = (0..THREADS)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // a XOR b is a per-record checksum: a torn
                        // record (fields from two writes) breaks it.
                        let mut rec = TraceRecord::new(TraceKind::Commit);
                        rec.seq = t;
                        rec.a = i;
                        rec.b = i ^ (t << 32);
                        emit(rec);
                    }
                })
            })
            .collect();
        for e in emitters {
            e.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        drainer.join().unwrap();
        set_enabled(false);

        let recs = sink.records();
        let new_dropped = dropped() - before_dropped;
        let mut per_thread = vec![0u64; THREADS as usize];
        for r in &recs {
            assert_eq!(r.b, r.a ^ (r.seq << 32), "torn record: {r:?}");
            per_thread[r.seq as usize] += 1;
        }
        let delivered: u64 = per_thread.iter().sum();
        assert_eq!(
            delivered + new_dropped,
            THREADS * PER_THREAD,
            "every record is either delivered whole or counted dropped"
        );
        assert!(delivered > 0, "drainer kept up with some of the load");
    }

    #[test]
    fn json_lines_sink_writes_parseable_lines() {
        let _g = serial();
        set_enabled(true);
        drain();
        let path = std::env::temp_dir().join(format!("obs_trace_{}.jsonl", std::process::id()));
        let sink = JsonLinesSink::create(&path).unwrap();
        let t = intern("line\"items");
        crate::event!(TraceKind::WalEnqueue, table: t, seq: 9, a: 1);
        set_enabled(false);
        drain_to(&sink);
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let line = text.lines().last().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"kind\":\"wal.enqueue\""), "{line}");
        assert!(
            line.contains("\"table\":\"line\\\"items\""),
            "escaped: {line}"
        );
        assert!(line.contains("\"seq\":9"), "{line}");
    }

    #[test]
    fn drain_thread_delivers_and_final_drains() {
        let _g = serial();
        set_enabled(true);
        drain();
        let sink = Arc::new(MemorySink::new());
        let drain_thread = TraceDrain::start(sink.clone(), Duration::from_millis(1));
        crate::event!(TraceKind::AdmissionReject, a: 123);
        // Emit one more right before stop: the final drain must get it.
        crate::event!(TraceKind::AdmissionDelay, a: 456);
        drain_thread.stop();
        set_enabled(false);
        let evs = sink.events();
        assert!(evs
            .iter()
            .any(|e| e.kind == TraceKind::AdmissionReject && e.a == 123));
        assert!(evs
            .iter()
            .any(|e| e.kind == TraceKind::AdmissionDelay && e.a == 456));
    }
}
