//! Unified metrics registry: counters, gauges, and histograms keyed by
//! dotted name plus sorted labels.
//!
//! Naming scheme (see ARCHITECTURE.md § Observability):
//! `<subsystem>.<noun>[_<unit>]`, e.g. `wal.commits`,
//! `io.bytes_read`, `server.commit_latency_p99_ns{table="orders"}`.
//! Labels are `(key, value)` pairs; the registry sorts them so label
//! order never creates duplicate series.
//!
//! [`MetricsSnapshot`] is the frozen form with two expositions:
//! [`MetricsSnapshot::to_text`] (Prometheus-style) and
//! [`MetricsSnapshot::to_json`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, RwLock};

/// Histogram buckets: values are binned by bit width, so bucket `i`
/// holds values whose `floor(log2(v)) + 1 == i` (bucket 0 holds 0).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Last-write-wins gauge.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Lock-free log2-bucketed histogram (65 buckets covering all of
/// `u64`), tracking count and sum exactly alongside the buckets.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Upper bound (inclusive) of bucket `i`: 0, 1, 3, 7, ... `u64::MAX`.
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
    }

    /// Freeze the current buckets/count/sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
        }
    }
}

/// Frozen histogram state. Merging snapshots ([`HistogramSnapshot::merge`])
/// is associative and commutative: buckets, count, and sum all add.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Exact sum of all observed values (wrapping on overflow).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Combine two snapshots (element-wise bucket addition).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let n = self.buckets.len().max(other.buckets.len());
        let get = |v: &Vec<u64>, i: usize| v.get(i).copied().unwrap_or(0);
        HistogramSnapshot {
            buckets: (0..n)
                .map(|i| get(&self.buckets, i) + get(&other.buckets, i))
                .collect(),
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`q` in `[0, 1]`); `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i));
            }
        }
        Some(u64::MAX)
    }

    /// Mean observed value; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Vec<(String, String)>,
}

fn key_of(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    Key {
        name: name.to_string(),
        labels,
    }
}

/// Live metric store. Instruments are registered (get-or-create) by
/// dotted name + labels and shared via `Arc`, so hot paths hold the
/// instrument and never touch the registry map again.
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<Key, Handle>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or<T, F>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        pick: fn(&Handle) -> Option<Arc<T>>,
        make: F,
    ) -> Arc<T>
    where
        F: Fn() -> (Arc<T>, Handle),
    {
        let key = key_of(name, labels);
        if let Some(h) = self.metrics.read().unwrap().get(&key) {
            if let Some(t) = pick(h) {
                return t;
            }
        }
        let mut w = self.metrics.write().unwrap();
        if let Some(t) = w.get(&key).and_then(pick) {
            return t;
        }
        // Absent, or registered earlier as a different instrument kind
        // (a caller bug): replace so both callers keep working.
        let (t, h) = make();
        w.insert(key, h);
        t
    }

    /// Get-or-create a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or(
            name,
            labels,
            |h| match h {
                Handle::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::default());
                (c.clone(), Handle::Counter(c))
            },
        )
    }

    /// Get-or-create a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or(
            name,
            labels,
            |h| match h {
                Handle::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::default());
                (g.clone(), Handle::Gauge(g))
            },
        )
    }

    /// Get-or-create a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.get_or(
            name,
            labels,
            |h| match h {
                Handle::Histogram(x) => Some(x.clone()),
                _ => None,
            },
            || {
                let x = Arc::new(Histogram::new());
                (x.clone(), Handle::Histogram(x))
            },
        )
    }

    /// Freeze every registered metric, sorted by name then labels.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.read().unwrap();
        MetricsSnapshot {
            metrics: m
                .iter()
                .map(|(k, h)| MetricEntry {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: match h {
                        Handle::Counter(c) => MetricValue::Counter(c.get()),
                        Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                        Handle::Histogram(x) => MetricValue::Histogram(x.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

/// One frozen metric's value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// Scalar value of a counter or gauge (`None` for histograms).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(*v),
            MetricValue::Histogram(_) => None,
        }
    }
}

/// One frozen metric: name, sorted labels, value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricEntry {
    /// Dotted metric name.
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: MetricValue,
}

/// Everything a [`Registry`] held, frozen at one instant, with
/// Prometheus-style text and JSON expositions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// All metrics, sorted by name then labels.
    pub metrics: Vec<MetricEntry>,
}

fn sanitize(name: &str) -> String {
    name.replace('.', "_")
}

fn label_text(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

impl MetricsSnapshot {
    /// First entry named `name` (any labels).
    pub fn get(&self, name: &str) -> Option<&MetricEntry> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Entry with exactly `name` and `labels` (order-insensitive).
    pub fn get_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricEntry> {
        let key = key_of(name, labels);
        self.metrics
            .iter()
            .find(|m| m.name == key.name && m.labels == key.labels)
    }

    /// Value of a counter/gauge named `name` (first match), if present.
    pub fn value(&self, name: &str) -> Option<u64> {
        match &self.get(name)?.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(*v),
            MetricValue::Histogram(_) => None,
        }
    }

    /// Prometheus-style text exposition. Dots in names become
    /// underscores; histograms expand to `_count`, `_sum`, and
    /// cumulative `_bucket{le="..."}` series.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let name = sanitize(&m.name);
            match &m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(&format!("{name}{} {v}\n", label_text(&m.labels, None)));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{name}_count{} {}\n",
                        label_text(&m.labels, None),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{name}_sum{} {}\n",
                        label_text(&m.labels, None),
                        h.sum
                    ));
                    let mut cum = 0;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 && i + 1 != h.buckets.len() {
                            continue; // keep the exposition readable
                        }
                        cum += c;
                        let le = if i + 1 == h.buckets.len() {
                            "+Inf".to_string()
                        } else {
                            bucket_upper(i).to_string()
                        };
                        out.push_str(&format!(
                            "{name}_bucket{} {cum}\n",
                            label_text(&m.labels, Some(("le", le)))
                        ));
                    }
                }
            }
        }
        out
    }

    /// JSON exposition: an array of `{name, labels, type, value}`
    /// objects (histograms carry `count`, `sum`, `buckets`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"name\":{}", json_str(&m.name)));
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json_str(k), json_str(v)));
            }
            out.push('}');
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(",\"type\":\"counter\",\"value\":{v}}}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(",\"type\":\"gauge\",\"value\":{v}}}"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        ",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                        h.count, h.sum
                    ));
                    // Sparse: [bucket_index, count] pairs.
                    let mut first = true;
                    for (bi, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push_str(&format!("[{bi},{c}]"));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push(']');
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_lookup() {
        let r = Registry::new();
        r.counter("wal.commits", &[]).add(3);
        r.counter("wal.commits", &[]).inc();
        r.gauge("table.delta_bytes", &[("table", "orders")])
            .set(512);
        // Label order must not create a second series.
        r.counter("x", &[("a", "1"), ("b", "2")]).inc();
        r.counter("x", &[("b", "2"), ("a", "1")]).inc();
        let snap = r.snapshot();
        assert_eq!(snap.value("wal.commits"), Some(4));
        assert_eq!(
            snap.get_labeled("table.delta_bytes", &[("table", "orders")])
                .map(|m| m.value.clone()),
            Some(MetricValue::Gauge(512))
        );
        assert_eq!(
            snap.get_labeled("x", &[("a", "1"), ("b", "2")])
                .map(|m| m.value.clone()),
            Some(MetricValue::Counter(2))
        );
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.observe(v);
            }
            h.snapshot()
        };
        let a = mk(&[0, 1, 5, 1000]);
        let b = mk(&[2, 2, 900_000]);
        let c = mk(&[u64::MAX, 7]);
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_eq!(left, right, "associative");
        assert_eq!(a.merge(&b), b.merge(&a), "commutative");
        assert_eq!(left.count, 9);
        assert_eq!(
            left.sum,
            0u64.wrapping_add(1 + 5 + 1000 + 2 + 2 + 900_000 + 7)
                .wrapping_add(u64::MAX)
        );
    }

    #[test]
    fn histogram_quantiles_bound_observations() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        let p50 = s.quantile(0.5).unwrap();
        let p99 = s.quantile(0.99).unwrap();
        assert!((500..=1023).contains(&p50), "p50 bucket bound: {p50}");
        assert!((990..=1023).contains(&p99), "p99 bucket bound: {p99}");
        assert!(p50 <= p99);
        assert_eq!(s.mean(), Some(500.5));
        assert_eq!(HistogramSnapshot::default().quantile(0.5), None);
    }

    #[test]
    fn concurrent_histogram_and_counter_updates() {
        let r = Arc::new(Registry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    let c = r.counter("ops", &[]);
                    let h = r.histogram("lat", &[]);
                    for i in 0..10_000u64 {
                        c.inc();
                        h.observe(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.value("ops"), Some(40_000));
        match &snap.get("lat").unwrap().value {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 40_000);
                assert_eq!(h.sum, 4 * (0..10_000u64).sum::<u64>());
                assert_eq!(h.buckets.iter().sum::<u64>(), 40_000);
            }
            v => panic!("expected histogram, got {v:?}"),
        }
    }

    #[test]
    fn text_and_json_expositions() {
        let r = Registry::new();
        r.counter("wal.commits", &[("table", "t\"1")]).add(7);
        r.histogram("commit.latency_ns", &[]).observe(3);
        let snap = r.snapshot();
        let text = snap.to_text();
        assert!(text.contains("wal_commits{table=\"t\\\"1\"} 7"), "{text}");
        assert!(text.contains("commit_latency_ns_count 1"), "{text}");
        assert!(text.contains("commit_latency_ns_sum 3"), "{text}");
        assert!(
            text.contains("commit_latency_ns_bucket{le=\"3\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("commit_latency_ns_bucket{le=\"+Inf\"} 1"),
            "{text}"
        );
        let json = snap.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"name\":\"wal.commits\""), "{json}");
        assert!(json.contains("\"type\":\"histogram\""), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
    }
}
