//! # obs — unified observability for the pdt-repro engine
//!
//! Three pieces, one crate at the bottom of the dependency graph so
//! every layer (`columnar`, `txn`, `engine`, `exec`, `server`) can be
//! instrumented:
//!
//! * [`trace`] — structured tracing: fixed-size [`trace::TraceRecord`]s
//!   in lock-free per-thread rings, emitted through the [`span!`] /
//!   [`event!`] macros. Off by default; when off, each site costs one
//!   relaxed atomic load. Drain with [`trace::drain`] or a background
//!   [`trace::TraceDrain`] into a [`trace::TraceSink`]
//!   (in-memory for tests, line-JSON for operations).
//! * [`metrics`] — a registry of counters/gauges/histograms keyed by
//!   dotted name + labels, frozen into a [`metrics::MetricsSnapshot`]
//!   with Prometheus-style text and JSON expositions.
//! * [`profile`] — per-query profiling counters and the plan-shaped
//!   `explain_analyze` report ([`profile::OpProfile`]).
//!
//! The span taxonomy, metric naming scheme, and instrumentation guide
//! live in `ARCHITECTURE.md` § Observability.

#![warn(missing_docs)]

pub mod metrics;
pub mod profile;
pub mod trace;

pub use metrics::{MetricsSnapshot, Registry};
pub use profile::{MergePath, OpProfile, ScanProfile};
pub use trace::{MemorySink, TraceDrain, TraceEvent, TraceKind, TraceRecord, TraceSink};

/// Emit a point [`trace::TraceRecord`] of the given [`TraceKind`],
/// optionally setting record fields:
///
/// ```
/// let t = obs::trace::intern("orders");
/// obs::event!(obs::TraceKind::WalEnqueue, table: t, seq: 7, a: 1);
/// ```
///
/// When tracing is off this expands to one relaxed atomic load.
#[macro_export]
macro_rules! event {
    ($kind:expr $(, $field:ident : $val:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            #[allow(unused_mut)]
            let mut __rec = $crate::trace::TraceRecord::new($kind);
            $( __rec.$field = $val; )*
            $crate::trace::emit(__rec);
        }
    };
}

/// Open a span: returns a [`trace::SpanGuard`] that emits the record
/// with its measured duration when dropped.
///
/// ```
/// let t = obs::trace::intern("orders");
/// let _span = obs::span!(obs::TraceKind::CheckpointMerge, table: t, part: 0);
/// // ... the guarded work ...
/// drop(_span); // emits with dur_ns set (implicit at scope end)
/// ```
///
/// When tracing is off this expands to one relaxed atomic load and a
/// no-op guard.
#[macro_export]
macro_rules! span {
    ($kind:expr $(, $field:ident : $val:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            #[allow(unused_mut)]
            let mut __rec = $crate::trace::TraceRecord::new($kind);
            $( __rec.$field = $val; )*
            $crate::trace::SpanGuard::started(__rec)
        } else {
            $crate::trace::SpanGuard::disabled()
        }
    };
}
