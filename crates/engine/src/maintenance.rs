//! Background maintenance: threshold-driven flush and checkpointing as a
//! scheduled activity instead of a foreground stall.
//!
//! The paper's layered design (§3.3, Algorithm 7) exists so that
//! Write-PDT→Read-PDT propagation and Read-PDT→stable checkpointing can
//! run *while queries keep scanning a consistent snapshot*. The
//! [`MaintenanceScheduler`] realises that: it owns worker threads that
//! sweep every table of an [`Arc<Database>`](crate::Database) and
//!
//! * **flush** the write-optimised delta layer into the read-optimised one
//!   once it exceeds the table's
//!   [`flush_threshold_bytes`](crate::TableOptions::flush_threshold_bytes)
//!   (the paper's Propagate policy — keep the Write-PDT CPU-cache-sized),
//! * **checkpoint** the table into a fresh stable image once its combined
//!   delta exceeds
//!   [`checkpoint_threshold_bytes`](crate::TableOptions::checkpoint_threshold_bytes).
//!
//! Neither operation blocks readers or writers: flushes are
//! view-preserving `Arc` swaps, and checkpoints pin their delta under the
//! commit guard, rewrite the stable image entirely off-lock, and re-take
//! the guard only for the final image swap
//! ([`Database::checkpoint`](crate::Database::checkpoint)). Per-table
//! maintenance operations serialize on the table's maintenance mutex, so
//! the scheduler's workers never trample a caller-driven
//! `maybe_flush`/`checkpoint` (or each other).
//!
//! ## Lifecycle
//!
//! [`MaintenanceScheduler::start`] spawns the workers; they tick at the
//! configured cadence (or immediately on [`poke`](MaintenanceScheduler::poke)).
//! [`drain`](MaintenanceScheduler::drain) synchronously flushes and
//! checkpoints every table to a clean state on the calling thread —
//! typically right before [`shutdown`](MaintenanceScheduler::shutdown),
//! which signals the workers and joins them. Dropping the scheduler shuts
//! it down implicitly (without the drain).

use crate::{Database, DbError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Scheduler cadence knobs. Byte budgets are per-table
/// ([`crate::TableOptions`]); the config only decides how often the
/// workers look.
#[derive(Debug, Clone, Copy)]
pub struct MaintenanceConfig {
    /// How often the flush worker sweeps the tables. Default 2 ms.
    pub flush_tick: Duration,
    /// How often the checkpoint worker sweeps the tables. Default 20 ms.
    pub checkpoint_tick: Duration,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            flush_tick: Duration::from_millis(2),
            checkpoint_tick: Duration::from_millis(20),
        }
    }
}

impl MaintenanceConfig {
    /// Same tick for both workers — test/bench convenience.
    pub fn with_tick(tick: Duration) -> Self {
        MaintenanceConfig {
            flush_tick: tick,
            checkpoint_tick: tick,
        }
    }
}

/// Counters published by the scheduler (monotonic since `start`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Write→Read flushes performed.
    pub flushes: u64,
    /// Checkpoints that produced (or retired) state.
    pub checkpoints: u64,
    /// Maintenance operations that returned an error (recorded, never
    /// propagated — the scheduler keeps running).
    pub errors: u64,
}

struct Shared {
    db: Arc<Database>,
    cfg: MaintenanceConfig,
    shutdown: AtomicBool,
    /// Wakes sleeping workers early (shutdown or poke).
    wake: Mutex<u64>,
    wake_cv: Condvar,
    flushes: AtomicU64,
    checkpoints: AtomicU64,
    errors: AtomicU64,
    last_error: Mutex<Option<String>>,
}

enum Role {
    Flush,
    Checkpoint,
}

impl Shared {
    /// Sleep until the tick elapses, a poke arrives, or shutdown.
    fn wait(&self, tick: Duration) {
        let guard = self.wake.lock().expect("scheduler wake lock");
        let seen = *guard;
        let _unused = self
            .wake_cv
            .wait_timeout_while(guard, tick, |gen| {
                *gen == seen && !self.shutdown.load(Ordering::Acquire)
            })
            .expect("scheduler wake lock");
    }

    fn record(&self, result: Result<bool, DbError>, counter: &AtomicU64) {
        match result {
            Ok(true) => {
                counter.fetch_add(1, Ordering::Relaxed);
            }
            Ok(false) => {}
            // a table dropped mid-sweep is not an error
            Err(DbError::UnknownTable(_)) => {}
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                *self.last_error.lock().expect("scheduler error lock") = Some(e.to_string());
            }
        }
    }

    /// One sweep over every table for the given role.
    fn pass(&self, role: &Role) {
        for table in self.db.table_names() {
            let Ok(opts) = self.db.options(&table) else {
                continue;
            };
            match role {
                Role::Flush => {
                    let r = self.db.maybe_flush(&table, opts.flush_threshold_bytes);
                    self.record(r, &self.flushes);
                }
                Role::Checkpoint => {
                    let over = self
                        .db
                        .delta_bytes(&table)
                        .map(|b| b > opts.checkpoint_threshold_bytes)
                        .unwrap_or(false);
                    if over {
                        let r = self.db.checkpoint(&table);
                        self.record(r, &self.checkpoints);
                    }
                }
            }
        }
    }

    fn run(&self, role: Role) {
        let tick = match role {
            Role::Flush => self.cfg.flush_tick,
            Role::Checkpoint => self.cfg.checkpoint_tick,
        };
        while !self.shutdown.load(Ordering::Acquire) {
            self.pass(&role);
            self.wait(tick);
        }
    }
}

/// Owns the background maintenance workers of one database.
pub struct MaintenanceScheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl MaintenanceScheduler {
    /// Spawn the flush and checkpoint workers over `db`.
    pub fn start(db: Arc<Database>, cfg: MaintenanceConfig) -> Self {
        let shared = Arc::new(Shared {
            db,
            cfg,
            shutdown: AtomicBool::new(false),
            wake: Mutex::new(0),
            wake_cv: Condvar::new(),
            flushes: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            last_error: Mutex::new(None),
        });
        let workers = [Role::Flush, Role::Checkpoint]
            .into_iter()
            .map(|role| {
                let shared = shared.clone();
                let name = match role {
                    Role::Flush => "maint-flush",
                    Role::Checkpoint => "maint-checkpoint",
                };
                std::thread::Builder::new()
                    .name(name.to_string())
                    .spawn(move || shared.run(role))
                    .expect("spawn maintenance worker")
            })
            .collect();
        MaintenanceScheduler { shared, workers }
    }

    /// Wake both workers for an immediate sweep.
    pub fn poke(&self) {
        let mut gen = self.shared.wake.lock().expect("scheduler wake lock");
        *gen += 1;
        drop(gen);
        self.shared.wake_cv.notify_all();
    }

    /// Snapshot of the scheduler's counters.
    pub fn stats(&self) -> MaintenanceStats {
        MaintenanceStats {
            flushes: self.shared.flushes.load(Ordering::Relaxed),
            checkpoints: self.shared.checkpoints.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
        }
    }

    /// The last maintenance error, if any (sticky).
    pub fn last_error(&self) -> Option<String> {
        self.shared
            .last_error
            .lock()
            .expect("scheduler error lock")
            .clone()
    }

    /// Synchronously flush and checkpoint every table to a clean delta
    /// state on the calling thread (the per-table maintenance mutex
    /// serializes against in-flight worker passes). Errors are returned —
    /// a drain must not silently skip work.
    pub fn drain(&self) -> Result<(), DbError> {
        for table in self.shared.db.table_names() {
            if self.shared.db.maybe_flush(&table, 0)? {
                self.shared.flushes.fetch_add(1, Ordering::Relaxed);
            }
            if self.shared.db.checkpoint(&table)? {
                self.shared.checkpoints.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Signal the workers and join them. Pending passes finish; the
    /// database is left in whatever state the last pass produced (call
    /// [`MaintenanceScheduler::drain`] first for a clean shutdown).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for MaintenanceScheduler {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TableOptions, UpdatePolicy, ALL_POLICIES};
    use columnar::{Schema, TableMeta, Tuple, Value, ValueType};
    use exec::run_to_rows;

    fn db_with_ints(n: i64, policy: UpdatePolicy, opts: TableOptions) -> Arc<Database> {
        let db = Database::new();
        let schema = Schema::from_pairs(&[("k", ValueType::Int), ("v", ValueType::Int)]);
        let rows: Vec<Tuple> = (0..n)
            .map(|i| vec![Value::Int(i * 10), Value::Int(i)])
            .collect();
        db.create_table(
            TableMeta::new("t", schema, vec![0]),
            opts.with_policy(policy),
            rows,
        )
        .unwrap();
        Arc::new(db)
    }

    fn image(db: &Database) -> Vec<Tuple> {
        run_to_rows(&mut db.read_view().scan("t", vec![0, 1]).unwrap())
    }

    #[test]
    fn scheduler_flushes_and_checkpoints_under_tiny_budgets() {
        for policy in ALL_POLICIES {
            let opts = TableOptions::default()
                .with_block_rows(16)
                .with_flush_threshold(0)
                .with_checkpoint_threshold(0);
            let db = db_with_ints(64, policy, opts);
            let sched = MaintenanceScheduler::start(
                db.clone(),
                MaintenanceConfig::with_tick(Duration::from_millis(1)),
            );
            for i in 0..40 {
                let mut t = db.begin();
                t.insert("t", vec![Value::Int(i * 10 + 1), Value::Int(-i)])
                    .unwrap();
                t.commit().unwrap();
            }
            let before = image(&db);
            assert_eq!(before.len(), 104, "{policy:?}");
            sched.drain().unwrap();
            let stats = sched.stats();
            assert!(
                stats.checkpoints > 0,
                "{policy:?}: zero-budget scheduler must checkpoint, got {stats:?}"
            );
            assert_eq!(stats.errors, 0, "{policy:?}: {:?}", sched.last_error());
            assert_eq!(
                image(&db),
                before,
                "{policy:?}: maintenance changed the image"
            );
            // after the drain the whole image is stable
            let clean = run_to_rows(&mut db.clean_view().scan("t", vec![0, 1]).unwrap());
            assert_eq!(clean, before, "{policy:?}");
            sched.shutdown();
        }
    }

    #[test]
    fn churn_run_history_counts_toward_checkpoint_budget() {
        // insert-then-delete churn keeps the row store's net buffer tiny,
        // but every commit retains a run for conflict validation — the
        // checkpoint budget must see that growth (and a checkpoint must
        // retire it), or a long-running churn table leaks unseen
        let db = db_with_ints(8, UpdatePolicy::RowStore, TableOptions::default());
        let clean_bytes = db.delta_bytes("t").unwrap();
        for i in 0..10i64 {
            let mut t = db.begin();
            t.insert("t", vec![Value::Int(i * 10 + 1), Value::Int(0)])
                .unwrap();
            t.commit().unwrap();
            let mut t = db.begin();
            t.delete_where("t", exec::expr::col(0).eq(exec::expr::lit(i * 10 + 1)))
                .unwrap();
            t.commit().unwrap();
        }
        let churned = db.delta_bytes("t").unwrap();
        assert!(
            churned > clean_bytes + 500,
            "run history invisible to the budget: {clean_bytes} -> {churned}"
        );
        assert!(
            db.checkpoint("t").unwrap(),
            "net-zero checkpoint retires runs"
        );
        let retired = db.delta_bytes("t").unwrap();
        assert!(retired < churned / 2, "{churned} -> {retired}");
    }

    #[test]
    fn drop_shuts_the_workers_down() {
        let db = db_with_ints(8, UpdatePolicy::Pdt, TableOptions::default());
        let weak = {
            let sched = MaintenanceScheduler::start(db.clone(), MaintenanceConfig::default());
            sched.poke();
            Arc::downgrade(&sched.shared)
        };
        // workers joined on drop: nothing holds the shared state anymore
        assert_eq!(weak.strong_count(), 0);
    }
}
