//! Background maintenance: threshold-driven flush and checkpointing as a
//! scheduled activity instead of a foreground stall.
//!
//! The paper's layered design (§3.3, Algorithm 7) exists so that
//! Write-PDT→Read-PDT propagation and Read-PDT→stable checkpointing can
//! run *while queries keep scanning a consistent snapshot*. The
//! [`MaintenanceScheduler`] realises that: it owns worker threads that
//! sweep every **partition** of every table of an
//! [`Arc<Database>`](crate::Database) and
//!
//! * **flush** a partition's write-optimised delta layer into its
//!   read-optimised one once it exceeds the table's
//!   [`flush_threshold_bytes`](crate::TableOptions::flush_threshold_bytes)
//!   (the paper's Propagate policy — keep the Write-PDT CPU-cache-sized),
//! * **checkpoint** a partition into a fresh stable slice once its
//!   committed delta exceeds
//!   [`checkpoint_threshold_bytes`](crate::TableOptions::checkpoint_threshold_bytes),
//! * **compact** sub-partition block ranges of tables that enable
//!   heat-driven incremental compaction
//!   ([`crate::TableOptions::compaction`]): a third worker drains the
//!   [`crate::compaction`] planner's best step per sweep
//!   ([`Database::compact_partition`](crate::Database::compact_partition)),
//!   folding hot delta without rewriting the partition's cold blocks.
//!
//! Budgets are **per partition**: a range-partitioned table is maintained
//! slice by slice, and when several partitions go over budget in one
//! sweep their checkpoints run **in parallel** on scoped workers — the
//! three-phase pin/merge/install protocol serializes per *partition* (the
//! per-partition maintenance mutex), not per table, so partition merges
//! never contend with each other. Neither operation blocks readers or
//! writers: flushes are view-preserving `Arc` swaps, and checkpoints pin
//! their delta under the commit guard, rewrite the stable slice entirely
//! off-lock, and re-take the guard only for the final swap
//! ([`Database::checkpoint_partition`](crate::Database::checkpoint_partition)).
//!
//! ## Lifecycle
//!
//! [`MaintenanceScheduler::start`] spawns the workers; they tick at the
//! configured cadence (or immediately on [`poke`](MaintenanceScheduler::poke)).
//! [`drain`](MaintenanceScheduler::drain) synchronously flushes and
//! checkpoints every partition to a clean state on the calling thread —
//! typically right before [`shutdown`](MaintenanceScheduler::shutdown),
//! which signals the workers and joins them. Dropping the scheduler shuts
//! it down implicitly (without the drain).
//!
//! ## Observability
//!
//! [`MaintenanceScheduler::stats`] reports global counters plus
//! per-partition ones ([`MaintenancePartitionStats`]: flushes,
//! checkpoints, and delta bytes retired per partition), and
//! [`MaintenanceStats`] implements `Display` so a test or example can
//! print the scheduler's work distribution directly.

use crate::{Database, DbError};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Scheduler cadence knobs. Byte budgets are per-partition
/// ([`crate::TableOptions`]); the config only decides how often the
/// workers look.
#[derive(Debug, Clone, Copy)]
pub struct MaintenanceConfig {
    /// How often the flush worker sweeps the partitions. Default 2 ms.
    pub flush_tick: Duration,
    /// How often the checkpoint worker sweeps the partitions. Default 20 ms.
    pub checkpoint_tick: Duration,
    /// How often the compaction worker sweeps the partitions of
    /// compaction-enabled tables (see
    /// [`crate::TableOptions::compaction`]). Default 10 ms.
    pub compaction_tick: Duration,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            flush_tick: Duration::from_millis(2),
            checkpoint_tick: Duration::from_millis(20),
            compaction_tick: Duration::from_millis(10),
        }
    }
}

impl MaintenanceConfig {
    /// Same tick for every worker — test/bench convenience.
    pub fn with_tick(tick: Duration) -> Self {
        MaintenanceConfig {
            flush_tick: tick,
            checkpoint_tick: tick,
            compaction_tick: tick,
        }
    }
}

/// One partition's maintenance counters (monotonic since `start`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaintenancePartitionStats {
    /// The table the partition belongs to.
    pub table: String,
    /// Partition index within the table.
    pub partition: usize,
    /// Write→Read flushes of this partition.
    pub flushes: u64,
    /// Checkpoints of this partition that produced (or retired) state.
    pub checkpoints: u64,
    /// Delta bytes retired by this partition's checkpoints (the size of
    /// the committed delta at pin time, summed).
    pub bytes: u64,
    /// Sub-partition compaction steps (merge units) executed.
    pub compactions: u64,
    /// Stable blocks those steps rewrote.
    pub compaction_blocks_merged: u64,
    /// Stable blocks those steps left untouched (reused).
    pub compaction_blocks_reused: u64,
    /// Stable bytes the steps did *not* rewrite relative to
    /// whole-partition checkpoints in their place.
    pub compaction_bytes_saved: u64,
}

/// Counters published by the scheduler (monotonic since `start`), global
/// plus per partition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Write→Read flushes performed (all partitions).
    pub flushes: u64,
    /// Checkpoints that produced (or retired) state (all partitions).
    pub checkpoints: u64,
    /// Sub-partition compaction steps executed (all partitions).
    pub compactions: u64,
    /// Stable blocks compaction steps rewrote (all partitions).
    pub compaction_blocks_merged: u64,
    /// Stable blocks compaction steps left untouched (all partitions).
    pub compaction_blocks_reused: u64,
    /// Stable bytes compaction avoided rewriting, versus whole-partition
    /// checkpoints in place of the steps (all partitions).
    pub compaction_bytes_saved: u64,
    /// Stable bytes (re)written by checkpoints and compaction steps —
    /// the write-amplification numerator.
    pub stable_bytes_written: u64,
    /// Delta bytes those operations retired out of the differential
    /// layers — the write-amplification denominator.
    pub delta_bytes_retired: u64,
    /// Maintenance operations that returned an error (recorded, never
    /// propagated — the scheduler keeps running).
    pub errors: u64,
    /// Per-partition distribution, sorted by (table, partition). Only
    /// partitions that did work appear.
    pub partitions: Vec<MaintenancePartitionStats>,
}

impl fmt::Display for MaintenanceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "maintenance: {} flushes, {} checkpoints, {} compaction steps \
             ({} blocks merged / {} reused, {} stable bytes saved), {} errors",
            self.flushes,
            self.checkpoints,
            self.compactions,
            self.compaction_blocks_merged,
            self.compaction_blocks_reused,
            self.compaction_bytes_saved,
            self.errors
        )?;
        for p in &self.partitions {
            write!(
                f,
                "\n  {}#{}: {} flushes, {} checkpoints, {} delta bytes retired",
                p.table, p.partition, p.flushes, p.checkpoints, p.bytes
            )?;
            if p.compactions > 0 {
                write!(
                    f,
                    ", {} compactions ({}/{} blocks, {} bytes saved)",
                    p.compactions,
                    p.compaction_blocks_merged,
                    p.compaction_blocks_reused,
                    p.compaction_bytes_saved
                )?;
            }
        }
        Ok(())
    }
}

#[derive(Default, Clone, Copy)]
struct PartCounts {
    flushes: u64,
    checkpoints: u64,
    bytes: u64,
    compactions: u64,
    compaction_blocks_merged: u64,
    compaction_blocks_reused: u64,
    compaction_bytes_saved: u64,
}

struct Shared {
    db: Arc<Database>,
    cfg: MaintenanceConfig,
    shutdown: AtomicBool,
    /// Wakes sleeping workers early (shutdown or poke).
    wake: Mutex<u64>,
    wake_cv: Condvar,
    flushes: AtomicU64,
    checkpoints: AtomicU64,
    compactions: AtomicU64,
    compaction_blocks_merged: AtomicU64,
    compaction_blocks_reused: AtomicU64,
    compaction_bytes_saved: AtomicU64,
    stable_bytes_written: AtomicU64,
    delta_bytes_retired: AtomicU64,
    errors: AtomicU64,
    per_part: Mutex<HashMap<(String, usize), PartCounts>>,
    last_error: Mutex<Option<String>>,
}

enum Role {
    Flush,
    Checkpoint,
    Compact,
}

impl Shared {
    /// Sleep until the tick elapses, a poke arrives, or shutdown.
    fn wait(&self, tick: Duration) {
        let guard = self.wake.lock().expect("scheduler wake lock");
        let seen = *guard;
        let _unused = self
            .wake_cv
            .wait_timeout_while(guard, tick, |gen| {
                *gen == seen && !self.shutdown.load(Ordering::Acquire)
            })
            .expect("scheduler wake lock");
    }

    /// Record one partition operation's outcome. `bytes` is the delta
    /// footprint a successful checkpoint retired (0 for flushes).
    fn record(
        &self,
        table: &str,
        partition: usize,
        result: Result<bool, DbError>,
        role: &Role,
        bytes: u64,
    ) {
        match result {
            Ok(true) => {
                let mut per = self.per_part.lock().expect("scheduler per-part lock");
                let c = per.entry((table.to_string(), partition)).or_default();
                match role {
                    Role::Flush => {
                        self.flushes.fetch_add(1, Ordering::Relaxed);
                        c.flushes += 1;
                    }
                    Role::Checkpoint => {
                        self.checkpoints.fetch_add(1, Ordering::Relaxed);
                        c.checkpoints += 1;
                        c.bytes += bytes;
                        self.delta_bytes_retired.fetch_add(bytes, Ordering::Relaxed);
                        // a whole-partition checkpoint rewrote the full
                        // image; sample its stored size as the write cost
                        let written = self.db.stable_bytes_partition(table, partition);
                        self.stable_bytes_written
                            .fetch_add(written.unwrap_or(0), Ordering::Relaxed);
                    }
                    // compaction reports flow through `record_compaction`
                    Role::Compact => unreachable!("compaction uses record_compaction"),
                }
            }
            Ok(false) => {}
            // a table dropped mid-sweep is not an error
            Err(DbError::UnknownTable(_)) => {}
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                *self.last_error.lock().expect("scheduler error lock") = Some(e.to_string());
            }
        }
    }

    /// Record one incremental-compaction step's outcome. `retired` is the
    /// drop in the partition's structural delta footprint across the step
    /// (measured like the checkpoint budget, so the two retirement
    /// counters share a unit; concurrent commits can only undercount it).
    fn record_compaction(
        &self,
        table: &str,
        partition: usize,
        result: Result<Option<crate::CompactionReport>, DbError>,
        retired: u64,
    ) {
        match result {
            Ok(Some(report)) => {
                self.compactions.fetch_add(1, Ordering::Relaxed);
                self.compaction_blocks_merged
                    .fetch_add(report.blocks_merged, Ordering::Relaxed);
                self.compaction_blocks_reused
                    .fetch_add(report.blocks_reused, Ordering::Relaxed);
                self.compaction_bytes_saved
                    .fetch_add(report.stable_bytes_saved(), Ordering::Relaxed);
                self.stable_bytes_written
                    .fetch_add(report.stable_bytes_written, Ordering::Relaxed);
                self.delta_bytes_retired
                    .fetch_add(retired, Ordering::Relaxed);
                let mut per = self.per_part.lock().expect("scheduler per-part lock");
                let c = per.entry((table.to_string(), partition)).or_default();
                c.compactions += 1;
                c.compaction_blocks_merged += report.blocks_merged;
                c.compaction_blocks_reused += report.blocks_reused;
                c.compaction_bytes_saved += report.stable_bytes_saved();
            }
            Ok(None) => {}
            Err(DbError::UnknownTable(_)) => {}
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                *self.last_error.lock().expect("scheduler error lock") = Some(e.to_string());
            }
        }
    }

    /// One sweep over every partition for the given role. Over-budget
    /// checkpoints found in one sweep run in parallel (bounded by the
    /// machine's parallelism): the pin/merge/install protocol serializes
    /// per partition, so distinct partitions' merges are independent.
    fn pass(&self, role: &Role) {
        let mut due: Vec<(String, usize, u64)> = Vec::new();
        for table in self.db.table_names() {
            let Ok(opts) = self.db.options(&table) else {
                continue;
            };
            let Ok(nparts) = self.db.partition_count(&table) else {
                continue;
            };
            for p in 0..nparts {
                match role {
                    Role::Flush => {
                        let r =
                            self.db
                                .maybe_flush_partition(&table, p, opts.flush_threshold_bytes);
                        self.record(&table, p, r, &Role::Flush, 0);
                    }
                    Role::Checkpoint => {
                        let bytes = self.db.delta_bytes_partition(&table, p).unwrap_or(0);
                        if bytes > opts.checkpoint_threshold_bytes {
                            due.push((table.clone(), p, bytes as u64));
                        }
                    }
                    Role::Compact => {
                        // compact_partition plans against the heat map and
                        // returns None when nothing scores over the floors
                        if opts.compaction.enabled {
                            let before =
                                self.db.delta_bytes_partition(&table, p).unwrap_or(0) as u64;
                            let r = self.db.compact_partition(&table, p);
                            let after =
                                self.db.delta_bytes_partition(&table, p).unwrap_or(0) as u64;
                            self.record_compaction(&table, p, r, before.saturating_sub(after));
                        }
                    }
                }
            }
        }
        match due.len() {
            0 => {}
            1 => {
                let (table, p, bytes) = &due[0];
                let r = self.db.checkpoint_partition(table, *p);
                self.record(table, *p, r, &Role::Checkpoint, *bytes);
            }
            _ => {
                let workers = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(due.len());
                std::thread::scope(|s| {
                    for chunk in 0..workers {
                        let due = &due;
                        s.spawn(move || {
                            for (table, p, bytes) in due.iter().skip(chunk).step_by(workers) {
                                let r = self.db.checkpoint_partition(table, *p);
                                self.record(table, *p, r, &Role::Checkpoint, *bytes);
                            }
                        });
                    }
                });
            }
        }
    }

    fn run(&self, role: Role) {
        let tick = match role {
            Role::Flush => self.cfg.flush_tick,
            Role::Checkpoint => self.cfg.checkpoint_tick,
            Role::Compact => self.cfg.compaction_tick,
        };
        while !self.shutdown.load(Ordering::Acquire) {
            self.pass(&role);
            self.wait(tick);
        }
    }
}

/// Owns the background maintenance workers of one database.
pub struct MaintenanceScheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl MaintenanceScheduler {
    /// Spawn the flush and checkpoint workers over `db`.
    pub fn start(db: Arc<Database>, cfg: MaintenanceConfig) -> Self {
        let shared = Arc::new(Shared {
            db,
            cfg,
            shutdown: AtomicBool::new(false),
            wake: Mutex::new(0),
            wake_cv: Condvar::new(),
            flushes: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            compaction_blocks_merged: AtomicU64::new(0),
            compaction_blocks_reused: AtomicU64::new(0),
            compaction_bytes_saved: AtomicU64::new(0),
            stable_bytes_written: AtomicU64::new(0),
            delta_bytes_retired: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            per_part: Mutex::new(HashMap::new()),
            last_error: Mutex::new(None),
        });
        let workers = [Role::Flush, Role::Checkpoint, Role::Compact]
            .into_iter()
            .map(|role| {
                let shared = shared.clone();
                let name = match role {
                    Role::Flush => "maint-flush",
                    Role::Checkpoint => "maint-checkpoint",
                    Role::Compact => "maint-compact",
                };
                std::thread::Builder::new()
                    .name(name.to_string())
                    .spawn(move || shared.run(role))
                    .expect("spawn maintenance worker")
            })
            .collect();
        MaintenanceScheduler { shared, workers }
    }

    /// Wake both workers for an immediate sweep.
    pub fn poke(&self) {
        let mut gen = self.shared.wake.lock().expect("scheduler wake lock");
        *gen += 1;
        drop(gen);
        self.shared.wake_cv.notify_all();
    }

    /// Snapshot of the scheduler's counters (global + per partition).
    pub fn stats(&self) -> MaintenanceStats {
        let per = self
            .shared
            .per_part
            .lock()
            .expect("scheduler per-part lock");
        let mut partitions: Vec<MaintenancePartitionStats> = per
            .iter()
            .map(|((table, partition), c)| MaintenancePartitionStats {
                table: table.clone(),
                partition: *partition,
                flushes: c.flushes,
                checkpoints: c.checkpoints,
                bytes: c.bytes,
                compactions: c.compactions,
                compaction_blocks_merged: c.compaction_blocks_merged,
                compaction_blocks_reused: c.compaction_blocks_reused,
                compaction_bytes_saved: c.compaction_bytes_saved,
            })
            .collect();
        partitions.sort_by(|a, b| (&a.table, a.partition).cmp(&(&b.table, b.partition)));
        MaintenanceStats {
            flushes: self.shared.flushes.load(Ordering::Relaxed),
            checkpoints: self.shared.checkpoints.load(Ordering::Relaxed),
            compactions: self.shared.compactions.load(Ordering::Relaxed),
            compaction_blocks_merged: self.shared.compaction_blocks_merged.load(Ordering::Relaxed),
            compaction_blocks_reused: self.shared.compaction_blocks_reused.load(Ordering::Relaxed),
            compaction_bytes_saved: self.shared.compaction_bytes_saved.load(Ordering::Relaxed),
            stable_bytes_written: self.shared.stable_bytes_written.load(Ordering::Relaxed),
            delta_bytes_retired: self.shared.delta_bytes_retired.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            partitions,
        }
    }

    /// The last maintenance error, if any (sticky).
    pub fn last_error(&self) -> Option<String> {
        self.shared
            .last_error
            .lock()
            .expect("scheduler error lock")
            .clone()
    }

    /// Synchronously flush and checkpoint every partition to a clean
    /// delta state on the calling thread (the per-partition maintenance
    /// mutex serializes against in-flight worker passes). Errors are
    /// returned — a drain must not silently skip work.
    pub fn drain(&self) -> Result<(), DbError> {
        for table in self.shared.db.table_names() {
            for p in 0..self.shared.db.partition_count(&table)? {
                let bytes = self.shared.db.delta_bytes_partition(&table, p)? as u64;
                let flushed = self.shared.db.maybe_flush_partition(&table, p, 0)?;
                self.shared.record(&table, p, Ok(flushed), &Role::Flush, 0);
                let ckpt = self.shared.db.checkpoint_partition(&table, p)?;
                self.shared
                    .record(&table, p, Ok(ckpt), &Role::Checkpoint, bytes);
            }
        }
        Ok(())
    }

    /// Signal the workers and join them. Pending passes finish; the
    /// database is left in whatever state the last pass produced (call
    /// [`MaintenanceScheduler::drain`] first for a clean shutdown).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for MaintenanceScheduler {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartitionSpec, TableOptions, UpdatePolicy, ALL_POLICIES};
    use columnar::{Schema, TableMeta, Tuple, Value, ValueType};
    use exec::run_to_rows;

    fn db_with_ints(n: i64, policy: UpdatePolicy, opts: TableOptions) -> Arc<Database> {
        let db = Database::new();
        let schema = Schema::from_pairs(&[("k", ValueType::Int), ("v", ValueType::Int)]);
        let rows: Vec<Tuple> = (0..n)
            .map(|i| vec![Value::Int(i * 10), Value::Int(i)])
            .collect();
        db.create_table(
            TableMeta::new("t", schema, vec![0]),
            opts.with_policy(policy),
            rows,
        )
        .unwrap();
        Arc::new(db)
    }

    fn image(db: &Database) -> Vec<Tuple> {
        run_to_rows(&mut db.read_view().scan("t", vec![0, 1]).unwrap())
    }

    #[test]
    fn scheduler_flushes_and_checkpoints_under_tiny_budgets() {
        for policy in ALL_POLICIES {
            let opts = TableOptions::default()
                .with_block_rows(16)
                .with_flush_threshold(0)
                .with_checkpoint_threshold(0);
            let db = db_with_ints(64, policy, opts);
            let sched = MaintenanceScheduler::start(
                db.clone(),
                MaintenanceConfig::with_tick(Duration::from_millis(1)),
            );
            for i in 0..40 {
                let mut t = db.begin();
                t.insert("t", vec![Value::Int(i * 10 + 1), Value::Int(-i)])
                    .unwrap();
                t.commit().unwrap();
            }
            let before = image(&db);
            assert_eq!(before.len(), 104, "{policy:?}");
            sched.drain().unwrap();
            let stats = sched.stats();
            assert!(
                stats.checkpoints > 0,
                "{policy:?}: zero-budget scheduler must checkpoint, got {stats:?}"
            );
            assert_eq!(stats.errors, 0, "{policy:?}: {:?}", sched.last_error());
            assert_eq!(
                image(&db),
                before,
                "{policy:?}: maintenance changed the image"
            );
            // after the drain the whole image is stable
            let clean = run_to_rows(&mut db.clean_view().scan("t", vec![0, 1]).unwrap());
            assert_eq!(clean, before, "{policy:?}");
            sched.shutdown();
        }
    }

    #[test]
    fn partitioned_scheduler_distributes_work_across_partitions() {
        for policy in ALL_POLICIES {
            let opts = TableOptions::default()
                .with_block_rows(16)
                .with_flush_threshold(0)
                .with_checkpoint_threshold(0)
                .with_partitions(PartitionSpec::Count(4));
            let db = db_with_ints(128, policy, opts);
            assert_eq!(db.partition_count("t").unwrap(), 4, "{policy:?}");
            let sched = MaintenanceScheduler::start(
                db.clone(),
                MaintenanceConfig::with_tick(Duration::from_millis(1)),
            );
            // writes spread over the whole key range touch every partition
            for i in 0..64 {
                let mut t = db.begin();
                t.insert("t", vec![Value::Int(i * 20 + 1), Value::Int(-i)])
                    .unwrap();
                t.commit().unwrap();
            }
            let before = image(&db);
            sched.drain().unwrap();
            let stats = sched.stats();
            assert_eq!(stats.errors, 0, "{policy:?}: {:?}", sched.last_error());
            let touched: std::collections::HashSet<usize> = stats
                .partitions
                .iter()
                .filter(|p| p.checkpoints > 0)
                .map(|p| p.partition)
                .collect();
            assert_eq!(
                touched.len(),
                4,
                "{policy:?}: every partition must checkpoint, got {stats}"
            );
            // bytes retired are tracked per partition
            assert!(
                stats.partitions.iter().any(|p| p.bytes > 0),
                "{policy:?}: {stats}"
            );
            // the Display impl names every partition
            let rendered = stats.to_string();
            for p in 0..4 {
                assert!(rendered.contains(&format!("t#{p}")), "{rendered}");
            }
            assert_eq!(image(&db), before, "{policy:?}");
            sched.shutdown();
        }
    }

    #[test]
    fn churn_run_history_counts_toward_checkpoint_budget() {
        // insert-then-delete churn keeps the row store's net buffer tiny,
        // but every commit retains a run for conflict validation — the
        // checkpoint budget must see that growth (and a checkpoint must
        // retire it), or a long-running churn table leaks unseen
        let db = db_with_ints(8, UpdatePolicy::RowStore, TableOptions::default());
        let clean_bytes = db.delta_bytes("t").unwrap();
        for i in 0..10i64 {
            let mut t = db.begin();
            t.insert("t", vec![Value::Int(i * 10 + 1), Value::Int(0)])
                .unwrap();
            t.commit().unwrap();
            let mut t = db.begin();
            t.delete_where("t", exec::expr::col(0).eq(exec::expr::lit(i * 10 + 1)))
                .unwrap();
            t.commit().unwrap();
        }
        let churned = db.delta_bytes("t").unwrap();
        assert!(
            churned > clean_bytes + 500,
            "run history invisible to the budget: {clean_bytes} -> {churned}"
        );
        assert!(
            db.checkpoint("t").unwrap(),
            "net-zero checkpoint retires runs"
        );
        let retired = db.delta_bytes("t").unwrap();
        assert!(retired < churned / 2, "{churned} -> {retired}");
    }

    #[test]
    fn compaction_worker_drains_hot_ranges() {
        for policy in ALL_POLICIES {
            // checkpoint budget high enough that only the compaction
            // worker can retire delta; heat floors at zero so any staged
            // byte plans a step
            let opts = TableOptions::default()
                .with_block_rows(16)
                .with_flush_threshold(0)
                .with_compaction(crate::CompactionConfig {
                    enabled: true,
                    max_unit_blocks: 2,
                    min_delta_bytes: 1,
                    min_score_permille: 0,
                });
            let db = db_with_ints(128, policy, opts);
            let sched = MaintenanceScheduler::start(
                db.clone(),
                MaintenanceConfig::with_tick(Duration::from_millis(1)),
            );
            // skewed churn: every write lands in one narrow key range
            for i in 0..30 {
                let mut t = db.begin();
                t.insert("t", vec![Value::Int(481 + 2 * i), Value::Int(-i)])
                    .unwrap();
                t.commit().unwrap();
                sched.poke();
                std::thread::sleep(Duration::from_millis(2));
            }
            let before = image(&db);
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while sched.stats().compactions == 0 && std::time::Instant::now() < deadline {
                sched.poke();
                std::thread::sleep(Duration::from_millis(2));
            }
            let stats = sched.stats();
            assert!(
                stats.compactions > 0,
                "{policy:?}: compaction worker never ran a step: {stats}"
            );
            assert!(
                stats.compaction_blocks_reused > 0,
                "{policy:?}: steps reused no blocks: {stats}"
            );
            assert_eq!(stats.errors, 0, "{policy:?}: {:?}", sched.last_error());
            assert_eq!(
                image(&db),
                before,
                "{policy:?}: compaction changed the image"
            );
            let rendered = stats.to_string();
            assert!(
                rendered.contains("compaction steps"),
                "Display must surface compaction: {rendered}"
            );
            sched.shutdown();
        }
    }

    #[test]
    fn drop_shuts_the_workers_down() {
        let db = db_with_ints(8, UpdatePolicy::Pdt, TableOptions::default());
        let weak = {
            let sched = MaintenanceScheduler::start(db.clone(), MaintenanceConfig::default());
            sched.poke();
            Arc::downgrade(&sched.shared)
        };
        // workers joined on drop: nothing holds the shared state anymore
        assert_eq!(weak.strong_count(), 0);
    }
}
