//! Heat-driven incremental compaction: per-block delta/scan statistics,
//! and the cost model that turns them into bounded sub-partition merge
//! steps.
//!
//! A whole-partition checkpoint rewrites every stable block to fold a
//! delta that — under skewed churn — concentrates in a few of them. The
//! compaction subsystem keeps, per partition, a [`PartitionHeat`] map of
//! where delta and scan traffic actually lands, and a planner
//! ([`plan_steps`]) that scores contiguous block ranges by *benefit per
//! rewritten byte*: fold the hottest ranges into fresh blocks, leave the
//! cold majority untouched (their encoded payloads — and, with an image
//! store, their on-disk blocks — are reused verbatim). The scheduler
//! drains the resulting [`CompactionStep`]s between full checkpoints.
//!
//! Heat is *advisory*: every counter here is a heuristic input to the
//! planner, never part of the correctness argument. A lost or double
//! count changes which range merges first, not what any scan returns.
//!
//! ## Feeds
//!
//! * **Delta heat** — the DML layer charges every staged batch's bytes to
//!   the stable blocks its rid span covers
//!   ([`PartitionHeat::record_delta_span`]).
//! * **Scan heat** — every engine scan path reads stable blocks through a
//!   per-partition [`columnar::IoTracker::scoped`] tracker, which reports
//!   `(block, bytes)` pairs to the partition's heat map via
//!   [`columnar::BlockHeatSink`] while the byte totals keep accumulating
//!   in the database-global counters.
//!
//! Both feeds reset when the partition's stable slice is swapped (a
//! checkpoint or compaction changes the block geometry, so old indices
//! are meaningless).

use columnar::{BlockHeatSink, StableTable};
use parking_lot::Mutex;
use std::sync::Arc;

/// Per-block accumulators of one partition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockHeat {
    /// Bytes of staged delta payload attributed to this block's rid span.
    pub delta_bytes: u64,
    /// Stored bytes scans read from this block since the last reset.
    pub scan_bytes: u64,
}

/// Heat map of one partition's stable blocks. Shared (`Arc`) between the
/// partition entry, every transaction snapshot of it, and the scoped
/// [`columnar::IoTracker`] its scans charge.
#[derive(Debug, Default)]
pub struct PartitionHeat {
    blocks: Mutex<Vec<BlockHeat>>,
}

impl PartitionHeat {
    /// Fresh, all-cold map for a stable slice of `num_blocks` blocks.
    pub fn new(num_blocks: usize) -> Arc<PartitionHeat> {
        Arc::new(PartitionHeat {
            blocks: Mutex::new(vec![BlockHeat::default(); num_blocks]),
        })
    }

    /// Drop all heat and re-size for a freshly swapped stable slice.
    pub fn reset(&self, num_blocks: usize) {
        let mut b = self.blocks.lock();
        b.clear();
        b.resize(num_blocks, BlockHeat::default());
    }

    /// Charge `bytes` of staged delta payload to blocks `[b0, b1]`
    /// (inclusive), distributed evenly. Out-of-range indices are clamped —
    /// trailing inserts land on the last block.
    pub fn record_delta_span(&self, b0: usize, b1: usize, bytes: u64) {
        let mut blocks = self.blocks.lock();
        let n = blocks.len();
        if n == 0 {
            return;
        }
        let lo = b0.min(n - 1);
        let hi = b1.min(n - 1).max(lo);
        let span = (hi - lo + 1) as u64;
        let per = bytes / span;
        let mut rem = bytes % span;
        for h in &mut blocks[lo..=hi] {
            h.delta_bytes += per + u64::from(rem > 0);
            rem = rem.saturating_sub(1);
        }
    }

    /// Snapshot of the per-block counters.
    pub fn snapshot(&self) -> Vec<BlockHeat> {
        self.blocks.lock().clone()
    }
}

impl BlockHeatSink for PartitionHeat {
    fn on_block_read(&self, block: usize, bytes: u64) {
        let mut blocks = self.blocks.lock();
        if let Some(h) = blocks.get_mut(block) {
            h.scan_bytes += bytes;
        }
    }
}

/// Creation-time knobs of the incremental-compaction planner, part of
/// [`crate::TableOptions`]. Integral on purpose so table options stay
/// `Eq`; the score threshold is in permille (1000 = benefit equals cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionConfig {
    /// Master switch. Off (the default) keeps the pre-compaction engine:
    /// only whole-partition checkpoints rewrite stable state.
    pub enabled: bool,
    /// Longest block range one compaction step may rewrite. Bounds both
    /// the off-lock merge cost and the write amplification of a single
    /// step. Default 8.
    pub max_unit_blocks: usize,
    /// Delta bytes a candidate range must have accumulated before it is
    /// worth a rewrite at all. Default 4 KiB.
    pub min_delta_bytes: u64,
    /// Minimum `benefit * 1000 / cost` a step must score (see
    /// [`plan_steps`]). Default 0 — any range over the byte floor merges.
    pub min_score_permille: u64,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig {
            enabled: false,
            max_unit_blocks: 8,
            min_delta_bytes: 4 << 10,
            min_score_permille: 0,
        }
    }
}

/// One planned sub-partition merge: fold the delta overlapping stable
/// blocks `[b0, b1)` into fresh blocks, leaving the rest of the partition
/// untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStep {
    /// First stable block of the unit.
    pub b0: usize,
    /// One past the last stable block of the unit.
    pub b1: usize,
    /// `benefit * 1000 / cost` at plan time (see [`plan_steps`]).
    pub score_permille: u64,
    /// Delta bytes attributed to the unit at plan time.
    pub delta_bytes: u64,
}

/// Stored bytes of stable block `b`, summed over all columns — the
/// planner's rewrite-cost unit.
pub(crate) fn block_stored_bytes(stable: &StableTable, b: usize) -> u64 {
    (0..stable.num_columns())
        .map(|c| stable.column_blocks(c)[b].stored_bytes())
        .sum()
}

/// Score the partition's heat map into an ordered list of compaction
/// steps (best first), SynchroStore-style:
///
/// * a **candidate** is a maximal run of adjacent blocks with any delta
///   heat, chopped to `max_unit_blocks`;
/// * its **benefit** is the delta bytes it would fold, weighted up by how
///   much scan traffic crosses the range (folding delta under a hot scan
///   path saves merge work on every future read);
/// * its **cost** is the stored bytes of the stable blocks it rewrites;
/// * its score is `benefit * 1000 / cost` — ranges below
///   `min_delta_bytes` or `min_score_permille` are dropped.
///
/// Deterministic and O(blocks): same heat in, same plan out. Returned
/// steps never overlap, so the scheduler may run them back to back (each
/// installed step resets the heat map anyway).
pub fn plan_steps(
    heat: &[BlockHeat],
    stable: &StableTable,
    cfg: &CompactionConfig,
) -> Vec<CompactionStep> {
    let n = heat.len().min(stable.num_blocks());
    let max_unit = cfg.max_unit_blocks.max(1);
    let mut steps = Vec::new();
    let mut b = 0usize;
    while b < n {
        if heat[b].delta_bytes == 0 {
            b += 1;
            continue;
        }
        // maximal hot run, chopped into units of at most max_unit blocks
        let mut end = b;
        while end < n && heat[end].delta_bytes > 0 {
            end += 1;
        }
        let mut u0 = b;
        while u0 < end {
            let u1 = (u0 + max_unit).min(end);
            let delta_bytes: u64 = heat[u0..u1].iter().map(|h| h.delta_bytes).sum();
            let scan_bytes: u64 = heat[u0..u1].iter().map(|h| h.scan_bytes).sum();
            let cost: u64 = (u0..u1).map(|i| block_stored_bytes(stable, i)).sum();
            if delta_bytes >= cfg.min_delta_bytes {
                // scan weight: 1 + scan/stored, capped so a scan-only
                // hotspot cannot dwarf the delta term
                let weight_permille = 1000
                    + (scan_bytes.min(cost.saturating_mul(4))).saturating_mul(1000) / cost.max(1);
                let benefit = delta_bytes.saturating_mul(weight_permille) / 1000;
                let score_permille = benefit.saturating_mul(1000) / cost.max(1);
                if score_permille >= cfg.min_score_permille {
                    steps.push(CompactionStep {
                        b0: u0,
                        b1: u1,
                        score_permille,
                        delta_bytes,
                    });
                }
            }
            u0 = u1;
        }
        b = end;
    }
    steps.sort_by(|a, b| {
        b.score_permille
            .cmp(&a.score_permille)
            .then(a.b0.cmp(&b.b0))
    });
    steps
}

/// Counters one [`crate::Database::compact_partition`] step reports back
/// to the scheduler and the serving layer's metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Stable blocks the step merged (rewrote).
    pub blocks_merged: u64,
    /// Stable blocks of the partition left untouched by the step (and,
    /// when an image store is attached, reused by reference in the
    /// published image).
    pub blocks_reused: u64,
    /// Delta bytes the step folded out of the update structure.
    pub delta_bytes_folded: u64,
    /// Stable bytes the step rewrote.
    pub stable_bytes_written: u64,
    /// Stable bytes a whole-partition checkpoint would have rewritten in
    /// its place — `stable_bytes_saved = this - stable_bytes_written` is
    /// the write amplification the incremental step avoided.
    pub stable_bytes_total: u64,
}

impl CompactionReport {
    /// Stable bytes the step did **not** rewrite.
    pub fn stable_bytes_saved(&self) -> u64 {
        self.stable_bytes_total
            .saturating_sub(self.stable_bytes_written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::{Schema, TableMeta, Tuple, Value, ValueType};

    fn stable_with(nrows: i64, block_rows: usize) -> StableTable {
        let schema = Schema::from_pairs(&[("k", ValueType::Int), ("v", ValueType::Int)]);
        let rows: Vec<Tuple> = (0..nrows)
            .map(|i| vec![Value::Int(i), Value::Int(i * 2)])
            .collect();
        StableTable::bulk_load(
            TableMeta::new("t", schema, vec![0]),
            columnar::TableOptions {
                block_rows,
                compressed: true,
            },
            &rows,
        )
        .unwrap()
    }

    #[test]
    fn heat_accumulates_and_resets() {
        let h = PartitionHeat::new(4);
        h.record_delta_span(1, 2, 100);
        h.on_block_read(1, 40);
        h.on_block_read(9, 7); // out of range: ignored, never panics
        let snap = h.snapshot();
        assert_eq!(snap[0], BlockHeat::default());
        assert_eq!(snap[1].delta_bytes, 50);
        assert_eq!(snap[2].delta_bytes, 50);
        assert_eq!(snap[1].scan_bytes, 40);
        h.reset(2);
        assert_eq!(h.snapshot(), vec![BlockHeat::default(); 2]);
    }

    #[test]
    fn delta_span_clamps_and_distributes_remainder() {
        let h = PartitionHeat::new(3);
        // span beyond the last block clamps onto it (trailing inserts)
        h.record_delta_span(5, 9, 30);
        assert_eq!(h.snapshot()[2].delta_bytes, 30);
        // odd bytes over an even span: nothing lost
        h.record_delta_span(0, 1, 7);
        let snap = h.snapshot();
        assert_eq!(snap[0].delta_bytes + snap[1].delta_bytes, 7);
    }

    #[test]
    fn planner_picks_hot_ranges_and_bounds_units() {
        let stable = stable_with(64, 8); // 8 blocks
        let mut heat = vec![BlockHeat::default(); 8];
        // a hot pair and a lukewarm singleton
        heat[2].delta_bytes = 10_000;
        heat[3].delta_bytes = 8_000;
        heat[6].delta_bytes = 5_000;
        let cfg = CompactionConfig {
            enabled: true,
            max_unit_blocks: 8,
            min_delta_bytes: 1,
            min_score_permille: 0,
        };
        let steps = plan_steps(&heat, &stable, &cfg);
        assert_eq!(steps.len(), 2);
        assert_eq!((steps[0].b0, steps[0].b1), (2, 4), "hottest range first");
        assert_eq!((steps[1].b0, steps[1].b1), (6, 7));
        assert!(steps[0].score_permille >= steps[1].score_permille);
        // unit bound chops a long hot run
        let all_hot = vec![
            BlockHeat {
                delta_bytes: 100,
                scan_bytes: 0
            };
            8
        ];
        let bounded = plan_steps(
            &all_hot,
            &stable,
            &CompactionConfig {
                max_unit_blocks: 3,
                min_delta_bytes: 1,
                ..cfg
            },
        );
        assert_eq!(bounded.len(), 3);
        assert!(bounded.iter().all(|s| s.b1 - s.b0 <= 3));
    }

    #[test]
    fn planner_respects_floors() {
        let stable = stable_with(64, 8);
        let mut heat = vec![BlockHeat::default(); 8];
        heat[1].delta_bytes = 100;
        let cfg = CompactionConfig {
            enabled: true,
            max_unit_blocks: 8,
            min_delta_bytes: 1000,
            min_score_permille: 0,
        };
        assert!(plan_steps(&heat, &stable, &cfg).is_empty(), "byte floor");
        let cfg = CompactionConfig {
            min_delta_bytes: 1,
            min_score_permille: u64::MAX,
            ..cfg
        };
        assert!(plan_steps(&heat, &stable, &cfg).is_empty(), "score floor");
        // scan heat alone never plans a step (nothing to fold)
        let mut scan_only = vec![BlockHeat::default(); 8];
        scan_only[0].scan_bytes = 1 << 20;
        let cfg = CompactionConfig {
            min_delta_bytes: 1,
            min_score_permille: 0,
            ..cfg
        };
        assert!(plan_steps(&scan_only, &stable, &cfg).is_empty());
    }

    #[test]
    fn scan_heat_raises_scores() {
        let stable = stable_with(64, 8);
        let mut cold = vec![BlockHeat::default(); 8];
        cold[0].delta_bytes = 500;
        cold[4].delta_bytes = 500;
        let mut scanned = cold.clone();
        scanned[4].scan_bytes = 10_000;
        let cfg = CompactionConfig {
            enabled: true,
            max_unit_blocks: 1,
            min_delta_bytes: 1,
            min_score_permille: 0,
        };
        let without = plan_steps(&cold, &stable, &cfg);
        assert_eq!((without[0].b0, without[1].b0), (0, 4), "tie keeps order");
        let with = plan_steps(&scanned, &stable, &cfg);
        assert_eq!(with[0].b0, 4, "scan traffic promotes the range");
        assert!(with[0].score_permille > without[1].score_permille);
    }
}
