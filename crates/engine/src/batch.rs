//! Batched DML payloads — the unit of the engine's batch-first write path.
//!
//! Every write statement ([`crate::DbTxn::append`],
//! [`crate::DbTxn::delete_rids`], [`crate::DbTxn::update_col`], and the
//! predicate forms built on top of them) resolves its victims *once*,
//! packs them into one [`DmlBatch`], and hands it to the table's update
//! structure through [`crate::DeltaTxn::stage_batch`] — one staging call,
//! one op-log entry, one WAL entry per statement, however many rows it
//! touches. The payload reuses the executor's columnar [`Batch`], so rows
//! flow from scan output into the write path without transposition.
//!
//! A `DmlBatch` is *positional*: the engine has already translated
//! predicates and sort keys into visible RIDs (and collected the full
//! pre-images value-addressed structures need), which is exactly the
//! division of labor the paper's PDT design prescribes — position
//! resolution happens once per statement, at the scan, not once per row
//! inside the structure.

use columnar::ColumnVec;
use exec::Batch;

/// One batched DML statement, ready for [`crate::DeltaTxn::stage_batch`].
///
/// ## Invariants (upheld by the `DbTxn` entry points)
///
/// * `Insert`: `rows` are sort-key-ordered with distinct keys, all of full
///   table width; `rids` pair with the rows **in application order** —
///   staging row `i` at `rids[i]` via row-at-a-time `stage_insert`, in
///   order, produces the same image (each rid already accounts for the
///   `i` earlier inserts of the same batch).
/// * `Delete`: `rids` are ascending visible positions of the current
///   transaction view, `pre` holds the victims' full pre-images in the
///   same order (ascending rid ⇒ ascending sort key).
/// * `UpdateCol`: `rids` ascending and distinct, `values[i]` is the new
///   value of column `col` for the row at `rids[i]`, `pre` the full
///   pre-images in the same order. `col` is never a sort-key column (the
///   engine rewrites those as delete + insert, per §2.1 of the paper).
#[derive(Debug, Clone)]
pub enum DmlBatch {
    /// Insert `rows` at visible positions `rids`.
    Insert {
        /// Ascending target positions, offset by earlier batch inserts.
        rids: Vec<u64>,
        /// The inserted rows, in position order.
        rows: Batch,
    },
    /// Delete the visible rows at `rids`.
    Delete {
        /// Ascending visible positions of the victims.
        rids: Vec<u64>,
        /// Full pre-images of the victims, in `rids` order.
        pre: Batch,
    },
    /// Set column `col` of the visible rows at `rids` to `values`.
    UpdateCol {
        /// Ascending, distinct visible positions.
        rids: Vec<u64>,
        /// The updated column (never a sort-key column).
        col: usize,
        /// New values, `values[i]` for the row at `rids[i]`.
        values: ColumnVec,
        /// Full pre-images of the updated rows, in `rids` order.
        pre: Batch,
    },
}

impl DmlBatch {
    /// Number of rows this statement touches.
    pub fn len(&self) -> usize {
        match self {
            DmlBatch::Insert { rids, .. }
            | DmlBatch::Delete { rids, .. }
            | DmlBatch::UpdateCol { rids, .. } => rids.len(),
        }
    }

    /// Whether the statement touches no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::{Value, ValueType};

    #[test]
    fn len_counts_rows() {
        let rows = Batch::from_rows(
            &[ValueType::Int, ValueType::Str],
            &[
                vec![Value::Int(1), Value::Str("a".into())],
                vec![Value::Int(2), Value::Str("b".into())],
            ],
        );
        let b = DmlBatch::Insert {
            rids: vec![0, 1],
            rows,
        };
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }
}
