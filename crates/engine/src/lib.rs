//! # Mini column-store DBMS
//!
//! Ties the substrates together into the system the paper evaluates:
//! ordered compressed columnar tables ([`columnar`]), differential updates
//! via PDTs ([`pdt`]) under snapshot-isolation transactions ([`txn`]) — or
//! via the value-based VDT baseline ([`vdt`]) — and scans/queries through
//! the block-oriented executor ([`exec`]).
//!
//! Three scan modes correspond to the three bars of the paper's Figure 19:
//!
//! * [`ScanMode::Clean`] — stable image only ("no-updates" runs),
//! * [`ScanMode::Pdt`] — positional merging through Read/Write(/Trans)
//!   PDTs,
//! * [`ScanMode::Vdt`] — value-based merging through the VDT.
//!
//! DML follows the paper's flows: inserts locate their RID with a ranged
//! scan on the sort key ("SELECT rid WHERE SK > sk ORDER BY rid LIMIT 1"),
//! resolve SIDs against ghosts via `SkRidToSid`, and record updates in the
//! transaction's private Trans-PDT; deletes and updates scan for victims
//! and fold positionally. Sort-key-modifying updates are rewritten as
//! delete + insert (§2.1).

pub mod dml;

pub use dml::DbTxn;

use columnar::{
    ColumnarError, IoTracker, Schema, StableTable, TableMeta, TableOptions, Tuple, Value,
};
use exec::{DeltaLayers, ScanBounds, ScanClock, TableScan};
use parking_lot::RwLock;
use pdt::Pdt;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use txn::{TxnError, TxnManager};
use vdt::Vdt;

/// Engine-level errors.
#[derive(Debug)]
pub enum DbError {
    UnknownTable(String),
    DuplicateKey { table: String, key: Vec<Value> },
    Storage(ColumnarError),
    Txn(TxnError),
    Io(std::io::Error),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table {t}"),
            DbError::DuplicateKey { table, key } => {
                write!(f, "duplicate sort key {key:?} in table {table}")
            }
            DbError::Storage(e) => write!(f, "storage error: {e}"),
            DbError::Txn(e) => write!(f, "transaction error: {e}"),
            DbError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ColumnarError> for DbError {
    fn from(e: ColumnarError) -> Self {
        DbError::Storage(e)
    }
}

impl From<TxnError> for DbError {
    fn from(e: TxnError) -> Self {
        DbError::Txn(e)
    }
}

/// Which differential structure scans merge (Figure 19's three bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    Clean,
    Pdt,
    Vdt,
}

pub(crate) struct TableEntry {
    pub stable: Arc<StableTable>,
    pub vdt: Arc<Vdt>,
}

/// The database: stable tables + transaction manager + VDT baseline state.
pub struct Database {
    pub(crate) txn_mgr: TxnManager,
    pub(crate) tables: RwLock<HashMap<String, TableEntry>>,
    io: IoTracker,
    clock: ScanClock,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// In-memory database without a WAL.
    pub fn new() -> Self {
        Database {
            txn_mgr: TxnManager::new(),
            tables: RwLock::new(HashMap::new()),
            io: IoTracker::new(),
            clock: ScanClock::new(),
        }
    }

    /// Database whose commits append to a WAL at `path`.
    pub fn with_wal(path: &Path) -> Result<Self, DbError> {
        Ok(Database {
            txn_mgr: TxnManager::with_wal(path).map_err(DbError::Io)?,
            tables: RwLock::new(HashMap::new()),
            io: IoTracker::new(),
            clock: ScanClock::new(),
        })
    }

    /// Bulk-load a table (rows need not be pre-sorted).
    pub fn create_table(
        &self,
        meta: TableMeta,
        opts: TableOptions,
        rows: Vec<Tuple>,
    ) -> Result<(), DbError> {
        let name = meta.name.clone();
        let schema = meta.schema.clone();
        let sk = meta.sort_key.cols().to_vec();
        let stable = StableTable::bulk_load_unsorted(meta, opts, rows)?;
        self.txn_mgr.register_table(&name, schema.clone(), sk.clone());
        self.tables.write().insert(
            name,
            TableEntry {
                stable: Arc::new(stable),
                vdt: Arc::new(Vdt::new(schema, sk)),
            },
        );
        Ok(())
    }

    /// Shared I/O counters (per-database).
    pub fn io(&self) -> &IoTracker {
        &self.io
    }

    /// Shared scan-time clock.
    pub fn clock(&self) -> &ScanClock {
        &self.clock
    }

    /// Replay the WAL at `path` into the PDT layers (after `create_table`).
    pub fn recover_from(&self, path: &Path) -> Result<u64, DbError> {
        self.txn_mgr.recover_from(path).map_err(DbError::Io)
    }

    /// Schema of a table.
    pub fn schema(&self, table: &str) -> Schema {
        self.tables.read()[table].stable.schema().clone()
    }

    /// Current stable image of a table.
    pub fn stable(&self, table: &str) -> Arc<StableTable> {
        self.tables.read()[table].stable.clone()
    }

    /// Total visible row count under a fresh snapshot.
    pub fn row_count(&self, table: &str, mode: ScanMode) -> u64 {
        let view = self.read_view(mode);
        view.visible_rows(table)
    }

    /// Open a consistent read-only view for query execution.
    pub fn read_view(&self, mode: ScanMode) -> ReadView {
        let tables = self.tables.read();
        let mut views = HashMap::new();
        // a throwaway transaction captures the PDT layer snapshots
        let txn = self.txn_mgr.begin();
        for (name, entry) in tables.iter() {
            let snap = txn.snapshot(name);
            views.insert(
                name.clone(),
                TableView {
                    stable: entry.stable.clone(),
                    read_pdt: snap.read.clone(),
                    write_pdt: snap.write.clone(),
                    vdt: entry.vdt.clone(),
                },
            );
        }
        self.txn_mgr.abort(txn);
        ReadView {
            tables: views,
            mode,
            io: self.io.clone(),
            clock: self.clock.clone(),
        }
    }

    /// Begin a read-write transaction (PDT mode).
    pub fn begin(&self) -> DbTxn<'_> {
        DbTxn::new(self, self.txn_mgr.begin())
    }

    /// Migrate the Write-PDT into the Read-PDT when it exceeds
    /// `threshold_bytes` (the paper's Propagate policy). Returns whether a
    /// flush happened.
    pub fn maybe_flush(&self, table: &str, threshold_bytes: usize) -> bool {
        if self.txn_mgr.write_pdt_bytes(table) > threshold_bytes {
            self.txn_mgr.flush_write_to_read(table);
            true
        } else {
            false
        }
    }

    /// Checkpoint: materialise all PDT updates into a fresh stable image
    /// and reset the PDT layers. Blocks commits for the duration.
    pub fn checkpoint(&self, table: &str) -> Result<bool, DbError> {
        let stable = self.stable(table);
        let io = self.io.clone();
        let did = self.txn_mgr.checkpoint(table, |read| {
            let new_stable = pdt::checkpoint::checkpoint_table(&stable, read, &io)?;
            self.tables.write().get_mut(table).unwrap().stable = Arc::new(new_stable);
            Ok::<(), ColumnarError>(())
        })?;
        Ok(did)
    }

    /// Checkpoint the VDT baseline: apply its delta to the stable image.
    pub fn checkpoint_vdt(&self, table: &str) -> Result<(), DbError> {
        let mut tables = self.tables.write();
        let entry = tables.get_mut(table).unwrap();
        let rows = entry.stable.scan_all(&self.io)?;
        let merged = entry.vdt.merge_rows(&rows);
        let new_stable = StableTable::bulk_load(
            entry.stable.meta().clone(),
            entry.stable.options(),
            &merged,
        )?;
        entry.stable = Arc::new(new_stable);
        entry.vdt = Arc::new(Vdt::new(
            entry.stable.schema().clone(),
            entry.stable.sort_key().cols().to_vec(),
        ));
        Ok(())
    }

    /// Mutate the VDT of `table` (clone-mutate-swap; the VDT baseline has
    /// no transaction layer — the paper evaluates it for scan performance).
    pub fn with_vdt_mut(&self, table: &str, f: impl FnOnce(&mut Vdt)) {
        let mut tables = self.tables.write();
        let entry = tables.get_mut(table).unwrap();
        let mut v = (*entry.vdt).clone();
        f(&mut v);
        entry.vdt = Arc::new(v);
    }
}

/// A consistent, immutable multi-table view for query execution.
pub struct ReadView {
    tables: HashMap<String, TableView>,
    pub mode: ScanMode,
    pub io: IoTracker,
    pub clock: ScanClock,
}

/// Per-table snapshot inside a [`ReadView`].
pub struct TableView {
    pub stable: Arc<StableTable>,
    pub read_pdt: Arc<Pdt>,
    pub write_pdt: Arc<Pdt>,
    pub vdt: Arc<Vdt>,
}

impl TableView {
    /// PDT layers to merge, bottom-up, skipping empty ones.
    pub fn pdt_layers(&self) -> Vec<&Pdt> {
        let mut v = Vec::with_capacity(2);
        if !self.read_pdt.is_empty() {
            v.push(&*self.read_pdt);
        }
        if !self.write_pdt.is_empty() {
            v.push(&*self.write_pdt);
        }
        v
    }
}

impl ReadView {
    pub fn table(&self, name: &str) -> &TableView {
        self.tables
            .get(name)
            .unwrap_or_else(|| panic!("unknown table {name}"))
    }

    /// Column index by name.
    pub fn col(&self, table: &str, column: &str) -> usize {
        self.table(table).stable.schema().col(column)
    }

    /// Visible row count of `table` under this view.
    pub fn visible_rows(&self, name: &str) -> u64 {
        let t = self.table(name);
        let base = t.stable.row_count() as i64;
        let delta = match self.mode {
            ScanMode::Clean => 0,
            ScanMode::Pdt => t.read_pdt.delta_total() + t.write_pdt.delta_total(),
            ScanMode::Vdt => t.vdt.delta_total(),
        };
        (base + delta) as u64
    }

    /// Full-table scan with projection (column indices).
    pub fn scan(&self, table: &str, proj: Vec<usize>) -> TableScan<'_> {
        self.scan_ranged(table, proj, ScanBounds::default())
    }

    /// Ranged scan over inclusive sort-key prefix bounds (sparse-index
    /// assisted).
    pub fn scan_ranged(
        &self,
        table: &str,
        proj: Vec<usize>,
        bounds: ScanBounds,
    ) -> TableScan<'_> {
        let t = self.table(table);
        let delta = match self.mode {
            ScanMode::Clean => DeltaLayers::None,
            ScanMode::Pdt => DeltaLayers::Pdt(t.pdt_layers()),
            ScanMode::Vdt => DeltaLayers::Vdt(&t.vdt),
        };
        TableScan::ranged(
            &t.stable,
            delta,
            proj,
            bounds,
            self.io.clone(),
            self.clock.clone(),
        )
    }

    /// Scan projecting columns by name (plan-writing convenience).
    pub fn scan_cols(&self, table: &str, cols: &[&str]) -> TableScan<'_> {
        let schema = self.table(table).stable.schema();
        let proj = cols.iter().map(|c| schema.col(c)).collect();
        self.scan(table, proj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::ValueType;
    use exec::run_to_rows;

    fn inventory_db() -> Database {
        let db = Database::new();
        let schema = Schema::from_pairs(&[
            ("store", ValueType::Str),
            ("prod", ValueType::Str),
            ("new", ValueType::Bool),
            ("qty", ValueType::Int),
        ]);
        let rows: Vec<Tuple> = [
            ("London", "chair", false, 30i64),
            ("London", "stool", false, 10),
            ("London", "table", false, 20),
            ("Paris", "rug", false, 1),
            ("Paris", "stool", false, 5),
        ]
        .iter()
        .map(|(s, p, n, q)| {
            vec![
                Value::from(*s),
                Value::from(*p),
                Value::from(*n),
                Value::from(*q),
            ]
        })
        .collect();
        db.create_table(
            TableMeta::new("inventory", schema, vec![0, 1]),
            TableOptions {
                block_rows: 2,
                compressed: true,
            },
            rows,
        )
        .unwrap();
        db
    }

    fn all_rows(db: &Database, mode: ScanMode) -> Vec<Tuple> {
        let view = db.read_view(mode);
        let mut scan = view.scan("inventory", vec![0, 1, 2, 3]);
        run_to_rows(&mut scan)
    }

    #[test]
    fn create_and_scan() {
        let db = inventory_db();
        assert_eq!(all_rows(&db, ScanMode::Clean).len(), 5);
        assert_eq!(db.row_count("inventory", ScanMode::Pdt), 5);
    }

    #[test]
    fn paper_batches_through_engine() {
        let db = inventory_db();
        // BATCH1
        let mut t = db.begin();
        for (s, p, q) in [("Berlin", "table", 10i64), ("Berlin", "cloth", 5), ("Berlin", "chair", 20)] {
            t.insert(
                "inventory",
                vec![s.into(), p.into(), true.into(), q.into()],
            )
            .unwrap();
        }
        t.commit().unwrap();
        let rows = all_rows(&db, ScanMode::Pdt);
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0][1], Value::from("chair")); // Berlin chair first

        // BATCH2
        let mut t = db.begin();
        use exec::expr::{col, lit};
        t.update_where(
            "inventory",
            col(0).eq(lit("Berlin")).and(col(1).eq(lit("cloth"))),
            vec![(3, lit(1i64))],
        )
        .unwrap();
        t.update_where(
            "inventory",
            col(0).eq(lit("London")).and(col(1).eq(lit("stool"))),
            vec![(3, lit(9i64))],
        )
        .unwrap();
        t.delete_where(
            "inventory",
            col(0).eq(lit("Berlin")).and(col(1).eq(lit("table"))),
        )
        .unwrap();
        t.delete_where(
            "inventory",
            col(0).eq(lit("Paris")).and(col(1).eq(lit("rug"))),
        )
        .unwrap();
        t.commit().unwrap();

        // BATCH3
        let mut t = db.begin();
        for (s, p) in [("Paris", "rack"), ("London", "rack"), ("Berlin", "rack")] {
            t.insert(
                "inventory",
                vec![s.into(), p.into(), true.into(), 4i64.into()],
            )
            .unwrap();
        }
        t.commit().unwrap();

        // Figure 13
        let rows = all_rows(&db, ScanMode::Pdt);
        let keys: Vec<(String, String)> = rows
            .iter()
            .map(|r| (r[0].as_str().to_string(), r[1].as_str().to_string()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("Berlin".into(), "chair".into()),
                ("Berlin".into(), "cloth".into()),
                ("Berlin".into(), "rack".into()),
                ("London".into(), "chair".into()),
                ("London".into(), "rack".into()),
                ("London".into(), "stool".into()),
                ("London".into(), "table".into()),
                ("Paris".into(), "rack".into()),
                ("Paris".into(), "stool".into()),
            ]
        );
    }

    #[test]
    fn duplicate_key_rejected() {
        let db = inventory_db();
        let mut t = db.begin();
        let err = t
            .insert(
                "inventory",
                vec!["London".into(), "chair".into(), true.into(), 1i64.into()],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey { .. }));
        t.abort();
    }

    #[test]
    fn checkpoint_preserves_view_and_resets_layers() {
        let db = inventory_db();
        let mut t = db.begin();
        t.insert(
            "inventory",
            vec!["Oslo".into(), "desk".into(), true.into(), 2i64.into()],
        )
        .unwrap();
        t.delete_where(
            "inventory",
            exec::expr::col(1).eq(exec::expr::lit("rug")),
        )
        .unwrap();
        t.commit().unwrap();
        let before = all_rows(&db, ScanMode::Pdt);
        assert!(db.checkpoint("inventory").unwrap());
        let after = all_rows(&db, ScanMode::Pdt);
        assert_eq!(before, after);
        // clean scan of the new image equals the merged view
        assert_eq!(all_rows(&db, ScanMode::Clean), before);
    }

    #[test]
    fn vdt_path_matches_pdt_path() {
        let db = inventory_db();
        // same updates on both structures
        let mut t = db.begin();
        t.insert(
            "inventory",
            vec!["Berlin".into(), "rack".into(), true.into(), 4i64.into()],
        )
        .unwrap();
        t.update_where(
            "inventory",
            exec::expr::col(1).eq(exec::expr::lit("rug")),
            vec![(3, exec::expr::lit(7i64))],
        )
        .unwrap();
        t.delete_where(
            "inventory",
            exec::expr::col(1).eq(exec::expr::lit("table")),
        )
        .unwrap();
        t.commit().unwrap();

        db.with_vdt_mut("inventory", |v| {
            v.insert(vec!["Berlin".into(), "rack".into(), true.into(), 4i64.into()]);
            v.modify(
                &["Paris".into(), "rug".into(), false.into(), 1i64.into()],
                3,
                Value::Int(7),
            );
            v.delete(&["London".into(), "table".into()]);
        });

        assert_eq!(all_rows(&db, ScanMode::Pdt), all_rows(&db, ScanMode::Vdt));
    }

    #[test]
    fn flush_threshold_policy() {
        let db = inventory_db();
        assert!(!db.maybe_flush("inventory", usize::MAX));
        let mut t = db.begin();
        t.insert(
            "inventory",
            vec!["Ams".into(), "x".into(), true.into(), 1i64.into()],
        )
        .unwrap();
        t.commit().unwrap();
        assert!(db.maybe_flush("inventory", 0));
        // view unchanged after flush
        assert_eq!(all_rows(&db, ScanMode::Pdt).len(), 6);
    }

    #[test]
    fn sort_key_update_is_delete_plus_insert() {
        let db = inventory_db();
        let mut t = db.begin();
        // rename London/table -> London/bench (SK column!)
        t.update_where(
            "inventory",
            exec::expr::col(1).eq(exec::expr::lit("table")),
            vec![(1, exec::expr::lit("bench"))],
        )
        .unwrap();
        t.commit().unwrap();
        let rows = all_rows(&db, ScanMode::Pdt);
        let prods: Vec<&str> = rows.iter().map(|r| r[1].as_str()).collect();
        assert!(prods.contains(&"bench") && !prods.contains(&"table"));
        // order maintained: bench sorts before chair
        assert_eq!(rows[0][1].as_str(), "bench");
        assert_eq!(rows.len(), 5);
    }
}
