//! # Mini column-store DBMS
//!
//! Ties the substrates together into the system the paper evaluates:
//! ordered compressed columnar tables ([`columnar`]), differential updates
//! buffered in a per-table update structure behind the [`DeltaStore`]
//! trait — positional PDTs ([`pdt`]) under snapshot-isolation transactions
//! ([`txn`]), the value-based VDT baseline ([`vdt`]), or the classic
//! copy-on-write row-store baseline ([`rowstore`]) — and scans/queries
//! through the block-oriented executor ([`exec`]).
//!
//! Every table picks its update structure at creation time
//! ([`TableOptions::policy`]); DML, commit, WAL durability, flushing and
//! checkpointing then flow through one API regardless of the structure:
//!
//! ```text
//! let db = Database::new();
//! db.create_table(meta, TableOptions::default().with_policy(UpdatePolicy::Vdt), rows)?;
//! let mut txn = db.begin();           // same transactions for PDT and VDT
//! txn.append("t", batch)?;            // batch-first writes: one scan,
//! txn.delete_rids("t", &rids)?;       // one staged op, one WAL entry
//! txn.update_col("t", &rids, 2, new_values)?;   //   per statement
//! txn.commit()?;
//! let view = db.read_view();          // scans merge the table's own deltas
//! db.checkpoint("t")?;                // same checkpoint for either backend
//! ```
//!
//! The paper's Figure-19 "no-updates" bars come from [`Database::clean_view`],
//! which scans the stable images only.
//!
//! DML follows the paper's flows: inserts locate their RID with a ranged
//! scan on the sort key ("SELECT rid WHERE SK > sk ORDER BY rid LIMIT 1"),
//! resolve SIDs against ghosts via `SkRidToSid`, and record updates in the
//! transaction's private staging area; deletes and updates scan for victims
//! and fold positionally. Sort-key-modifying updates are rewritten as
//! delete + insert (§2.1).

#![warn(missing_docs)]

pub mod batch;
pub mod compaction;
pub mod delta;
pub mod dml;
pub mod maintenance;
pub mod partition;
pub mod rowstore;
pub mod testkit;

pub use batch::DmlBatch;
pub use compaction::{
    BlockHeat, CompactionConfig, CompactionReport, CompactionStep, PartitionHeat,
};
pub use delta::{
    CheckpointPin, DeltaSnapshot, DeltaStore, DeltaTxn, PdtStore, UpdatePolicy, VdtStore,
    ALL_POLICIES,
};
pub use dml::{Appender, DbTxn};
pub use maintenance::{
    MaintenanceConfig, MaintenancePartitionStats, MaintenanceScheduler, MaintenanceStats,
};
pub use partition::PartitionSpec;
pub use rowstore::RowStore;
pub use txn::wal::WalStats;

use columnar::{
    ColumnarError, ImageStore, IoStats, IoTracker, Schema, StableTable, TableMeta, Tuple, Value,
};
use exec::{
    DeltaLayers, Operator, ParallelUnionScan, ScanBounds, ScanClock, ScanSegment, TableScan,
};
use parking_lot::RwLock;
use partition::{PartitionEntry, TableEntry};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use txn::{TxnError, TxnManager};

/// Engine-level errors.
#[derive(Debug)]
pub enum DbError {
    /// No table with that name.
    UnknownTable(String),
    /// No such column in the table.
    UnknownColumn {
        /// The table scanned.
        table: String,
        /// The unresolved column reference.
        column: String,
    },
    /// An insert collided with an existing sort key.
    DuplicateKey {
        /// The table written.
        table: String,
        /// The duplicated sort-key values.
        key: Vec<Value>,
    },
    /// Write-write conflict detected by a value-addressed delta store.
    Conflict {
        /// The table written.
        table: String,
        /// What conflicted.
        reason: String,
    },
    /// A write batch does not fit the table: wrong arity, a column of the
    /// wrong type, mismatched rid/value counts, or an out-of-range rid.
    /// Raised at the API boundary, before anything is staged — shape bugs
    /// never reach (let alone panic inside) the delta structures.
    BatchShape {
        /// The table written.
        table: String,
        /// What about the batch does not fit.
        detail: String,
    },
    /// An invalid [`PartitionSpec`] (unsorted/duplicate split points, zero
    /// partitions), or a WAL/caller referenced a partition the table does
    /// not have.
    Partition {
        /// The table addressed.
        table: String,
        /// What about the partitioning is invalid.
        detail: String,
    },
    /// A storage-layer error surfaced through the engine.
    Storage(ColumnarError),
    /// A transaction-layer error surfaced through the engine.
    Txn(TxnError),
    /// An I/O error from the WAL or image store.
    Io(std::io::Error),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table {t}"),
            DbError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column} in table {table}")
            }
            DbError::DuplicateKey { table, key } => {
                write!(f, "duplicate sort key {key:?} in table {table}")
            }
            DbError::Conflict { table, reason } => {
                write!(f, "write-write conflict on table {table}: {reason}")
            }
            DbError::BatchShape { table, detail } => {
                write!(f, "batch does not fit table {table}: {detail}")
            }
            DbError::Partition { table, detail } => {
                write!(f, "bad partitioning of table {table}: {detail}")
            }
            DbError::Storage(e) => write!(f, "storage error: {e}"),
            DbError::Txn(e) => write!(f, "transaction error: {e}"),
            DbError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Storage(e) => Some(e),
            DbError::Txn(e) => Some(e),
            DbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ColumnarError> for DbError {
    fn from(e: ColumnarError) -> Self {
        DbError::Storage(e)
    }
}

impl From<TxnError> for DbError {
    fn from(e: TxnError) -> Self {
        DbError::Txn(e)
    }
}

/// Physical layout plus update-handling policy of a table.
///
/// Extends the storage options of [`columnar::TableOptions`] with the
/// engine-level choice of differential structure, replacing the old
/// per-scan `ScanMode` plumbing: the policy is a property of the *table*,
/// fixed at creation, and every scan of the table merges the structure the
/// table is maintained by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableOptions {
    /// Rows per block (the scan/merge granularity). Default 4096.
    pub block_rows: usize,
    /// Whether to apply lightweight compression (paper: server runs
    /// compressed, workstation runs non-compressed).
    pub compressed: bool,
    /// Which update structure maintains the table. Default PDT.
    pub policy: UpdatePolicy,
    /// Write-layer byte budget **per partition**: the background scheduler
    /// flushes a partition's write-optimised delta layer into its
    /// read-optimised one once it exceeds this (the paper's Propagate
    /// policy — keep the Write-PDT CPU-cache-sized). Default 1 MiB.
    pub flush_threshold_bytes: usize,
    /// Total delta byte budget **per partition**: the background scheduler
    /// checkpoints a partition into a fresh stable slice once its
    /// committed delta layers exceed this. Default 64 MiB.
    pub checkpoint_threshold_bytes: usize,
    /// Horizontal range partitioning ([`PartitionSpec::None`] — the
    /// default — keeps one partition and is behaviorally identical to the
    /// pre-partitioning engine).
    pub partitions: PartitionSpec,
    /// Heat-driven incremental compaction: fold delta into *sub-partition*
    /// block ranges chosen by the [`compaction`] planner, instead of (not
    /// as well as — full checkpoints still run over budget) rewriting
    /// whole partitions. Disabled by default.
    pub compaction: CompactionConfig,
    /// Slow-query log threshold: commits touching this table that take
    /// longer emit one `slow.commit` trace event (with partition count,
    /// WAL entries, and the durable-wait share) when tracing is enabled.
    /// `None` (the default) disables the check.
    pub slow_commit_threshold: Option<std::time::Duration>,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions {
            block_rows: 4096,
            compressed: true,
            policy: UpdatePolicy::Pdt,
            flush_threshold_bytes: 1 << 20,
            checkpoint_threshold_bytes: 64 << 20,
            partitions: PartitionSpec::None,
            compaction: CompactionConfig::default(),
            slow_commit_threshold: None,
        }
    }
}

impl TableOptions {
    /// Set the update structure maintaining the table.
    pub fn with_policy(mut self, policy: UpdatePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the rows-per-block scan/merge granularity.
    pub fn with_block_rows(mut self, block_rows: usize) -> Self {
        self.block_rows = block_rows;
        self
    }

    /// Enable or disable lightweight storage compression.
    pub fn with_compression(mut self, compressed: bool) -> Self {
        self.compressed = compressed;
        self
    }

    /// Set the background-flush byte budget of the write-optimised layer.
    pub fn with_flush_threshold(mut self, bytes: usize) -> Self {
        self.flush_threshold_bytes = bytes;
        self
    }

    /// Set the background-checkpoint byte budget of the whole delta.
    pub fn with_checkpoint_threshold(mut self, bytes: usize) -> Self {
        self.checkpoint_threshold_bytes = bytes;
        self
    }

    /// Range-partition the table ([`PartitionSpec::Count`] for equi-depth
    /// splits over the bulk load, [`PartitionSpec::SplitPoints`] for
    /// explicit ones).
    pub fn with_partitions(mut self, partitions: PartitionSpec) -> Self {
        self.partitions = partitions;
        self
    }

    /// Configure heat-driven incremental compaction (see
    /// [`CompactionConfig`]).
    pub fn with_compaction(mut self, compaction: CompactionConfig) -> Self {
        self.compaction = compaction;
        self
    }

    /// Set the slow-commit trace threshold (see
    /// [`TableOptions::slow_commit_threshold`]).
    pub fn with_slow_commit_threshold(mut self, threshold: std::time::Duration) -> Self {
        self.slow_commit_threshold = Some(threshold);
        self
    }

    /// The storage-level subset.
    pub fn storage(&self) -> columnar::TableOptions {
        columnar::TableOptions {
            block_rows: self.block_rows,
            compressed: self.compressed,
        }
    }
}

/// The database: range-partitioned tables, each partition paired with its
/// own stable slice and update structure, plus the transaction manager
/// that sequences all commits.
pub struct Database {
    pub(crate) txn_mgr: Arc<TxnManager>,
    pub(crate) tables: RwLock<HashMap<String, TableEntry>>,
    /// Persisted compressed checkpoint images (`None`: checkpoints fold in
    /// memory only and recovery replays the full WAL, the pre-image
    /// behavior).
    images: Option<Arc<ImageStore>>,
    /// Test seam: make the next checkpoint fail *after* its image publish
    /// (manifest swapped) but *before* its WAL marker — the crash window
    /// the recovery protocol must tolerate.
    crash_after_publish: std::sync::atomic::AtomicBool,
    io: IoTracker,
    clock: ScanClock,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// In-memory database without a WAL.
    pub fn new() -> Self {
        Database {
            txn_mgr: Arc::new(TxnManager::new()),
            tables: RwLock::new(HashMap::new()),
            images: None,
            crash_after_publish: std::sync::atomic::AtomicBool::new(false),
            io: IoTracker::new(),
            clock: ScanClock::new(),
        }
    }

    /// Database whose commits append to a WAL at `path`.
    pub fn with_wal(path: &Path) -> Result<Self, DbError> {
        Ok(Database {
            txn_mgr: Arc::new(TxnManager::with_wal(path).map_err(DbError::Io)?),
            tables: RwLock::new(HashMap::new()),
            images: None,
            crash_after_publish: std::sync::atomic::AtomicBool::new(false),
            io: IoTracker::new(),
            clock: ScanClock::new(),
        })
    }

    /// Database with full durable storage: commits append to the WAL at
    /// `wal`, and every checkpoint additionally persists its fresh stable
    /// slice as a compressed image under `image_dir` (created if needed).
    /// [`Database::recover_from`] then rebuilds checkpointed partitions
    /// from their images instead of losing the folded history.
    pub fn with_storage(wal: &Path, image_dir: &Path) -> Result<Self, DbError> {
        let mut db = Self::with_wal(wal)?;
        db.images = Some(Arc::new(ImageStore::open(image_dir)?));
        Ok(db)
    }

    /// The image store behind this database, when opened with
    /// [`Database::with_storage`].
    pub fn image_store(&self) -> Option<&ImageStore> {
        self.images.as_deref()
    }

    /// Test seam: arm (or disarm) a simulated crash in the next checkpoint,
    /// between its image publish — manifest already swapped — and its WAL
    /// marker append. The checkpoint returns an I/O error and rolls its pin
    /// back; dropping the database afterwards models the process dying
    /// inside the window.
    pub fn crash_after_image_publish(&self, arm: bool) {
        self.crash_after_publish
            .store(arm, std::sync::atomic::Ordering::SeqCst);
    }

    /// Bulk-load a table (rows need not be pre-sorted). The update policy
    /// in `opts` fixes which differential structure maintains the table;
    /// its [`PartitionSpec`] fixes how the table is range-partitioned —
    /// each partition gets its own stable slice and its own instance of
    /// the update structure.
    pub fn create_table(
        &self,
        meta: TableMeta,
        opts: TableOptions,
        rows: Vec<Tuple>,
    ) -> Result<(), DbError> {
        let name = meta.name.clone();
        // '#' is reserved for the partition registry names PDT partitions
        // use in the transaction manager ("table#p"); allowing it in table
        // names would let "t#1" silently alias partition 1 of "t"
        if name.contains('#') {
            return Err(DbError::Partition {
                table: name,
                detail: "table names may not contain '#' (reserved for partition registry names)"
                    .into(),
            });
        }
        let schema = meta.schema.clone();
        let sk = meta.sort_key.cols().to_vec();
        let sk_types: Vec<columnar::ValueType> = sk.iter().map(|&c| schema.vtype(c)).collect();
        let splits = partition::derive_splits(&name, &opts.partitions, &rows, &sk, &sk_types)?;
        let groups = partition::split_rows(rows, &splits, &sk);
        let nparts = groups.len();
        let mut parts = Vec::with_capacity(nparts);
        for (p, part_rows) in groups.into_iter().enumerate() {
            let stable = StableTable::bulk_load_unsorted(meta.clone(), opts.storage(), part_rows)?;
            let delta: Arc<dyn DeltaStore> = match opts.policy {
                UpdatePolicy::Pdt => {
                    let mgr_name = partition::pdt_table_name(&name, p, nparts);
                    self.txn_mgr
                        .register_table(&mgr_name, schema.clone(), sk.clone());
                    Arc::new(PdtStore::new(self.txn_mgr.clone(), mgr_name))
                }
                UpdatePolicy::Vdt => {
                    Arc::new(VdtStore::new(name.clone(), schema.clone(), sk.clone()))
                }
                UpdatePolicy::RowStore => {
                    Arc::new(RowStore::new(name.clone(), schema.clone(), sk.clone()))
                }
            };
            parts.push(PartitionEntry::new(Arc::new(stable), delta, &self.io));
        }
        self.tables.write().insert(
            name,
            TableEntry {
                parts,
                splits,
                opts,
            },
        );
        Ok(())
    }

    /// Shared I/O counters (per-database).
    pub fn io(&self) -> &IoTracker {
        &self.io
    }

    /// Shared scan-time clock.
    pub fn clock(&self) -> &ScanClock {
        &self.clock
    }

    /// Run `f` against the table's entry under the map's read lock.
    fn with_entry<T>(&self, table: &str, f: impl FnOnce(&TableEntry) -> T) -> Result<T, DbError> {
        let tables = self.tables.read();
        let e = tables
            .get(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        Ok(f(e))
    }

    /// Stable slice + delta store + maintenance mutex of one partition.
    #[allow(clippy::type_complexity)]
    fn partition_entry(
        &self,
        table: &str,
        p: usize,
    ) -> Result<
        (
            Arc<StableTable>,
            Arc<dyn DeltaStore>,
            Arc<parking_lot::Mutex<()>>,
        ),
        DbError,
    > {
        self.with_entry(table, |e| {
            e.parts
                .get(p)
                .map(|pe| (pe.stable.clone(), pe.delta.clone(), pe.maint.clone()))
        })?
        .ok_or_else(|| DbError::Partition {
            table: table.to_string(),
            detail: format!("partition {p} out of range"),
        })
    }

    /// Names of every table (maintenance-scheduler sweep order is sorted
    /// for determinism).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// The creation-time options of a table (maintenance budgets included).
    pub fn options(&self, table: &str) -> Result<TableOptions, DbError> {
        self.with_entry(table, |e| e.opts.clone())
    }

    /// Number of partitions of a table (1 unless range-partitioned).
    pub fn partition_count(&self, table: &str) -> Result<usize, DbError> {
        self.with_entry(table, |e| e.parts.len())
    }

    /// The resolved sort-key split points of a table (empty for a
    /// single-partition table) — `k` points ⇒ `k + 1` partitions. Useful
    /// to rebuild an identically partitioned table (e.g. for recovery,
    /// whose WAL partition tags are relative to these splits).
    pub fn partition_splits(&self, table: &str) -> Result<Vec<Vec<Value>>, DbError> {
        self.with_entry(table, |e| e.splits.clone())
    }

    /// Total bytes held by a table's committed delta layers, summed over
    /// partitions.
    pub fn delta_bytes(&self, table: &str) -> Result<usize, DbError> {
        self.with_entry(table, |e| {
            e.parts.iter().map(|p| p.delta.delta_bytes()).sum()
        })
    }

    /// Bytes held by one partition's committed delta layers (the
    /// per-partition checkpoint budget input).
    pub fn delta_bytes_partition(&self, table: &str, p: usize) -> Result<usize, DbError> {
        Ok(self.partition_entry(table, p)?.1.delta_bytes())
    }

    /// Stored bytes of one partition's stable image (compressed blocks as
    /// held in memory) — the write cost of rewriting it wholesale.
    pub fn stable_bytes_partition(&self, table: &str, p: usize) -> Result<u64, DbError> {
        Ok(self.partition_entry(table, p)?.0.total_bytes())
    }

    /// Replay the WAL at `path` into the tables' update structures (after
    /// `create_table` with the *same split points*). When this database
    /// has an image store, each partition whose covering checkpoint marker
    /// references a persisted image is first rebuilt from that image — the
    /// folded history is *not* replayed (the marker's commits are skipped)
    /// and *not* lost; without one, markers still skip their covered
    /// commits (the pre-image behavior, which forfeits folded history).
    /// Returns the recovered commit sequence.
    pub fn recover_from(&self, path: &Path) -> Result<u64, DbError> {
        let _commit = self.txn_mgr.commit_guard();
        let all = txn::wal::Wal::read_all(path).map_err(DbError::Io)?;
        if let Some(images) = &self.images {
            let markers = txn::wal::checkpoint_markers(&all);
            let mut tables = self.tables.write();
            for (name, parts) in &markers {
                let Some(entry) = tables.get_mut(name) else {
                    continue;
                };
                for (&p, marker) in parts {
                    let Some(image_seq) = marker.image_seq else {
                        continue;
                    };
                    let Some(pe) = entry.parts.get_mut(p as usize) else {
                        return Err(DbError::Partition {
                            table: name.clone(),
                            detail: format!(
                                "checkpoint marker references partition {p}, table has {}",
                                entry.parts.len()
                            ),
                        });
                    };
                    if let Some((stable, prov)) =
                        images.load_with_provenance(name, p, image_seq, &self.io)?
                    {
                        pe.heat.reset(stable.num_blocks());
                        *pe.provenance.lock() = Some(prov);
                        pe.stable = Arc::new(stable);
                        obs::event!(
                            obs::TraceKind::RecoveryImageAdopt,
                            table: obs::trace::intern(name),
                            part: p,
                            seq: image_seq,
                            a: marker.residual.len() as u64,
                        );
                        // A range-scoped marker's image holds only the
                        // folded window; the covered commits' remainder
                        // rides in the marker itself, rebased onto this
                        // stable — replay it before the surviving commits.
                        if !marker.residual.is_empty() {
                            pe.delta.replay(&marker.residual);
                        }
                    }
                }
            }
        }
        let records = txn::wal::effective_commits(all);
        let tables = self.tables.read();
        let mut last = 0;
        // Per-(table, partition) replay tallies: (entries, commits, last
        // sequence), aggregated into one trace event each.
        let mut replayed: HashMap<(String, u32), (u64, u64, u64)> = HashMap::new();
        for rec in records {
            last = rec.seq();
            if let txn::wal::WalRecord::Commit {
                tables: touched, ..
            } = rec
            {
                for (table, part, entries) in touched {
                    let e = tables
                        .get(&table)
                        .ok_or_else(|| DbError::UnknownTable(table.clone()))?;
                    let pe = e
                        .parts
                        .get(part as usize)
                        .ok_or_else(|| DbError::Partition {
                            table: table.clone(),
                            detail: format!(
                                "WAL references partition {part}, table has {}",
                                e.parts.len()
                            ),
                        })?;
                    pe.delta.replay(&entries);
                    if obs::trace::enabled() {
                        let t = replayed.entry((table.clone(), part)).or_default();
                        t.0 += entries.len() as u64;
                        t.1 += 1;
                        t.2 = last;
                    }
                }
            }
        }
        for ((table, part), (entries, commits, seq)) in replayed {
            obs::event!(
                obs::TraceKind::RecoveryWalReplay,
                table: obs::trace::intern(&table),
                part: part,
                seq: seq,
                a: entries,
                b: commits,
            );
        }
        self.txn_mgr.finish_recovery(last);
        Ok(last)
    }

    /// Cumulative WAL append statistics — how many commit/checkpoint
    /// records were logged and how many physical append windows (one
    /// write+flush each) carried them. Group commit shows up as
    /// `commits > appends`. `None` without a WAL.
    pub fn wal_stats(&self) -> Option<txn::wal::WalStats> {
        self.txn_mgr.wal_stats()
    }

    /// Pour the engine's live counters into a unified [`obs::Registry`]:
    /// block I/O, the merge-scan clock, WAL totals (when a WAL is
    /// attached), the transaction sequence, and per-table gauges labelled
    /// by table name. `server::Registry::snapshot` composes this with the
    /// serving-layer counters; embedders without a server read the same
    /// names via [`Database::metrics`].
    pub fn pour_metrics(&self, reg: &obs::Registry) {
        let io = self.io.stats();
        reg.counter("db.io.blocks_read", &[]).add(io.blocks_read);
        reg.counter("db.io.bytes_read", &[]).add(io.bytes_read);
        reg.gauge("db.scan.merge_ns", &[]).set(self.clock.nanos());
        reg.gauge("db.txn.seq", &[]).set(self.txn_mgr.seq());
        if let Some(w) = self.wal_stats() {
            reg.counter("db.wal.commits", &[]).add(w.commits);
            reg.counter("db.wal.checkpoints", &[]).add(w.checkpoints);
            reg.counter("db.wal.appends", &[]).add(w.appends);
            reg.gauge("db.wal.pending_records", &[])
                .set(self.txn_mgr.wal_pending_records());
        }
        let tables = self.tables.read();
        for (name, e) in tables.iter() {
            let labels: &[(&str, &str)] = &[("table", name.as_str())];
            reg.gauge("db.table.partitions", labels)
                .set(e.parts.len() as u64);
            reg.gauge("db.table.delta_bytes", labels)
                .set(e.parts.iter().map(|p| p.delta.delta_bytes() as u64).sum());
            reg.counter("db.table.write_bytes", labels)
                .add(e.parts.iter().map(|p| p.delta.write_bytes() as u64).sum());
        }
    }

    /// One coherent snapshot of every engine metric ([`Database::pour_metrics`]
    /// into a fresh registry) — exposition-ready via
    /// [`obs::MetricsSnapshot::to_text`] / [`obs::MetricsSnapshot::to_json`].
    pub fn metrics(&self) -> obs::MetricsSnapshot {
        let reg = obs::Registry::new();
        self.pour_metrics(&reg);
        reg.snapshot()
    }

    /// Test seam: suppress (or re-enable) group-commit flush leadership so
    /// concurrently arriving commit records deterministically pile into
    /// one append window. See `txn::wal::GroupWal::hold_flushes`.
    pub fn wal_hold_flushes(&self, hold: bool) {
        self.txn_mgr.wal_hold_flushes(hold);
    }

    /// Commit/checkpoint records enqueued but not yet durable (0 without
    /// a WAL).
    pub fn wal_pending_records(&self) -> u64 {
        self.txn_mgr.wal_pending_records()
    }

    /// Schema of a table.
    pub fn schema(&self, table: &str) -> Result<Schema, DbError> {
        self.with_entry(table, |e| e.parts[0].stable.schema().clone())
    }

    /// Current stable image of a **single-partition** table. Errors with
    /// [`DbError::Partition`] when the table is range-partitioned — one
    /// slice is not the whole image; iterate
    /// [`Database::stable_partition`] over
    /// [`Database::partition_count`] instead. (Replaces the old
    /// `Database::stable`, which silently returned partition 0.)
    pub fn stable_single(&self, table: &str) -> Result<Arc<StableTable>, DbError> {
        let parts = self.partition_count(table)?;
        if parts != 1 {
            return Err(DbError::Partition {
                table: table.to_string(),
                detail: format!(
                    "stable_single on a table with {parts} partitions; \
                     use stable_partition per partition"
                ),
            });
        }
        self.stable_partition(table, 0)
    }

    /// Current stable slice of one partition.
    pub fn stable_partition(&self, table: &str, p: usize) -> Result<Arc<StableTable>, DbError> {
        Ok(self.partition_entry(table, p)?.0)
    }

    /// The update policy of a table.
    pub fn policy(&self, table: &str) -> Result<UpdatePolicy, DbError> {
        self.with_entry(table, |e| e.parts[0].delta.policy())
    }

    /// Total visible row count under a fresh snapshot.
    pub fn row_count(&self, table: &str) -> Result<u64, DbError> {
        self.read_view().visible_rows(table)
    }

    /// Open a consistent read-only view for query execution; scans merge
    /// each table's committed deltas.
    pub fn read_view(&self) -> ReadView {
        self.view_inner(true)
    }

    /// A view over the stable images only — the paper's "no-updates" runs
    /// (and clean verification scans after a checkpoint).
    pub fn clean_view(&self) -> ReadView {
        self.view_inner(false)
    }

    fn view_inner(&self, with_deltas: bool) -> ReadView {
        // the commit guard spans the per-table snapshot captures, so the
        // view is one consistent cut across tables and delta structures
        let _commit = self.txn_mgr.commit_guard();
        let tables = self.tables.read();
        let views = tables
            .iter()
            .map(|(name, e)| {
                (
                    name.clone(),
                    TableView {
                        parts: e
                            .parts
                            .iter()
                            .map(|p| PartView {
                                stable: p.stable.clone(),
                                delta: with_deltas.then(|| p.delta.snapshot()),
                                heat_io: p.heat_io.clone(),
                            })
                            .collect(),
                    },
                )
            })
            .collect();
        ReadView {
            tables: views,
            io: self.io.clone(),
            clock: self.clock.clone(),
        }
    }

    /// Begin a read-write transaction (works on every table, whatever its
    /// update policy or partitioning).
    pub fn begin(&self) -> DbTxn<'_> {
        let _commit = self.txn_mgr.commit_guard();
        let (id, start_seq) = self.txn_mgr.start_txn();
        let tables = self.tables.read();
        let snaps = tables
            .iter()
            .map(|(name, e)| (name.clone(), dml::TxnTable::new(e)))
            .collect();
        DbTxn::new(self, id, start_seq, snaps)
    }

    /// Migrate every partition's write-optimised delta layer into its
    /// read-optimised one when it exceeds `threshold_bytes` (the paper's
    /// Propagate policy, applied per partition). Returns whether any
    /// partition flushed. Serialized against checkpoints of the same
    /// partition through the per-partition maintenance mutex; commits and
    /// readers are never blocked.
    pub fn maybe_flush(&self, table: &str, threshold_bytes: usize) -> Result<bool, DbError> {
        let mut any = false;
        for p in 0..self.partition_count(table)? {
            any |= self.maybe_flush_partition(table, p, threshold_bytes)?;
        }
        Ok(any)
    }

    /// [`Database::maybe_flush`] for a single partition.
    pub fn maybe_flush_partition(
        &self,
        table: &str,
        p: usize,
        threshold_bytes: usize,
    ) -> Result<bool, DbError> {
        let (_, delta, maint) = self.partition_entry(table, p)?;
        let _maint = maint.lock();
        if delta.write_bytes() > threshold_bytes {
            Ok(delta.flush())
        } else {
            Ok(false)
        }
    }

    /// Checkpoint: materialise every partition's committed deltas into
    /// fresh stable slices and retire them from the partitions' update
    /// structures. Returns whether any partition checkpointed.
    ///
    /// Each partition checkpoints independently (and the maintenance
    /// scheduler drives them independently, in parallel): the expensive
    /// stable rewrite runs *off* the commit guard against a pinned delta
    /// snapshot — commits keep landing and read views keep opening for the
    /// whole merge. Only the pin (phase 1) and the final `Arc` swap +
    /// delta reset (phase 3) take the guard; a partition-tagged WAL
    /// checkpoint marker is appended atomically with the swap so recovery
    /// replays exactly the commits the new slice does not contain.
    /// Concurrent maintenance of the same partition is serialized by the
    /// per-partition maintenance mutex.
    pub fn checkpoint(&self, table: &str) -> Result<bool, DbError> {
        self.checkpoint_observed(table, || {})
    }

    /// Checkpoint one partition (the scheduler's unit of work).
    pub fn checkpoint_partition(&self, table: &str, p: usize) -> Result<bool, DbError> {
        let mut observer: Option<fn()> = None;
        self.checkpoint_partition_observed(table, p, &mut observer)
    }

    /// [`Database::checkpoint`] with an observer invoked during phase 2 of
    /// the first partition that actually merges, while the stable rewrite
    /// runs off-lock. The closure may open views, scan, and commit
    /// transactions against this database — that those operations
    /// complete *during* a checkpoint is the non-blocking guarantee, and
    /// tests pin it down through this seam. It must not start maintenance
    /// on the same table (the per-partition maintenance mutex is held).
    pub fn checkpoint_observed(
        &self,
        table: &str,
        during_merge: impl FnOnce(),
    ) -> Result<bool, DbError> {
        let mut observer = Some(during_merge);
        let mut any = false;
        for p in 0..self.partition_count(table)? {
            any |= self.checkpoint_partition_observed(table, p, &mut observer)?;
        }
        Ok(any)
    }

    fn checkpoint_partition_observed(
        &self,
        table: &str,
        p: usize,
        during_merge: &mut Option<impl FnOnce()>,
    ) -> Result<bool, DbError> {
        let (_, delta, maint) = self.partition_entry(table, p)?;
        let _maint = maint.lock();
        // Phase 1 — pin: capture the delta to fold and the slice to fold it
        // into, one consistent cut under the commit guard.
        let (pin, stable) = {
            let _commit = self.txn_mgr.commit_guard();
            let seq = self.txn_mgr.seq();
            match delta.checkpoint_pin(seq) {
                Some(pin) => (pin, self.partition_entry(table, p)?.0),
                None => return Ok(false),
            }
        };
        let trace_table = obs::trace::enabled().then(|| obs::trace::intern(table));
        if let Some(t) = trace_table {
            obs::event!(obs::TraceKind::CheckpointPin, table: t, part: p as u32, seq: pin.seq);
        }
        let mut merge_span = match trace_table {
            Some(t) => {
                obs::span!(obs::TraceKind::CheckpointMerge, table: t, part: p as u32, seq: pin.seq)
            }
            None => obs::trace::SpanGuard::disabled(),
        };
        // Phase 2 — merge, off every lock: commits and read views proceed.
        // A failed merge must abort the pin, releasing the store's pin
        // window so the partition is ready for the next attempt.
        let fresh = match delta.checkpoint_merge(&pin, &stable, &self.io) {
            Ok(fresh) => fresh,
            Err(e) => {
                delta.checkpoint_abort(pin);
                return Err(e);
            }
        };
        if let Some(obs) = during_merge.take() {
            obs();
        }
        // Still phase 2 (off-lock): persist the fresh slice as a compressed
        // image and swap the manifest. The marker below references it; a
        // crash between here and the marker leaves a manifest entry ahead
        // of the WAL, which recovery ignores in favor of the retained
        // previous image (see `columnar::ImageStore`).
        let mut image_seq = None;
        if let (Some(images), Some(fresh)) = (&self.images, &fresh) {
            if let Err(e) = images.publish(table, p as u32, pin.seq, fresh) {
                delta.checkpoint_abort(pin);
                return Err(e.into());
            }
            image_seq = Some(pin.seq);
            if self
                .crash_after_publish
                .swap(false, std::sync::atomic::Ordering::SeqCst)
            {
                delta.checkpoint_abort(pin);
                return Err(DbError::Io(std::io::Error::other(
                    "simulated crash between image publish and checkpoint marker",
                )));
            }
        }
        merge_span.set_a(image_seq.is_some() as u64);
        drop(merge_span);
        // Phase 3 — install: marker, slice swap and delta reset, atomic
        // under the commit guard.
        {
            let _commit = self.txn_mgr.commit_guard();
            if let Err(e) = self
                .txn_mgr
                .log_checkpoint(table, p as u32, pin.seq, image_seq)
            {
                delta.checkpoint_abort(pin);
                return Err(e.into());
            }
            if let Some(fresh) = fresh {
                let mut tables = self.tables.write();
                let pe = &mut tables
                    .get_mut(table)
                    .expect("maintenance mutex pins the entry")
                    .parts[p];
                // fresh geometry: heat restarts cold, and — when the image
                // store published — every block's bytes live in this image
                pe.heat.reset(fresh.num_blocks());
                *pe.provenance.lock() =
                    image_seq.map(|seq| (0..fresh.num_blocks()).map(|j| (seq, j)).collect());
                pe.stable = Arc::new(fresh);
            }
            let seq = pin.seq;
            delta.checkpoint_install(pin);
            if let Some(t) = trace_table {
                obs::event!(obs::TraceKind::CheckpointInstall, table: t, part: p as u32, seq: seq);
            }
        }
        Ok(true)
    }

    /// Run the best-scoring planned compaction step of one partition, if
    /// any — the scheduler's incremental-maintenance unit of work between
    /// full checkpoints. Plans against the partition's current heat map
    /// with the table's [`CompactionConfig`]; returns the executed step's
    /// report, or `None` when compaction is disabled for the table,
    /// nothing scores over the configured floors, or the partition has no
    /// delta to pin.
    pub fn compact_partition(
        &self,
        table: &str,
        p: usize,
    ) -> Result<Option<CompactionReport>, DbError> {
        let cfg = self.with_entry(table, |e| e.opts.compaction)?;
        if !cfg.enabled {
            return Ok(None);
        }
        let maint = self.partition_entry(table, p)?.2;
        let _maint = maint.lock();
        // capture stable + heat under the maintenance lock: a concurrent
        // checkpoint can no longer swap the geometry the plan indexes
        let stable = self.partition_entry(table, p)?.0;
        let heat = self.with_entry(table, |e| e.parts[p].heat.clone())?;
        let steps = compaction::plan_steps(&heat.snapshot(), &stable, &cfg);
        match steps.first() {
            Some(step) => self.compact_range_locked(table, p, step.b0, step.b1),
            None => Ok(None),
        }
    }

    /// Incrementally compact stable blocks `[b0, b1)` of one partition:
    /// fold exactly the delta overlapping that range into fresh blocks
    /// spliced between the untouched neighbours, and rebase the rest of
    /// the delta onto the new image. The three-phase protocol mirrors
    /// [`Database::checkpoint_partition`] — pin under the commit guard,
    /// merge + splice + image publish off-lock, then WAL range marker +
    /// slice swap + residual install atomically under the guard — so
    /// commits and read views proceed for the whole merge. With an image
    /// store attached the published image *references* the kept blocks of
    /// the previous generation instead of rewriting their bytes. Returns
    /// `None` when the partition has no delta to pin.
    pub fn compact_range(
        &self,
        table: &str,
        p: usize,
        b0: usize,
        b1: usize,
    ) -> Result<Option<CompactionReport>, DbError> {
        let maint = self.partition_entry(table, p)?.2;
        let _maint = maint.lock();
        self.compact_range_locked(table, p, b0, b1)
    }

    fn compact_range_locked(
        &self,
        table: &str,
        p: usize,
        b0: usize,
        b1: usize,
    ) -> Result<Option<CompactionReport>, DbError> {
        let (_, delta, _) = self.partition_entry(table, p)?;
        // Phase 1 — pin: capture the delta to fold and the slice to fold
        // it into, one consistent cut under the commit guard.
        let (pin, stable) = {
            let _commit = self.txn_mgr.commit_guard();
            let seq = self.txn_mgr.seq();
            match delta.checkpoint_pin(seq) {
                Some(pin) => (pin, self.partition_entry(table, p)?.0),
                None => return Ok(None),
            }
        };
        let old_nb = stable.num_blocks();
        if b0 >= b1 || b1 > old_nb {
            delta.checkpoint_abort(pin);
            return Err(DbError::Partition {
                table: table.to_string(),
                detail: format!("compaction range [{b0}, {b1}) out of bounds ({old_nb} blocks)"),
            });
        }
        let trace_table = obs::trace::enabled().then(|| obs::trace::intern(table));
        if let Some(t) = trace_table {
            obs::event!(
                obs::TraceKind::CompactionPin,
                table: t,
                part: p as u32,
                seq: pin.seq,
                a: b0 as u64,
                b: b1 as u64,
            );
        }
        let merge_span = match trace_table {
            Some(t) => obs::span!(
                obs::TraceKind::CompactionMerge,
                table: t,
                part: p as u32,
                seq: pin.seq,
                a: b0 as u64,
                b: b1 as u64,
            ),
            None => obs::trace::SpanGuard::disabled(),
        };
        let range = delta::CompactRange {
            b0,
            b1,
            s0: stable.block_range(b0).0,
            s1: stable.block_range(b1 - 1).1,
            row_count: stable.row_count(),
            lo: (b0 > 0).then(|| stable.block_sk_bounds(b0 - 1).1.to_vec()),
            hi: (b1 < old_nb).then(|| stable.block_sk_bounds(b1 - 1).1.to_vec()),
        };
        let heat = self.with_entry(table, |e| e.parts[p].heat.clone())?;
        let delta_bytes_folded: u64 = heat
            .snapshot()
            .get(b0..b1)
            .map_or(0, |s| s.iter().map(|h| h.delta_bytes).sum());
        // Phase 2 — merge + splice, off every lock: commits and read views
        // proceed. A failed merge aborts the pin, leaving the partition
        // ready for the next attempt.
        let mut merge = match delta.checkpoint_merge_range(&pin, &stable, &range, &self.io) {
            Ok(m) => m,
            Err(e) => {
                delta.checkpoint_abort(pin);
                return Err(e);
            }
        };
        let residual_entries = std::mem::take(&mut merge.residual_entries);
        let fresh = match stable.splice_blocks(b0, b1, &merge.cols) {
            Ok(t) => t,
            Err(e) => {
                delta.checkpoint_abort(pin);
                return Err(e.into());
            }
        };
        let new_nb = fresh.num_blocks();
        // fresh blocks replacing [b0, b1) — the splice may change the
        // range's row count, never the kept prefix/suffix block counts
        let merged_nb = new_nb - (old_nb - (b1 - b0));
        let stable_bytes_total: u64 = (0..old_nb)
            .map(|b| compaction::block_stored_bytes(&stable, b))
            .sum();
        let stable_bytes_written: u64 = (b0..b0 + merged_nb)
            .map(|b| compaction::block_stored_bytes(&fresh, b))
            .sum();
        // Still phase 2 (off-lock): publish the spliced slice as an image
        // whose kept blocks are *references* into the generations that
        // actually wrote their bytes (provenance chains are collapsed, so
        // every reference points at its origin image).
        let mut image_seq = None;
        let mut new_prov: Option<Vec<(u64, usize)>> = None;
        if let Some(images) = &self.images {
            let old_prov = self
                .with_entry(table, |e| e.parts[p].provenance.lock().clone())?
                .filter(|op| op.len() == old_nb);
            let prov: Vec<Option<(u64, usize)>> = match &old_prov {
                Some(op) => (0..new_nb)
                    .map(|i| {
                        if i < b0 {
                            Some(op[i])
                        } else if i < b0 + merged_nb {
                            None
                        } else {
                            Some(op[b1 + (i - b0 - merged_nb)])
                        }
                    })
                    .collect(),
                // no known provenance (the slice was never published):
                // write every block inline this once
                None => vec![None; new_nb],
            };
            if let Err(e) = images.publish_with_reuse(table, p as u32, pin.seq, &fresh, &prov) {
                delta.checkpoint_abort(pin);
                return Err(e.into());
            }
            image_seq = Some(pin.seq);
            if self
                .crash_after_publish
                .swap(false, std::sync::atomic::Ordering::SeqCst)
            {
                delta.checkpoint_abort(pin);
                return Err(DbError::Io(std::io::Error::other(
                    "simulated crash between image publish and compaction marker",
                )));
            }
            new_prov = Some(
                prov.iter()
                    .enumerate()
                    .map(|(i, e)| e.unwrap_or((pin.seq, i)))
                    .collect(),
            );
        }
        drop(merge_span);
        // Phase 3 — install: range marker (merged span + rebased residual),
        // slice swap and delta replacement, atomic under the commit guard.
        {
            let _commit = self.txn_mgr.commit_guard();
            if let Err(e) = self.txn_mgr.log_checkpoint_range(
                table,
                p as u32,
                pin.seq,
                image_seq,
                range.s0,
                range.s1,
                &residual_entries,
            ) {
                delta.checkpoint_abort(pin);
                return Err(e.into());
            }
            let mut tables = self.tables.write();
            let pe = &mut tables
                .get_mut(table)
                .expect("maintenance mutex pins the entry")
                .parts[p];
            // spliced geometry: heat restarts cold at the new block count
            pe.heat.reset(new_nb);
            *pe.provenance.lock() = new_prov;
            pe.stable = Arc::new(fresh);
            let seq = pin.seq;
            delta.checkpoint_install_range(pin, merge);
            if let Some(t) = trace_table {
                obs::event!(
                    obs::TraceKind::CompactionInstall,
                    table: t,
                    part: p as u32,
                    seq: seq,
                    a: b0 as u64,
                    b: b1 as u64,
                );
            }
        }
        Ok(Some(CompactionReport {
            blocks_merged: (b1 - b0) as u64,
            blocks_reused: (old_nb - (b1 - b0)) as u64,
            delta_bytes_folded,
            stable_bytes_written,
            stable_bytes_total,
        }))
    }
}

// The maintenance scheduler (and any server frontend) shares one
// `Arc<Database>` across threads; views travel to scanner threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<ReadView>();
};

/// Declarative description of one table scan — the single entry point the
/// former `scan` / `scan_ranged` / `scan_cols` trio now forwards to.
///
/// Projection is by column index or by name; the scan can additionally be
/// restricted to an inclusive sort-key prefix range (served by the sparse
/// index) and/or a visible-rid window `[lo, hi)` (positions in the merged
/// image — what the positional DML uses to collect pre-images with early
/// exit).
///
/// ```text
/// view.scan_with("t", ScanSpec::named(&["qty", "price"]))?;
/// view.scan_with("t", ScanSpec::all().rid_range(100, 200))?;
/// txn.scan_with("t", ScanSpec::cols(vec![0]).key_range(lo, hi))?;
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScanSpec {
    proj: ScanProj,
    bounds: ScanBounds,
    rid_range: Option<(u64, u64)>,
    profile: bool,
}

#[derive(Debug, Clone, Default)]
enum ScanProj {
    /// Every column, in schema order.
    #[default]
    All,
    /// Column indices, in projection order.
    Cols(Vec<usize>),
    /// Column names, resolved against the schema at scan time.
    Names(Vec<String>),
}

impl ScanSpec {
    /// Project every column.
    pub fn all() -> Self {
        ScanSpec::default()
    }

    /// Project by column index.
    pub fn cols(cols: Vec<usize>) -> Self {
        ScanSpec {
            proj: ScanProj::Cols(cols),
            ..ScanSpec::default()
        }
    }

    /// Project by column name.
    pub fn named<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        ScanSpec {
            proj: ScanProj::Names(names.into_iter().map(Into::into).collect()),
            ..ScanSpec::default()
        }
    }

    /// Restrict to an inclusive sort-key prefix range.
    pub fn bounds(mut self, bounds: ScanBounds) -> Self {
        self.bounds = bounds;
        self
    }

    /// Restrict to the inclusive sort-key prefix range `[lo, hi]`.
    pub fn key_range(self, lo: Vec<Value>, hi: Vec<Value>) -> Self {
        self.bounds(ScanBounds {
            lo: Some(lo),
            hi: Some(hi),
        })
    }

    /// Restrict the *output* to visible positions `[lo, hi)`; the scan
    /// stops as soon as it passes `hi`.
    pub fn rid_range(mut self, lo: u64, hi: u64) -> Self {
        self.rid_range = Some((lo, hi));
        self
    }

    /// Attach a per-query [`obs::ScanProfile`] to the scan (the
    /// `explain_analyze` mode): the scan then counts batches, rows,
    /// blocks decoded vs zone-map-skipped, bytes read, and the merge
    /// path taken per segment. Read the counters back via
    /// [`exec::ops::scan::TableScan::profile`] or, more conveniently,
    /// [`ReadView::explain_analyze`].
    pub fn profiled(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Resolve the projection against `schema`.
    fn resolve(&self, table: &str, schema: &Schema) -> Result<Vec<usize>, DbError> {
        match &self.proj {
            ScanProj::All => Ok((0..schema.len()).collect()),
            ScanProj::Cols(cols) => {
                if let Some(&c) = cols.iter().find(|&&c| c >= schema.len()) {
                    return Err(DbError::UnknownColumn {
                        table: table.to_string(),
                        column: format!("#{c}"),
                    });
                }
                Ok(cols.clone())
            }
            ScanProj::Names(names) => names
                .iter()
                .map(|n| {
                    schema.try_col(n).ok_or_else(|| DbError::UnknownColumn {
                        table: table.to_string(),
                        column: n.clone(),
                    })
                })
                .collect(),
        }
    }

    /// Build the scan over an already-resolved set of partition segments
    /// (one for unpartitioned tables): a sequential union in split order
    /// with globally consecutive output RIDs.
    pub(crate) fn open<'a>(
        &self,
        table: &str,
        schema: &Schema,
        segments: Vec<ScanSegment<'a>>,
        io: IoTracker,
        clock: ScanClock,
    ) -> Result<TableScan<'a>, DbError> {
        let proj = self.resolve(table, schema)?;
        let mut scan = TableScan::union(segments, proj, self.bounds.clone(), io, clock);
        if let Some((lo, hi)) = self.rid_range {
            scan.clamp_rids(lo, hi);
        }
        if self.profile {
            scan.set_profile(Arc::new(obs::ScanProfile::new()));
        }
        Ok(scan)
    }
}

/// The report of one [`ReadView::explain_analyze`] run: what the query
/// produced, what it cost, and the plan-shaped operator profile.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Rows the scan produced.
    pub rows: u64,
    /// Block I/O charged to the view's tracker while the query ran.
    pub io: IoStats,
    /// Plan-shaped operator report (per-segment merge paths, blocks
    /// decoded vs zone-map-skipped, bytes read, wall time).
    pub plan: obs::OpProfile,
}

impl fmt::Display for QueryProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "rows={} io.blocks_read={} io.bytes_read={}",
            self.rows, self.io.blocks_read, self.io.bytes_read
        )?;
        write!(f, "{}", self.plan)
    }
}

/// A consistent, immutable multi-table view for query execution.
pub struct ReadView {
    tables: HashMap<String, TableView>,
    /// Shared I/O counters scans of this view charge.
    pub io: IoTracker,
    /// Shared scan-time clock scans of this view charge.
    pub clock: ScanClock,
}

/// Per-table snapshot inside a [`ReadView`]: one capture per partition,
/// in split order.
pub struct TableView {
    pub(crate) parts: Vec<PartView>,
}

/// One partition's capture inside a [`TableView`].
pub(crate) struct PartView {
    pub stable: Arc<StableTable>,
    /// Committed delta snapshot; `None` in a [`Database::clean_view`].
    pub delta: Option<Arc<dyn DeltaSnapshot>>,
    /// Shared I/O counters scoped to the partition's heat map — scans of
    /// this partition charge it so block touches feed compaction heat.
    pub heat_io: IoTracker,
}

impl PartView {
    /// The delta layers a scan of this partition must merge.
    fn layers(&self) -> DeltaLayers<'_> {
        match &self.delta {
            Some(d) => d.layers(),
            None => DeltaLayers::None,
        }
    }

    /// Visible rows of this partition.
    fn visible(&self) -> u64 {
        let dt = self.delta.as_ref().map_or(0, |d| d.delta_total());
        (self.stable.row_count() as i64 + dt) as u64
    }
}

impl TableView {
    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        self.parts[0].stable.schema()
    }

    /// Net visible-row change relative to the stable images, summed over
    /// partitions.
    pub fn delta_total(&self) -> i64 {
        self.parts
            .iter()
            .map(|p| p.delta.as_ref().map_or(0, |d| d.delta_total()))
            .sum()
    }

    /// The partition segments a scan must union, with their global rid
    /// bases.
    pub(crate) fn segments(&self) -> Vec<ScanSegment<'_>> {
        partition::build_segments(
            self.parts
                .iter()
                .map(|p| (&*p.stable, p.layers(), p.visible(), Some(p.heat_io.clone()))),
        )
    }
}

impl ReadView {
    /// The per-table snapshot of `name`.
    pub fn table(&self, name: &str) -> Result<&TableView, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Column index by name.
    pub fn col(&self, table: &str, column: &str) -> Result<usize, DbError> {
        self.table(table)?
            .schema()
            .try_col(column)
            .ok_or_else(|| DbError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            })
    }

    /// Visible row count of `table` under this view.
    pub fn visible_rows(&self, name: &str) -> Result<u64, DbError> {
        Ok(self.table(name)?.parts.iter().map(PartView::visible).sum())
    }

    /// Open a scan described by a [`ScanSpec`] — the one scan entry point;
    /// everything below forwards here. Partitioned tables scan as a
    /// sequential union in split order (globally consecutive RIDs); use
    /// [`ReadView::par_scan`] to run the partitions on a worker pool.
    pub fn scan_with(&self, table: &str, spec: ScanSpec) -> Result<TableScan<'_>, DbError> {
        let t = self.table(table)?;
        spec.open(
            table,
            t.schema(),
            t.segments(),
            self.io.clone(),
            self.clock.clone(),
        )
    }

    /// Run `spec` against `table` to completion in profiled mode and
    /// return the `EXPLAIN ANALYZE`-style report: rows produced, the
    /// I/O this query charged to the view's tracker, and a plan-shaped
    /// [`obs::OpProfile`] with per-segment merge paths, blocks decoded
    /// vs zone-map-skipped, and bytes read.
    pub fn explain_analyze(&self, table: &str, spec: ScanSpec) -> Result<QueryProfile, DbError> {
        let io_before = self.io.stats();
        let mut scan = self.scan_with(table, spec.profiled())?;
        let profile = scan
            .profile()
            .expect("profiled spec attaches a ScanProfile");
        let mut rows = 0u64;
        while let Some(b) = scan.next_batch() {
            rows += b.num_rows() as u64;
        }
        drop(scan);
        let io = self.io.stats().since(&io_before);
        Ok(QueryProfile {
            rows,
            io,
            plan: profile.snapshot().into_op(table),
        })
    }

    /// Partition-parallel scan: each partition's MergeScan runs as a task
    /// on a worker pool (default: available parallelism), batches are
    /// re-emitted in split order with globally consecutive RIDs — same
    /// output as [`ReadView::scan_with`], first scan path to use more
    /// than one core. The returned operator owns `Arc` captures of the
    /// view's snapshots, so it stays pinned to this view's cut even if
    /// the view is dropped while it runs.
    pub fn par_scan(&self, table: &str, spec: ScanSpec) -> Result<ParallelUnionScan, DbError> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.par_scan_workers(table, spec, workers)
    }

    /// [`ReadView::par_scan`] with an explicit worker count (benches sweep
    /// this).
    pub fn par_scan_workers(
        &self,
        table: &str,
        spec: ScanSpec,
        workers: usize,
    ) -> Result<ParallelUnionScan, DbError> {
        let t = self.table(table)?;
        let proj = spec.resolve(table, t.schema())?;
        let types: Vec<columnar::ValueType> = proj.iter().map(|&c| t.schema().vtype(c)).collect();
        let mut parts = Vec::with_capacity(t.parts.len());
        let mut base = 0u64;
        for p in &t.parts {
            let rid_base = base;
            let visible = p.visible();
            base += visible;
            // partitions wholly outside a rid window never spawn a task —
            // the parallel path skips their blocks exactly like the
            // sequential union does
            if let Some((lo, hi)) = spec.rid_range {
                if rid_base + visible <= lo || rid_base >= hi {
                    continue;
                }
            }
            let stable = p.stable.clone();
            let delta = p.delta.clone();
            let proj = proj.clone();
            let bounds = spec.bounds.clone();
            let rid_range = spec.rid_range;
            // the partition-scoped tracker: shares the database counters
            // and reports block touches to the partition's heat map
            let io = p.heat_io.clone();
            let clock = self.clock.clone();
            parts.push(exec::UnionPart {
                rid_base,
                task: Box::new(move |emit| {
                    let layers = match &delta {
                        Some(d) => d.layers(),
                        None => DeltaLayers::None,
                    };
                    let mut scan = TableScan::ranged(&stable, layers, proj, bounds, io, clock);
                    if let Some((lo, hi)) = rid_range {
                        // global window, clamped to this partition
                        scan.clamp_rids(lo.saturating_sub(rid_base), hi.saturating_sub(rid_base));
                    }
                    while let Some(b) = scan.next_batch() {
                        if !emit(b) {
                            return;
                        }
                    }
                }),
            });
        }
        Ok(ParallelUnionScan::new(parts, types, workers))
    }

    /// Full-table scan with projection (column indices). Thin wrapper over
    /// [`ReadView::scan_with`].
    pub fn scan(&self, table: &str, proj: Vec<usize>) -> Result<TableScan<'_>, DbError> {
        self.scan_with(table, ScanSpec::cols(proj))
    }

    /// Ranged scan over inclusive sort-key prefix bounds (sparse-index
    /// assisted). Thin wrapper over [`ReadView::scan_with`].
    pub fn scan_ranged(
        &self,
        table: &str,
        proj: Vec<usize>,
        bounds: ScanBounds,
    ) -> Result<TableScan<'_>, DbError> {
        self.scan_with(table, ScanSpec::cols(proj).bounds(bounds))
    }

    /// Scan projecting columns by name (plan-writing convenience). Thin
    /// wrapper over [`ReadView::scan_with`].
    pub fn scan_cols(&self, table: &str, cols: &[&str]) -> Result<TableScan<'_>, DbError> {
        self.scan_with(table, ScanSpec::named(cols.iter().copied()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::ValueType;
    use exec::run_to_rows;

    fn inventory_db(policy: UpdatePolicy) -> Database {
        let db = Database::new();
        let schema = Schema::from_pairs(&[
            ("store", ValueType::Str),
            ("prod", ValueType::Str),
            ("new", ValueType::Bool),
            ("qty", ValueType::Int),
        ]);
        let rows: Vec<Tuple> = [
            ("London", "chair", false, 30i64),
            ("London", "stool", false, 10),
            ("London", "table", false, 20),
            ("Paris", "rug", false, 1),
            ("Paris", "stool", false, 5),
        ]
        .iter()
        .map(|(s, p, n, q)| {
            vec![
                Value::from(*s),
                Value::from(*p),
                Value::from(*n),
                Value::from(*q),
            ]
        })
        .collect();
        db.create_table(
            TableMeta::new("inventory", schema, vec![0, 1]),
            TableOptions {
                block_rows: 2,
                compressed: true,
                policy,
                ..TableOptions::default()
            },
            rows,
        )
        .unwrap();
        db
    }

    fn all_rows(db: &Database) -> Vec<Tuple> {
        let view = db.read_view();
        let mut scan = view.scan("inventory", vec![0, 1, 2, 3]).unwrap();
        run_to_rows(&mut scan)
    }

    fn clean_rows(db: &Database) -> Vec<Tuple> {
        let view = db.clean_view();
        let mut scan = view.scan("inventory", vec![0, 1, 2, 3]).unwrap();
        run_to_rows(&mut scan)
    }

    /// The paper's BATCH1..3 sequence, applied through the unified DML.
    fn run_paper_batches(db: &Database) {
        // BATCH1
        let mut t = db.begin();
        for (s, p, q) in [
            ("Berlin", "table", 10i64),
            ("Berlin", "cloth", 5),
            ("Berlin", "chair", 20),
        ] {
            t.insert("inventory", vec![s.into(), p.into(), true.into(), q.into()])
                .unwrap();
        }
        t.commit().unwrap();

        // BATCH2
        use exec::expr::{col, lit};
        let mut t = db.begin();
        t.update_where(
            "inventory",
            col(0).eq(lit("Berlin")).and(col(1).eq(lit("cloth"))),
            vec![(3, lit(1i64))],
        )
        .unwrap();
        t.update_where(
            "inventory",
            col(0).eq(lit("London")).and(col(1).eq(lit("stool"))),
            vec![(3, lit(9i64))],
        )
        .unwrap();
        t.delete_where(
            "inventory",
            col(0).eq(lit("Berlin")).and(col(1).eq(lit("table"))),
        )
        .unwrap();
        t.delete_where(
            "inventory",
            col(0).eq(lit("Paris")).and(col(1).eq(lit("rug"))),
        )
        .unwrap();
        t.commit().unwrap();

        // BATCH3
        let mut t = db.begin();
        for (s, p) in [("Paris", "rack"), ("London", "rack"), ("Berlin", "rack")] {
            t.insert(
                "inventory",
                vec![s.into(), p.into(), true.into(), 4i64.into()],
            )
            .unwrap();
        }
        t.commit().unwrap();
    }

    fn figure13_keys() -> Vec<(String, String)> {
        vec![
            ("Berlin".into(), "chair".into()),
            ("Berlin".into(), "cloth".into()),
            ("Berlin".into(), "rack".into()),
            ("London".into(), "chair".into()),
            ("London".into(), "rack".into()),
            ("London".into(), "stool".into()),
            ("London".into(), "table".into()),
            ("Paris".into(), "rack".into()),
            ("Paris".into(), "stool".into()),
        ]
    }

    #[test]
    fn create_and_scan() {
        let db = inventory_db(UpdatePolicy::Pdt);
        assert_eq!(clean_rows(&db).len(), 5);
        assert_eq!(db.row_count("inventory").unwrap(), 5);
    }

    #[test]
    fn paper_batches_through_engine_both_policies() {
        for policy in ALL_POLICIES {
            let db = inventory_db(policy);
            run_paper_batches(&db);
            let rows = all_rows(&db);
            let keys: Vec<(String, String)> = rows
                .iter()
                .map(|r| (r[0].as_str().to_string(), r[1].as_str().to_string()))
                .collect();
            assert_eq!(keys, figure13_keys(), "{policy:?}");
        }
    }

    #[test]
    fn pdt_and_vdt_tables_produce_identical_images() {
        let pdt_db = inventory_db(UpdatePolicy::Pdt);
        let vdt_db = inventory_db(UpdatePolicy::Vdt);
        run_paper_batches(&pdt_db);
        run_paper_batches(&vdt_db);
        assert_eq!(all_rows(&pdt_db), all_rows(&vdt_db));
    }

    #[test]
    fn duplicate_key_rejected() {
        for policy in ALL_POLICIES {
            let db = inventory_db(policy);
            let mut t = db.begin();
            let err = t
                .insert(
                    "inventory",
                    vec!["London".into(), "chair".into(), true.into(), 1i64.into()],
                )
                .unwrap_err();
            assert!(matches!(err, DbError::DuplicateKey { .. }), "{policy:?}");
            t.abort();
        }
    }

    #[test]
    fn checkpoint_preserves_view_and_resets_layers() {
        for policy in ALL_POLICIES {
            let db = inventory_db(policy);
            let mut t = db.begin();
            t.insert(
                "inventory",
                vec!["Oslo".into(), "desk".into(), true.into(), 2i64.into()],
            )
            .unwrap();
            t.delete_where("inventory", exec::expr::col(1).eq(exec::expr::lit("rug")))
                .unwrap();
            t.commit().unwrap();
            let before = all_rows(&db);
            assert!(db.checkpoint("inventory").unwrap(), "{policy:?}");
            assert_eq!(all_rows(&db), before, "{policy:?}");
            // clean scan of the new image equals the merged view
            assert_eq!(clean_rows(&db), before, "{policy:?}");
            // idempotent when clean
            assert!(!db.checkpoint("inventory").unwrap(), "{policy:?}");
        }
    }

    #[test]
    fn checkpoint_abort_releases_pin_window() {
        // a failed merge aborts the pin; the store must come out exactly
        // as if the checkpoint never started — commits retained during
        // the window are dropped from the residual log (they are still in
        // the committed delta) and the next pin succeeds
        for policy in ALL_POLICIES {
            let db = inventory_db(policy);
            let mut t = db.begin();
            t.insert(
                "inventory",
                vec!["Oslo".into(), "desk".into(), true.into(), 2i64.into()],
            )
            .unwrap();
            t.commit().unwrap();

            let (_, delta, _) = db.partition_entry("inventory", 0).unwrap();
            let pin = delta.checkpoint_pin(db.txn_mgr.seq()).unwrap();
            // a commit lands inside the pin window...
            let mut t = db.begin();
            t.insert(
                "inventory",
                vec!["Rome".into(), "lamp".into(), true.into(), 3i64.into()],
            )
            .unwrap();
            t.commit().unwrap();
            // ...then the merge "fails" and the pin is abandoned
            delta.checkpoint_abort(pin);

            let before = all_rows(&db);
            assert_eq!(before.len(), 7, "{policy:?}");
            // the next checkpoint starts from scratch and folds everything
            assert!(db.checkpoint("inventory").unwrap(), "{policy:?}");
            assert_eq!(all_rows(&db), before, "{policy:?}");
            assert_eq!(clean_rows(&db), before, "{policy:?}");
        }
    }

    #[test]
    fn flush_threshold_policy() {
        let db = inventory_db(UpdatePolicy::Pdt);
        assert!(!db.maybe_flush("inventory", usize::MAX).unwrap());
        let mut t = db.begin();
        t.insert(
            "inventory",
            vec!["Ams".into(), "x".into(), true.into(), 1i64.into()],
        )
        .unwrap();
        t.commit().unwrap();
        assert!(db.maybe_flush("inventory", 0).unwrap());
        // view unchanged after flush
        assert_eq!(all_rows(&db).len(), 6);
    }

    #[test]
    fn sort_key_update_is_delete_plus_insert() {
        for policy in ALL_POLICIES {
            let db = inventory_db(policy);
            let mut t = db.begin();
            // rename London/table -> London/bench (SK column!)
            t.update_where(
                "inventory",
                exec::expr::col(1).eq(exec::expr::lit("table")),
                vec![(1, exec::expr::lit("bench"))],
            )
            .unwrap();
            t.commit().unwrap();
            let rows = all_rows(&db);
            let prods: Vec<&str> = rows.iter().map(|r| r[1].as_str()).collect();
            assert!(prods.contains(&"bench") && !prods.contains(&"table"));
            // order maintained: bench sorts before chair
            assert_eq!(rows[0][1].as_str(), "bench", "{policy:?}");
            assert_eq!(rows.len(), 5);
        }
    }

    /// A 40-row int table split at explicit points, next to an identical
    /// unpartitioned one — every operation must agree between them.
    fn partitioned_pair(policy: UpdatePolicy) -> (Database, Database) {
        let schema = Schema::from_pairs(&[("k", ValueType::Int), ("v", ValueType::Int)]);
        let rows: Vec<Tuple> = (0..40i64)
            .map(|i| vec![Value::Int(i * 10), Value::Int(i)])
            .collect();
        let make = |spec: PartitionSpec| {
            let db = Database::new();
            db.create_table(
                TableMeta::new("t", schema.clone(), vec![0]),
                TableOptions::default()
                    .with_block_rows(8)
                    .with_policy(policy)
                    .with_partitions(spec),
                rows.clone(),
            )
            .unwrap();
            db
        };
        let split = make(PartitionSpec::SplitPoints(vec![
            vec![Value::Int(100)],
            vec![Value::Int(250)],
            vec![Value::Int(390)],
        ]));
        let single = make(PartitionSpec::None);
        (split, single)
    }

    fn t_rows(db: &Database) -> Vec<Tuple> {
        let view = db.read_view();
        run_to_rows(&mut view.scan("t", vec![0, 1]).unwrap())
    }

    #[test]
    fn partitioned_table_matches_single_partition_image() {
        for policy in ALL_POLICIES {
            let (split, single) = partitioned_pair(policy);
            assert_eq!(split.partition_count("t").unwrap(), 4, "{policy:?}");
            assert_eq!(split.partition_splits("t").unwrap().len(), 3);
            assert_eq!(t_rows(&split), t_rows(&single), "{policy:?}: bulk load");
            // the same DML stream through both layouts
            for db in [&split, &single] {
                let mut t = db.begin();
                // cross-partition batch: scattered inserts, incl. beyond
                // the last split point and before the first row
                let fresh: Vec<Tuple> = [-5i64, 95, 105, 255, 395, 401]
                    .iter()
                    .map(|&k| vec![Value::Int(k), Value::Int(-k)])
                    .collect();
                t.append(
                    "t",
                    exec::Batch::from_rows(&[ValueType::Int, ValueType::Int], &fresh),
                )
                .unwrap();
                // positional deletes + updates straddling split points
                t.delete_rids("t", &[0, 12, 13, 30, 45]).unwrap();
                t.update_col(
                    "t",
                    &[5, 20, 38],
                    1,
                    columnar::ColumnVec::Int(vec![1, 2, 3]),
                )
                .unwrap();
                t.commit().unwrap();
            }
            let got = t_rows(&split);
            assert_eq!(got, t_rows(&single), "{policy:?}: after DML");
            let ks: Vec<i64> = got.iter().map(|r| r[0].as_int()).collect();
            assert!(ks.windows(2).all(|w| w[0] < w[1]), "{policy:?}: {ks:?}");
            assert_eq!(
                split.row_count("t").unwrap(),
                single.row_count("t").unwrap()
            );
        }
    }

    #[test]
    fn sort_key_rewrite_moves_rows_between_partitions() {
        for policy in ALL_POLICIES {
            let (split, single) = partitioned_pair(policy);
            for db in [&split, &single] {
                let mut t = db.begin();
                // 30 lives in partition 0; rewrite to 305 (partition 2)
                // and 380 down to 25 (partition 2 → 0)
                let n = t
                    .update_col("t", &[3, 38], 0, columnar::ColumnVec::Int(vec![305, 25]))
                    .unwrap();
                assert_eq!(n, 2, "{policy:?}");
                t.commit().unwrap();
            }
            assert_eq!(t_rows(&split), t_rows(&single), "{policy:?}");
            // the moved keys are present exactly once and in order
            let ks: Vec<i64> = t_rows(&split).iter().map(|r| r[0].as_int()).collect();
            assert!(ks.windows(2).all(|w| w[0] < w[1]), "{policy:?}: {ks:?}");
            assert!(ks.contains(&305) && ks.contains(&25) && !ks.contains(&30));
        }
    }

    #[test]
    fn partitioned_checkpoint_and_flush_preserve_image() {
        for policy in ALL_POLICIES {
            let (split, _) = partitioned_pair(policy);
            let mut t = split.begin();
            t.insert("t", vec![Value::Int(95), Value::Int(0)]).unwrap();
            t.insert("t", vec![Value::Int(395), Value::Int(0)]).unwrap();
            t.commit().unwrap();
            let before = t_rows(&split);
            assert!(split.maybe_flush("t", 0).unwrap() || policy != UpdatePolicy::Pdt);
            assert!(split.checkpoint("t").unwrap(), "{policy:?}");
            assert_eq!(t_rows(&split), before, "{policy:?}: merged view");
            let clean = run_to_rows(&mut split.clean_view().scan("t", vec![0, 1]).unwrap());
            assert_eq!(clean, before, "{policy:?}: clean view");
            // only the touched partitions had anything to fold: a second
            // checkpoint is a no-op everywhere
            assert!(!split.checkpoint("t").unwrap(), "{policy:?}");
            // per-partition entry points work and bounds-check
            assert!(!split.checkpoint_partition("t", 0).unwrap());
            assert!(matches!(
                split.checkpoint_partition("t", 9),
                Err(DbError::Partition { .. })
            ));
            assert!(matches!(
                split.delta_bytes_partition("t", 9),
                Err(DbError::Partition { .. })
            ));
        }
    }

    #[test]
    fn par_scan_matches_sequential_union() {
        for policy in ALL_POLICIES {
            let (split, _) = partitioned_pair(policy);
            let mut t = split.begin();
            t.delete_rids("t", &[7, 21]).unwrap();
            t.insert("t", vec![Value::Int(95), Value::Int(0)]).unwrap();
            t.commit().unwrap();
            let view = split.read_view();
            let seq = run_to_rows(&mut view.scan_with("t", ScanSpec::all()).unwrap());
            for workers in [1, 4] {
                let mut par = view
                    .par_scan_workers("t", ScanSpec::all(), workers)
                    .unwrap();
                let mut expect_rid = 0u64;
                let mut got = Vec::new();
                while let Some(b) = par.next_batch() {
                    assert_eq!(b.rid_start, expect_rid, "{policy:?} workers={workers}");
                    expect_rid += b.num_rows() as u64;
                    got.extend(b.rows());
                }
                assert_eq!(got, seq, "{policy:?} workers={workers}");
            }
            // rid windows clamp per partition on the parallel path too
            let windowed = run_to_rows(
                &mut view
                    .par_scan("t", ScanSpec::all().rid_range(8, 25))
                    .unwrap(),
            );
            assert_eq!(windowed, seq[8..25].to_vec(), "{policy:?}");
        }
    }

    #[test]
    fn count_spec_balances_and_empty_splits_allowed() {
        let schema = Schema::from_pairs(&[("k", ValueType::Int)]);
        let rows: Vec<Tuple> = (0..100i64).map(|i| vec![Value::Int(i)]).collect();
        let db = Database::new();
        db.create_table(
            TableMeta::new("t", schema.clone(), vec![0]),
            TableOptions::default().with_partitions(PartitionSpec::Count(4)),
            rows,
        )
        .unwrap();
        assert_eq!(db.partition_count("t").unwrap(), 4);
        for p in 0..4 {
            assert_eq!(db.stable_partition("t", p).unwrap().row_count(), 25);
        }
        // explicit splits outside the populated range: empty partitions
        let db = Database::new();
        db.create_table(
            TableMeta::new("e", schema, vec![0]),
            TableOptions::default().with_partitions(PartitionSpec::SplitPoints(vec![
                vec![Value::Int(-10)],
                vec![Value::Int(1000)],
            ])),
            vec![vec![Value::Int(5)]],
        )
        .unwrap();
        assert_eq!(db.stable_partition("e", 0).unwrap().row_count(), 0);
        assert_eq!(db.stable_partition("e", 1).unwrap().row_count(), 1);
        assert_eq!(db.stable_partition("e", 2).unwrap().row_count(), 0);
        // writes into (and scans across) empty partitions work
        let mut t = db.begin();
        t.insert("e", vec![Value::Int(-20)]).unwrap();
        t.insert("e", vec![Value::Int(2000)]).unwrap();
        t.commit().unwrap();
        let view = db.read_view();
        let ks: Vec<i64> = run_to_rows(&mut view.scan("e", vec![0]).unwrap())
            .iter()
            .map(|r| r[0].as_int())
            .collect();
        assert_eq!(ks, vec![-20, 5, 2000]);
        // invalid specs fail loudly at create time
        let db = Database::new();
        assert!(matches!(
            db.create_table(
                TableMeta::new("bad", Schema::from_pairs(&[("k", ValueType::Int)]), vec![0]),
                TableOptions::default().with_partitions(PartitionSpec::SplitPoints(vec![
                    vec![Value::Int(9)],
                    vec![Value::Int(3)],
                ])),
                vec![],
            ),
            Err(DbError::Partition { .. })
        ));
        // '#' is reserved: a table named "t#1" could alias partition 1 of
        // a partitioned PDT table "t" in the transaction manager
        assert!(matches!(
            db.create_table(
                TableMeta::new("t#1", Schema::from_pairs(&[("k", ValueType::Int)]), vec![0]),
                TableOptions::default(),
                vec![],
            ),
            Err(DbError::Partition { .. })
        ));
    }

    #[test]
    fn partitioned_wal_recovery_restores_every_partition() {
        for policy in ALL_POLICIES {
            let dir = std::env::temp_dir().join(format!("pdt_part_wal_{policy:?}"));
            std::fs::create_dir_all(&dir).unwrap();
            let wal = dir.join("part.wal");
            let _ = std::fs::remove_file(&wal);
            let schema = Schema::from_pairs(&[("k", ValueType::Int), ("v", ValueType::Int)]);
            let rows: Vec<Tuple> = (0..30i64)
                .map(|i| vec![Value::Int(i * 10), Value::Int(i)])
                .collect();
            let splits =
                PartitionSpec::SplitPoints(vec![vec![Value::Int(100)], vec![Value::Int(200)]]);
            let opts = TableOptions::default()
                .with_block_rows(8)
                .with_policy(policy)
                .with_partitions(splits.clone());
            let make = || {
                let db = Database::with_wal(&wal).unwrap();
                db.create_table(
                    TableMeta::new("t", schema.clone(), vec![0]),
                    opts.clone(),
                    rows.clone(),
                )
                .unwrap();
                db
            };
            let db = make();
            let mut t = db.begin();
            t.insert("t", vec![Value::Int(55), Value::Int(0)]).unwrap();
            t.insert("t", vec![Value::Int(155), Value::Int(0)]).unwrap();
            t.delete_rids("t", &[25]).unwrap();
            t.commit().unwrap();
            // checkpoint only the middle partition: its commits are
            // covered by a partition-tagged marker, the others replay
            assert!(db.checkpoint_partition("t", 1).unwrap(), "{policy:?}");
            let mut t = db.begin();
            t.insert("t", vec![Value::Int(165), Value::Int(0)]).unwrap();
            t.commit().unwrap();
            let want = t_rows(&db);
            drop(db);
            // crash: rebuild from the *original* base for partitions 0/2
            // and from nothing newer for partition 1 — except the
            // checkpointed slice, which the marker says is durable. The
            // harness model: recreate with the same splits, recover.
            let recovered = make();
            // partition 1's base must be its checkpointed slice
            // (recreating from the original rows would double-apply the
            // folded commits if the marker failed to cover them). Here we
            // recreate from the original rows, so recovery must re-apply
            // partition 1's pre-checkpoint commits… unless the marker
            // skips them. To keep the oracle exact we only assert the
            // *unchecked* partitions and the post-checkpoint commit.
            recovered.recover_from(&wal).unwrap();
            let got = t_rows(&recovered);
            let want_keys: std::collections::BTreeSet<i64> =
                want.iter().map(|r| r[0].as_int()).collect();
            let got_keys: std::collections::BTreeSet<i64> =
                got.iter().map(|r| r[0].as_int()).collect();
            // partition 0 (keys < 100) and partition 2 (keys ≥ 200)
            // recover exactly; partition 1 is missing the checkpointed
            // insert of 155 (folded into the slice we discarded) but
            // keeps the post-marker 165
            for k in want_keys.iter().filter(|&&k| !(100..200).contains(&k)) {
                assert!(got_keys.contains(k), "{policy:?}: lost key {k}");
            }
            assert!(got_keys.contains(&165), "{policy:?}: post-marker commit");
            assert!(
                !got_keys.contains(&155),
                "{policy:?}: marker must cover the folded commit"
            );
            let _ = std::fs::remove_file(&wal);
        }
    }

    #[test]
    fn image_recovery_restores_folded_history() {
        // the WAL-only twin of this test documents that commits folded by
        // a checkpoint marker are LOST on recovery (the slice was never
        // persisted); with an image store the marker references a durable
        // image and recovery restores them exactly
        for policy in ALL_POLICIES {
            let dir =
                std::env::temp_dir().join(format!("pdt_img_rec_{policy:?}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let wal = dir.join("t.wal");
            let images = dir.join("images");
            let schema = Schema::from_pairs(&[("k", ValueType::Int), ("v", ValueType::Int)]);
            let rows: Vec<Tuple> = (0..30i64)
                .map(|i| vec![Value::Int(i * 10), Value::Int(i)])
                .collect();
            let opts = TableOptions::default()
                .with_block_rows(8)
                .with_policy(policy)
                .with_partitions(PartitionSpec::SplitPoints(vec![
                    vec![Value::Int(100)],
                    vec![Value::Int(200)],
                ]));
            let make = || {
                let db = Database::with_storage(&wal, &images).unwrap();
                db.create_table(
                    TableMeta::new("t", schema.clone(), vec![0]),
                    opts.clone(),
                    rows.clone(),
                )
                .unwrap();
                db
            };
            let db = make();
            let mut t = db.begin();
            t.insert("t", vec![Value::Int(55), Value::Int(0)]).unwrap();
            t.insert("t", vec![Value::Int(155), Value::Int(0)]).unwrap();
            t.delete_rids("t", &[25]).unwrap();
            t.commit().unwrap();
            assert!(db.checkpoint_partition("t", 1).unwrap(), "{policy:?}");
            let mut t = db.begin();
            t.insert("t", vec![Value::Int(165), Value::Int(0)]).unwrap();
            t.commit().unwrap();
            let want = t_rows(&db);
            drop(db);
            let recovered = make();
            recovered.recover_from(&wal).unwrap();
            assert_eq!(
                t_rows(&recovered),
                want,
                "{policy:?}: image recovery must restore the folded insert of 155"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn db_error_displays_readable_messages_with_sources() {
        // the differential harness prints these on divergence — they must
        // read like sentences, not Debug dumps
        let cases = [
            (
                DbError::UnknownTable("inv".into()),
                "unknown table inv",
                false,
            ),
            (
                DbError::UnknownColumn {
                    table: "inv".into(),
                    column: "ghost".into(),
                },
                "unknown column ghost in table inv",
                false,
            ),
            (
                DbError::DuplicateKey {
                    table: "inv".into(),
                    key: vec![Value::Int(7)],
                },
                "duplicate sort key [Int(7)] in table inv",
                false,
            ),
            (
                DbError::Conflict {
                    table: "inv".into(),
                    reason: "concurrent insert of sort key [Int(7)]".into(),
                },
                "write-write conflict on table inv: concurrent insert of sort key [Int(7)]",
                false,
            ),
            (
                DbError::BatchShape {
                    table: "inv".into(),
                    detail: "batch has 2 columns, table has 4".into(),
                },
                "batch does not fit table inv: batch has 2 columns, table has 4",
                false,
            ),
            (
                DbError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "wal gone",
                )),
                "io error: wal gone",
                true,
            ),
        ];
        use std::error::Error;
        for (err, want, has_source) in cases {
            assert_eq!(err.to_string(), want);
            assert_eq!(err.source().is_some(), has_source, "{err}");
        }
        // wrapped errors chain their source for `anyhow`-style reporting
        let err = DbError::Txn(txn::TxnError::UnknownTable("inv".into()));
        assert!(err.source().unwrap().to_string().contains("inv"));
    }

    #[test]
    fn unknown_table_errors_from_every_entry_point() {
        let db = inventory_db(UpdatePolicy::Pdt);
        assert!(matches!(db.schema("nope"), Err(DbError::UnknownTable(_))));
        assert!(matches!(
            db.stable_single("nope"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(db.policy("nope"), Err(DbError::UnknownTable(_))));
        assert!(matches!(
            db.row_count("nope"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            db.maybe_flush("nope", 0),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            db.checkpoint("nope"),
            Err(DbError::UnknownTable(_))
        ));

        let view = db.read_view();
        assert!(matches!(view.table("nope"), Err(DbError::UnknownTable(_))));
        assert!(matches!(
            view.col("nope", "store"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            view.col("inventory", "ghost_col"),
            Err(DbError::UnknownColumn { .. })
        ));
        assert!(matches!(
            view.visible_rows("nope"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            view.scan("nope", vec![0]),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            view.scan_cols("nope", &["store"]),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            view.scan_cols("inventory", &["ghost_col"]),
            Err(DbError::UnknownColumn { .. })
        ));

        let mut t = db.begin();
        assert!(matches!(
            t.insert("nope", vec!["x".into()]),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            t.delete_where("nope", exec::expr::lit(true)),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            t.update_where("nope", exec::expr::lit(true), vec![]),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            t.visible_rows("nope"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            t.scan("nope", vec![0]),
            Err(DbError::UnknownTable(_))
        ));
        t.abort();
    }

    fn int_db(policy: UpdatePolicy, n: i64) -> Database {
        let db = Database::new();
        let schema = Schema::from_pairs(&[("k", ValueType::Int), ("v", ValueType::Int)]);
        let rows: Vec<Tuple> = (0..n)
            .map(|i| vec![Value::Int(i * 10), Value::Int(i)])
            .collect();
        db.create_table(
            TableMeta::new("t", schema, vec![0]),
            TableOptions::default()
                .with_policy(policy)
                .with_block_rows(16),
            rows,
        )
        .unwrap();
        db
    }

    #[test]
    fn compact_range_preserves_view_all_policies() {
        use exec::expr::{col, lit};
        for policy in ALL_POLICIES {
            let db = int_db(policy, 128); // 8 blocks of 16
            let mut t = db.begin();
            // churn inside blocks 2..4 (keys 320..639)...
            t.insert("t", vec![Value::Int(321), Value::Int(-1)])
                .unwrap();
            t.insert("t", vec![Value::Int(325), Value::Int(-2)])
                .unwrap();
            t.delete_where("t", col(0).eq(lit(400i64))).unwrap();
            t.update_where("t", col(0).eq(lit(500i64)), vec![(1, lit(-9i64))])
                .unwrap();
            // ...and outside them: block 0, block 6, and a trailing append
            t.insert("t", vec![Value::Int(5), Value::Int(-3)]).unwrap();
            t.delete_where("t", col(0).eq(lit(1000i64))).unwrap();
            t.insert("t", vec![Value::Int(99999), Value::Int(-4)])
                .unwrap();
            t.commit().unwrap();
            let before = t_rows(&db);

            let report = db.compact_range("t", 0, 2, 4).unwrap().unwrap();
            assert_eq!(report.blocks_merged, 2, "{policy:?}");
            assert_eq!(report.blocks_reused, 6, "{policy:?}");
            assert!(
                report.stable_bytes_written < report.stable_bytes_total,
                "{policy:?}: incremental step rewrote {} of {} bytes",
                report.stable_bytes_written,
                report.stable_bytes_total
            );
            assert_eq!(t_rows(&db), before, "{policy:?}: view changed");

            // the folded window is out of the delta; the rest is not — a
            // clean scan shows the folded range but not the residual
            let clean = {
                let view = db.clean_view();
                let mut scan = view.scan("t", vec![0, 1]).unwrap();
                run_to_rows(&mut scan)
            };
            assert!(
                clean.iter().any(|r| r[0] == Value::Int(321)),
                "{policy:?}: in-range insert not folded"
            );
            assert!(
                clean.iter().all(|r| r[0] != Value::Int(400)),
                "{policy:?}: in-range delete not folded"
            );
            assert!(
                clean.iter().all(|r| r[0] != Value::Int(5)),
                "{policy:?}: out-of-range insert leaked into stable"
            );
            assert!(
                clean.iter().any(|r| r[0] == Value::Int(1000)),
                "{policy:?}: out-of-range delete leaked into stable"
            );

            // a trailing-range compaction folds the append gap too
            let nb = db.stable_partition("t", 0).unwrap().num_blocks();
            db.compact_range("t", 0, nb - 1, nb).unwrap().unwrap();
            assert_eq!(t_rows(&db), before, "{policy:?}: tail fold changed view");

            // and a subsequent whole-partition checkpoint still agrees
            db.checkpoint("t").unwrap();
            assert_eq!(
                t_rows(&db),
                before,
                "{policy:?}: checkpoint after compaction"
            );
        }
    }

    #[test]
    fn compact_partition_follows_heat() {
        use exec::expr::{col, lit};
        for policy in ALL_POLICIES {
            let db = int_db(policy, 128);
            {
                let mut tables = db.tables.write();
                tables.get_mut("t").unwrap().opts.compaction = CompactionConfig {
                    enabled: true,
                    max_unit_blocks: 2,
                    min_delta_bytes: 1,
                    min_score_permille: 0,
                };
            }
            // nothing staged: nothing to pin, nothing planned
            assert!(
                db.compact_partition("t", 0).unwrap().is_none(),
                "{policy:?}"
            );
            let mut t = db.begin();
            t.update_where("t", col(0).eq(lit(480i64)), vec![(1, lit(-1i64))])
                .unwrap();
            t.commit().unwrap();
            let before = t_rows(&db);
            let report = db.compact_partition("t", 0).unwrap().unwrap();
            assert!(report.blocks_merged <= 2, "{policy:?}: unit bound");
            assert!(report.blocks_reused >= 6, "{policy:?}");
            assert_eq!(t_rows(&db), before, "{policy:?}");
            // heat reset with the swap: the planner has nothing left
            assert!(
                db.compact_partition("t", 0).unwrap().is_none(),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn compaction_commits_during_merge_survive() {
        // a commit landing inside the off-lock merge window must stay
        // visible after install (it rides the residual path, seq > pin)
        for policy in ALL_POLICIES {
            let db = int_db(policy, 128);
            let mut t = db.begin();
            t.insert("t", vec![Value::Int(321), Value::Int(-1)])
                .unwrap();
            t.commit().unwrap();
            let (_, delta, _) = db.partition_entry("t", 0).unwrap();
            let stable = db.stable_partition("t", 0).unwrap();
            let pin = delta.checkpoint_pin(db.txn_mgr.seq()).unwrap();
            let range = delta::CompactRange {
                b0: 2,
                b1: 4,
                s0: stable.block_range(2).0,
                s1: stable.block_range(3).1,
                row_count: stable.row_count(),
                lo: Some(stable.block_sk_bounds(1).1.to_vec()),
                hi: Some(stable.block_sk_bounds(3).1.to_vec()),
            };
            let merge = delta
                .checkpoint_merge_range(&pin, &stable, &range, db.io())
                .unwrap();
            // commit lands mid-merge, inside and outside the window
            let mut t = db.begin();
            t.insert("t", vec![Value::Int(323), Value::Int(-2)])
                .unwrap();
            t.insert("t", vec![Value::Int(7), Value::Int(-3)]).unwrap();
            t.commit().unwrap();
            let fresh = stable.splice_blocks(2, 4, &merge.cols).unwrap();
            {
                let _commit = db.txn_mgr.commit_guard();
                let mut tables = db.tables.write();
                let pe = &mut tables.get_mut("t").unwrap().parts[0];
                pe.heat.reset(fresh.num_blocks());
                pe.stable = Arc::new(fresh);
                delta.checkpoint_install_range(pin, merge);
            }
            let keys: Vec<i64> = t_rows(&db).iter().map(|r| r[0].as_int()).collect();
            assert!(keys.contains(&321), "{policy:?}: pinned insert lost");
            assert!(keys.contains(&323), "{policy:?}: mid-merge insert lost");
            assert!(keys.contains(&7), "{policy:?}: mid-merge insert lost");
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "{policy:?}: order");
        }
    }
}
