//! # Mini column-store DBMS
//!
//! Ties the substrates together into the system the paper evaluates:
//! ordered compressed columnar tables ([`columnar`]), differential updates
//! buffered in a per-table update structure behind the [`DeltaStore`]
//! trait — positional PDTs ([`pdt`]) under snapshot-isolation transactions
//! ([`txn`]), the value-based VDT baseline ([`vdt`]), or the classic
//! copy-on-write row-store baseline ([`rowstore`]) — and scans/queries
//! through the block-oriented executor ([`exec`]).
//!
//! Every table picks its update structure at creation time
//! ([`TableOptions::policy`]); DML, commit, WAL durability, flushing and
//! checkpointing then flow through one API regardless of the structure:
//!
//! ```text
//! let db = Database::new();
//! db.create_table(meta, TableOptions::default().with_policy(UpdatePolicy::Vdt), rows)?;
//! let mut txn = db.begin();           // same transactions for PDT and VDT
//! txn.append("t", batch)?;            // batch-first writes: one scan,
//! txn.delete_rids("t", &rids)?;       // one staged op, one WAL entry
//! txn.update_col("t", &rids, 2, new_values)?;   //   per statement
//! txn.commit()?;
//! let view = db.read_view();          // scans merge the table's own deltas
//! db.checkpoint("t")?;                // same checkpoint for either backend
//! ```
//!
//! The paper's Figure-19 "no-updates" bars come from [`Database::clean_view`],
//! which scans the stable images only.
//!
//! DML follows the paper's flows: inserts locate their RID with a ranged
//! scan on the sort key ("SELECT rid WHERE SK > sk ORDER BY rid LIMIT 1"),
//! resolve SIDs against ghosts via `SkRidToSid`, and record updates in the
//! transaction's private staging area; deletes and updates scan for victims
//! and fold positionally. Sort-key-modifying updates are rewritten as
//! delete + insert (§2.1).

pub mod batch;
pub mod delta;
pub mod dml;
pub mod maintenance;
pub mod rowstore;
pub mod testkit;

pub use batch::DmlBatch;
pub use delta::{
    CheckpointPin, DeltaSnapshot, DeltaStore, DeltaTxn, PdtStore, UpdatePolicy, VdtStore,
    ALL_POLICIES,
};
pub use dml::{Appender, DbTxn};
pub use maintenance::{MaintenanceConfig, MaintenanceScheduler, MaintenanceStats};
pub use rowstore::RowStore;

use columnar::{ColumnarError, IoTracker, Schema, StableTable, TableMeta, Tuple, Value};
use exec::{DeltaLayers, ScanBounds, ScanClock, TableScan};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use txn::{TxnError, TxnManager};

/// Engine-level errors.
#[derive(Debug)]
pub enum DbError {
    UnknownTable(String),
    UnknownColumn {
        table: String,
        column: String,
    },
    DuplicateKey {
        table: String,
        key: Vec<Value>,
    },
    /// Write-write conflict detected by a value-addressed delta store.
    Conflict {
        table: String,
        reason: String,
    },
    /// A write batch does not fit the table: wrong arity, a column of the
    /// wrong type, mismatched rid/value counts, or an out-of-range rid.
    /// Raised at the API boundary, before anything is staged — shape bugs
    /// never reach (let alone panic inside) the delta structures.
    BatchShape {
        table: String,
        detail: String,
    },
    Storage(ColumnarError),
    Txn(TxnError),
    Io(std::io::Error),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table {t}"),
            DbError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column} in table {table}")
            }
            DbError::DuplicateKey { table, key } => {
                write!(f, "duplicate sort key {key:?} in table {table}")
            }
            DbError::Conflict { table, reason } => {
                write!(f, "write-write conflict on table {table}: {reason}")
            }
            DbError::BatchShape { table, detail } => {
                write!(f, "batch does not fit table {table}: {detail}")
            }
            DbError::Storage(e) => write!(f, "storage error: {e}"),
            DbError::Txn(e) => write!(f, "transaction error: {e}"),
            DbError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Storage(e) => Some(e),
            DbError::Txn(e) => Some(e),
            DbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ColumnarError> for DbError {
    fn from(e: ColumnarError) -> Self {
        DbError::Storage(e)
    }
}

impl From<TxnError> for DbError {
    fn from(e: TxnError) -> Self {
        DbError::Txn(e)
    }
}

/// Physical layout plus update-handling policy of a table.
///
/// Extends the storage options of [`columnar::TableOptions`] with the
/// engine-level choice of differential structure, replacing the old
/// per-scan `ScanMode` plumbing: the policy is a property of the *table*,
/// fixed at creation, and every scan of the table merges the structure the
/// table is maintained by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableOptions {
    /// Rows per block (the scan/merge granularity). Default 4096.
    pub block_rows: usize,
    /// Whether to apply lightweight compression (paper: server runs
    /// compressed, workstation runs non-compressed).
    pub compressed: bool,
    /// Which update structure maintains the table. Default PDT.
    pub policy: UpdatePolicy,
    /// Write-layer byte budget: the background scheduler flushes the
    /// write-optimised delta layer into the read-optimised one once it
    /// exceeds this (the paper's Propagate policy — keep the Write-PDT
    /// CPU-cache-sized). Default 1 MiB.
    pub flush_threshold_bytes: usize,
    /// Total delta byte budget: the background scheduler checkpoints the
    /// table into a fresh stable image once all committed delta layers
    /// exceed this. Default 64 MiB.
    pub checkpoint_threshold_bytes: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions {
            block_rows: 4096,
            compressed: true,
            policy: UpdatePolicy::Pdt,
            flush_threshold_bytes: 1 << 20,
            checkpoint_threshold_bytes: 64 << 20,
        }
    }
}

impl TableOptions {
    pub fn with_policy(mut self, policy: UpdatePolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn with_block_rows(mut self, block_rows: usize) -> Self {
        self.block_rows = block_rows;
        self
    }

    pub fn with_compression(mut self, compressed: bool) -> Self {
        self.compressed = compressed;
        self
    }

    /// Set the background-flush byte budget of the write-optimised layer.
    pub fn with_flush_threshold(mut self, bytes: usize) -> Self {
        self.flush_threshold_bytes = bytes;
        self
    }

    /// Set the background-checkpoint byte budget of the whole delta.
    pub fn with_checkpoint_threshold(mut self, bytes: usize) -> Self {
        self.checkpoint_threshold_bytes = bytes;
        self
    }

    /// The storage-level subset.
    pub fn storage(&self) -> columnar::TableOptions {
        columnar::TableOptions {
            block_rows: self.block_rows,
            compressed: self.compressed,
        }
    }
}

pub(crate) struct TableEntry {
    pub stable: Arc<StableTable>,
    pub delta: Arc<dyn DeltaStore>,
    /// Creation-time options (maintenance budgets included).
    pub opts: TableOptions,
    /// Serializes this table's maintenance operations (flush, checkpoint)
    /// against each other — commits and reads never take it.
    pub maint: Arc<Mutex<()>>,
}

/// The database: stable tables, each paired with its update structure, plus
/// the transaction manager that sequences all commits.
pub struct Database {
    pub(crate) txn_mgr: Arc<TxnManager>,
    pub(crate) tables: RwLock<HashMap<String, TableEntry>>,
    io: IoTracker,
    clock: ScanClock,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// In-memory database without a WAL.
    pub fn new() -> Self {
        Database {
            txn_mgr: Arc::new(TxnManager::new()),
            tables: RwLock::new(HashMap::new()),
            io: IoTracker::new(),
            clock: ScanClock::new(),
        }
    }

    /// Database whose commits append to a WAL at `path`.
    pub fn with_wal(path: &Path) -> Result<Self, DbError> {
        Ok(Database {
            txn_mgr: Arc::new(TxnManager::with_wal(path).map_err(DbError::Io)?),
            tables: RwLock::new(HashMap::new()),
            io: IoTracker::new(),
            clock: ScanClock::new(),
        })
    }

    /// Bulk-load a table (rows need not be pre-sorted). The update policy
    /// in `opts` fixes which differential structure maintains the table.
    pub fn create_table(
        &self,
        meta: TableMeta,
        opts: TableOptions,
        rows: Vec<Tuple>,
    ) -> Result<(), DbError> {
        let name = meta.name.clone();
        let schema = meta.schema.clone();
        let sk = meta.sort_key.cols().to_vec();
        let stable = StableTable::bulk_load_unsorted(meta, opts.storage(), rows)?;
        let delta: Arc<dyn DeltaStore> = match opts.policy {
            UpdatePolicy::Pdt => {
                self.txn_mgr.register_table(&name, schema, sk);
                Arc::new(PdtStore::new(self.txn_mgr.clone(), name.clone()))
            }
            UpdatePolicy::Vdt => Arc::new(VdtStore::new(name.clone(), schema, sk)),
            UpdatePolicy::RowStore => Arc::new(RowStore::new(name.clone(), schema, sk)),
        };
        self.tables.write().insert(
            name,
            TableEntry {
                stable: Arc::new(stable),
                delta,
                opts,
                maint: Arc::new(Mutex::new(())),
            },
        );
        Ok(())
    }

    /// Shared I/O counters (per-database).
    pub fn io(&self) -> &IoTracker {
        &self.io
    }

    /// Shared scan-time clock.
    pub fn clock(&self) -> &ScanClock {
        &self.clock
    }

    fn entry(&self, table: &str) -> Result<(Arc<StableTable>, Arc<dyn DeltaStore>), DbError> {
        let tables = self.tables.read();
        let e = tables
            .get(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        Ok((e.stable.clone(), e.delta.clone()))
    }

    /// Delta store plus the table's maintenance mutex.
    #[allow(clippy::type_complexity)]
    fn maint_entry(&self, table: &str) -> Result<(Arc<dyn DeltaStore>, Arc<Mutex<()>>), DbError> {
        let tables = self.tables.read();
        let e = tables
            .get(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        Ok((e.delta.clone(), e.maint.clone()))
    }

    /// Names of every table (maintenance-scheduler sweep order is sorted
    /// for determinism).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// The creation-time options of a table (maintenance budgets included).
    pub fn options(&self, table: &str) -> Result<TableOptions, DbError> {
        let tables = self.tables.read();
        tables
            .get(table)
            .map(|e| e.opts)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))
    }

    /// Total bytes held by a table's committed delta layers (the
    /// checkpoint budget input).
    pub fn delta_bytes(&self, table: &str) -> Result<usize, DbError> {
        Ok(self.entry(table)?.1.delta_bytes())
    }

    /// Replay the WAL at `path` into the tables' update structures (after
    /// `create_table`, each table rebuilt from its last checkpointed
    /// stable image — commit records a checkpoint marker covers are
    /// skipped). Returns the recovered commit sequence.
    pub fn recover_from(&self, path: &Path) -> Result<u64, DbError> {
        let _commit = self.txn_mgr.commit_guard();
        let records = txn::wal::Wal::read_effective(path).map_err(DbError::Io)?;
        let tables = self.tables.read();
        let mut last = 0;
        for rec in records {
            last = rec.seq();
            if let txn::wal::WalRecord::Commit {
                tables: touched, ..
            } = rec
            {
                for (table, entries) in touched {
                    let e = tables
                        .get(&table)
                        .ok_or_else(|| DbError::UnknownTable(table.clone()))?;
                    e.delta.replay(&entries);
                }
            }
        }
        self.txn_mgr.finish_recovery(last);
        Ok(last)
    }

    /// Schema of a table.
    pub fn schema(&self, table: &str) -> Result<Schema, DbError> {
        Ok(self.entry(table)?.0.schema().clone())
    }

    /// Current stable image of a table.
    pub fn stable(&self, table: &str) -> Result<Arc<StableTable>, DbError> {
        Ok(self.entry(table)?.0)
    }

    /// The update policy of a table.
    pub fn policy(&self, table: &str) -> Result<UpdatePolicy, DbError> {
        Ok(self.entry(table)?.1.policy())
    }

    /// Total visible row count under a fresh snapshot.
    pub fn row_count(&self, table: &str) -> Result<u64, DbError> {
        self.read_view().visible_rows(table)
    }

    /// Open a consistent read-only view for query execution; scans merge
    /// each table's committed deltas.
    pub fn read_view(&self) -> ReadView {
        self.view_inner(true)
    }

    /// A view over the stable images only — the paper's "no-updates" runs
    /// (and clean verification scans after a checkpoint).
    pub fn clean_view(&self) -> ReadView {
        self.view_inner(false)
    }

    fn view_inner(&self, with_deltas: bool) -> ReadView {
        // the commit guard spans the per-table snapshot captures, so the
        // view is one consistent cut across tables and delta structures
        let _commit = self.txn_mgr.commit_guard();
        let tables = self.tables.read();
        let views = tables
            .iter()
            .map(|(name, e)| {
                (
                    name.clone(),
                    TableView {
                        stable: e.stable.clone(),
                        delta: with_deltas.then(|| e.delta.snapshot()),
                    },
                )
            })
            .collect();
        ReadView {
            tables: views,
            io: self.io.clone(),
            clock: self.clock.clone(),
        }
    }

    /// Begin a read-write transaction (works on every table, whatever its
    /// update policy).
    pub fn begin(&self) -> DbTxn<'_> {
        let _commit = self.txn_mgr.commit_guard();
        let (id, start_seq) = self.txn_mgr.start_txn();
        let tables = self.tables.read();
        let snaps = tables
            .iter()
            .map(|(name, e)| {
                (
                    name.clone(),
                    dml::TxnTable::new(e.stable.clone(), e.delta.clone(), e.delta.snapshot()),
                )
            })
            .collect();
        DbTxn::new(self, id, start_seq, snaps)
    }

    /// Migrate the write-optimised delta layer into the read-optimised one
    /// when it exceeds `threshold_bytes` (the paper's Propagate policy).
    /// Returns whether a flush happened. Serialized against checkpoints of
    /// the same table through the per-table maintenance mutex; commits and
    /// readers are never blocked.
    pub fn maybe_flush(&self, table: &str, threshold_bytes: usize) -> Result<bool, DbError> {
        let (delta, maint) = self.maint_entry(table)?;
        let _maint = maint.lock();
        if delta.write_bytes() > threshold_bytes {
            Ok(delta.flush())
        } else {
            Ok(false)
        }
    }

    /// Checkpoint: materialise all committed deltas into a fresh stable
    /// image and retire them from the table's update structure.
    ///
    /// The expensive stable rewrite runs *off* the commit guard against a
    /// pinned delta snapshot: commits keep landing and read views keep
    /// opening for the whole merge. Only the pin (phase 1) and the final
    /// `Arc` swap + delta reset (phase 3) take the guard; a WAL checkpoint
    /// marker is appended atomically with the swap so recovery replays
    /// exactly the commits the new image does not contain. Concurrent
    /// maintenance of the same table is serialized by the per-table
    /// maintenance mutex.
    pub fn checkpoint(&self, table: &str) -> Result<bool, DbError> {
        self.checkpoint_observed(table, || {})
    }

    /// [`Database::checkpoint`] with an observer invoked during phase 2,
    /// while the stable rewrite runs off-lock. The closure may open views,
    /// scan, and commit transactions against this database — that those
    /// operations complete *during* a checkpoint is the non-blocking
    /// guarantee, and tests pin it down through this seam. It must not
    /// start maintenance on the same table (the per-table maintenance
    /// mutex is held).
    pub fn checkpoint_observed(
        &self,
        table: &str,
        during_merge: impl FnOnce(),
    ) -> Result<bool, DbError> {
        let (delta, maint) = self.maint_entry(table)?;
        let _maint = maint.lock();
        // Phase 1 — pin: capture the delta to fold and the image to fold it
        // into, one consistent cut under the commit guard.
        let (pin, stable) = {
            let _commit = self.txn_mgr.commit_guard();
            let seq = self.txn_mgr.seq();
            match delta.checkpoint_pin(seq) {
                Some(pin) => (pin, self.entry(table)?.0),
                None => return Ok(false),
            }
        };
        // Phase 2 — merge, off every lock: commits and read views proceed.
        // A failed merge must abort the pin, releasing the store's pin
        // window so the table is ready for the next attempt.
        let fresh = match delta.checkpoint_merge(&pin, &stable, &self.io) {
            Ok(fresh) => fresh,
            Err(e) => {
                delta.checkpoint_abort(pin);
                return Err(e);
            }
        };
        during_merge();
        // Phase 3 — install: marker, image swap and delta reset, atomic
        // under the commit guard.
        {
            let _commit = self.txn_mgr.commit_guard();
            if let Err(e) = self.txn_mgr.log_checkpoint(table, pin.seq) {
                delta.checkpoint_abort(pin);
                return Err(e.into());
            }
            if let Some(fresh) = fresh {
                self.tables
                    .write()
                    .get_mut(table)
                    .expect("maintenance mutex pins the entry")
                    .stable = Arc::new(fresh);
            }
            delta.checkpoint_install(pin);
        }
        Ok(true)
    }
}

// The maintenance scheduler (and any server frontend) shares one
// `Arc<Database>` across threads; views travel to scanner threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<ReadView>();
};

/// Declarative description of one table scan — the single entry point the
/// former `scan` / `scan_ranged` / `scan_cols` trio now forwards to.
///
/// Projection is by column index or by name; the scan can additionally be
/// restricted to an inclusive sort-key prefix range (served by the sparse
/// index) and/or a visible-rid window `[lo, hi)` (positions in the merged
/// image — what the positional DML uses to collect pre-images with early
/// exit).
///
/// ```text
/// view.scan_with("t", ScanSpec::named(&["qty", "price"]))?;
/// view.scan_with("t", ScanSpec::all().rid_range(100, 200))?;
/// txn.scan_with("t", ScanSpec::cols(vec![0]).key_range(lo, hi))?;
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScanSpec {
    proj: ScanProj,
    bounds: ScanBounds,
    rid_range: Option<(u64, u64)>,
}

#[derive(Debug, Clone, Default)]
enum ScanProj {
    /// Every column, in schema order.
    #[default]
    All,
    /// Column indices, in projection order.
    Cols(Vec<usize>),
    /// Column names, resolved against the schema at scan time.
    Names(Vec<String>),
}

impl ScanSpec {
    /// Project every column.
    pub fn all() -> Self {
        ScanSpec::default()
    }

    /// Project by column index.
    pub fn cols(cols: Vec<usize>) -> Self {
        ScanSpec {
            proj: ScanProj::Cols(cols),
            ..ScanSpec::default()
        }
    }

    /// Project by column name.
    pub fn named<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        ScanSpec {
            proj: ScanProj::Names(names.into_iter().map(Into::into).collect()),
            ..ScanSpec::default()
        }
    }

    /// Restrict to an inclusive sort-key prefix range.
    pub fn bounds(mut self, bounds: ScanBounds) -> Self {
        self.bounds = bounds;
        self
    }

    /// Restrict to the inclusive sort-key prefix range `[lo, hi]`.
    pub fn key_range(self, lo: Vec<Value>, hi: Vec<Value>) -> Self {
        self.bounds(ScanBounds {
            lo: Some(lo),
            hi: Some(hi),
        })
    }

    /// Restrict the *output* to visible positions `[lo, hi)`; the scan
    /// stops as soon as it passes `hi`.
    pub fn rid_range(mut self, lo: u64, hi: u64) -> Self {
        self.rid_range = Some((lo, hi));
        self
    }

    /// Resolve the projection against `schema`.
    fn resolve(&self, table: &str, schema: &Schema) -> Result<Vec<usize>, DbError> {
        match &self.proj {
            ScanProj::All => Ok((0..schema.len()).collect()),
            ScanProj::Cols(cols) => {
                if let Some(&c) = cols.iter().find(|&&c| c >= schema.len()) {
                    return Err(DbError::UnknownColumn {
                        table: table.to_string(),
                        column: format!("#{c}"),
                    });
                }
                Ok(cols.clone())
            }
            ScanProj::Names(names) => names
                .iter()
                .map(|n| {
                    schema.try_col(n).ok_or_else(|| DbError::UnknownColumn {
                        table: table.to_string(),
                        column: n.clone(),
                    })
                })
                .collect(),
        }
    }

    /// Build the scan over an already-resolved table snapshot.
    pub(crate) fn open<'a>(
        &self,
        table: &str,
        stable: &'a StableTable,
        layers: DeltaLayers<'a>,
        io: IoTracker,
        clock: ScanClock,
    ) -> Result<TableScan<'a>, DbError> {
        let proj = self.resolve(table, stable.schema())?;
        let mut scan = TableScan::ranged(stable, layers, proj, self.bounds.clone(), io, clock);
        if let Some((lo, hi)) = self.rid_range {
            scan.clamp_rids(lo, hi);
        }
        Ok(scan)
    }
}

/// A consistent, immutable multi-table view for query execution.
pub struct ReadView {
    tables: HashMap<String, TableView>,
    pub io: IoTracker,
    pub clock: ScanClock,
}

/// Per-table snapshot inside a [`ReadView`].
pub struct TableView {
    pub stable: Arc<StableTable>,
    /// Committed delta snapshot; `None` in a [`Database::clean_view`].
    delta: Option<Arc<dyn DeltaSnapshot>>,
}

impl TableView {
    /// The delta layers a scan of this table must merge.
    pub fn layers(&self) -> DeltaLayers<'_> {
        match &self.delta {
            Some(d) => d.layers(),
            None => DeltaLayers::None,
        }
    }

    /// Net visible-row change relative to the stable image.
    pub fn delta_total(&self) -> i64 {
        self.delta.as_ref().map_or(0, |d| d.delta_total())
    }
}

impl ReadView {
    pub fn table(&self, name: &str) -> Result<&TableView, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Column index by name.
    pub fn col(&self, table: &str, column: &str) -> Result<usize, DbError> {
        self.table(table)?
            .stable
            .schema()
            .try_col(column)
            .ok_or_else(|| DbError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            })
    }

    /// Visible row count of `table` under this view.
    pub fn visible_rows(&self, name: &str) -> Result<u64, DbError> {
        let t = self.table(name)?;
        Ok((t.stable.row_count() as i64 + t.delta_total()) as u64)
    }

    /// Open a scan described by a [`ScanSpec`] — the one scan entry point;
    /// everything below forwards here.
    pub fn scan_with(&self, table: &str, spec: ScanSpec) -> Result<TableScan<'_>, DbError> {
        let t = self.table(table)?;
        spec.open(
            table,
            &t.stable,
            t.layers(),
            self.io.clone(),
            self.clock.clone(),
        )
    }

    /// Full-table scan with projection (column indices). Thin wrapper over
    /// [`ReadView::scan_with`].
    pub fn scan(&self, table: &str, proj: Vec<usize>) -> Result<TableScan<'_>, DbError> {
        self.scan_with(table, ScanSpec::cols(proj))
    }

    /// Ranged scan over inclusive sort-key prefix bounds (sparse-index
    /// assisted). Thin wrapper over [`ReadView::scan_with`].
    pub fn scan_ranged(
        &self,
        table: &str,
        proj: Vec<usize>,
        bounds: ScanBounds,
    ) -> Result<TableScan<'_>, DbError> {
        self.scan_with(table, ScanSpec::cols(proj).bounds(bounds))
    }

    /// Scan projecting columns by name (plan-writing convenience). Thin
    /// wrapper over [`ReadView::scan_with`].
    pub fn scan_cols(&self, table: &str, cols: &[&str]) -> Result<TableScan<'_>, DbError> {
        self.scan_with(table, ScanSpec::named(cols.iter().copied()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::ValueType;
    use exec::run_to_rows;

    fn inventory_db(policy: UpdatePolicy) -> Database {
        let db = Database::new();
        let schema = Schema::from_pairs(&[
            ("store", ValueType::Str),
            ("prod", ValueType::Str),
            ("new", ValueType::Bool),
            ("qty", ValueType::Int),
        ]);
        let rows: Vec<Tuple> = [
            ("London", "chair", false, 30i64),
            ("London", "stool", false, 10),
            ("London", "table", false, 20),
            ("Paris", "rug", false, 1),
            ("Paris", "stool", false, 5),
        ]
        .iter()
        .map(|(s, p, n, q)| {
            vec![
                Value::from(*s),
                Value::from(*p),
                Value::from(*n),
                Value::from(*q),
            ]
        })
        .collect();
        db.create_table(
            TableMeta::new("inventory", schema, vec![0, 1]),
            TableOptions {
                block_rows: 2,
                compressed: true,
                policy,
                ..TableOptions::default()
            },
            rows,
        )
        .unwrap();
        db
    }

    fn all_rows(db: &Database) -> Vec<Tuple> {
        let view = db.read_view();
        let mut scan = view.scan("inventory", vec![0, 1, 2, 3]).unwrap();
        run_to_rows(&mut scan)
    }

    fn clean_rows(db: &Database) -> Vec<Tuple> {
        let view = db.clean_view();
        let mut scan = view.scan("inventory", vec![0, 1, 2, 3]).unwrap();
        run_to_rows(&mut scan)
    }

    /// The paper's BATCH1..3 sequence, applied through the unified DML.
    fn run_paper_batches(db: &Database) {
        // BATCH1
        let mut t = db.begin();
        for (s, p, q) in [
            ("Berlin", "table", 10i64),
            ("Berlin", "cloth", 5),
            ("Berlin", "chair", 20),
        ] {
            t.insert("inventory", vec![s.into(), p.into(), true.into(), q.into()])
                .unwrap();
        }
        t.commit().unwrap();

        // BATCH2
        use exec::expr::{col, lit};
        let mut t = db.begin();
        t.update_where(
            "inventory",
            col(0).eq(lit("Berlin")).and(col(1).eq(lit("cloth"))),
            vec![(3, lit(1i64))],
        )
        .unwrap();
        t.update_where(
            "inventory",
            col(0).eq(lit("London")).and(col(1).eq(lit("stool"))),
            vec![(3, lit(9i64))],
        )
        .unwrap();
        t.delete_where(
            "inventory",
            col(0).eq(lit("Berlin")).and(col(1).eq(lit("table"))),
        )
        .unwrap();
        t.delete_where(
            "inventory",
            col(0).eq(lit("Paris")).and(col(1).eq(lit("rug"))),
        )
        .unwrap();
        t.commit().unwrap();

        // BATCH3
        let mut t = db.begin();
        for (s, p) in [("Paris", "rack"), ("London", "rack"), ("Berlin", "rack")] {
            t.insert(
                "inventory",
                vec![s.into(), p.into(), true.into(), 4i64.into()],
            )
            .unwrap();
        }
        t.commit().unwrap();
    }

    fn figure13_keys() -> Vec<(String, String)> {
        vec![
            ("Berlin".into(), "chair".into()),
            ("Berlin".into(), "cloth".into()),
            ("Berlin".into(), "rack".into()),
            ("London".into(), "chair".into()),
            ("London".into(), "rack".into()),
            ("London".into(), "stool".into()),
            ("London".into(), "table".into()),
            ("Paris".into(), "rack".into()),
            ("Paris".into(), "stool".into()),
        ]
    }

    #[test]
    fn create_and_scan() {
        let db = inventory_db(UpdatePolicy::Pdt);
        assert_eq!(clean_rows(&db).len(), 5);
        assert_eq!(db.row_count("inventory").unwrap(), 5);
    }

    #[test]
    fn paper_batches_through_engine_both_policies() {
        for policy in ALL_POLICIES {
            let db = inventory_db(policy);
            run_paper_batches(&db);
            let rows = all_rows(&db);
            let keys: Vec<(String, String)> = rows
                .iter()
                .map(|r| (r[0].as_str().to_string(), r[1].as_str().to_string()))
                .collect();
            assert_eq!(keys, figure13_keys(), "{policy:?}");
        }
    }

    #[test]
    fn pdt_and_vdt_tables_produce_identical_images() {
        let pdt_db = inventory_db(UpdatePolicy::Pdt);
        let vdt_db = inventory_db(UpdatePolicy::Vdt);
        run_paper_batches(&pdt_db);
        run_paper_batches(&vdt_db);
        assert_eq!(all_rows(&pdt_db), all_rows(&vdt_db));
    }

    #[test]
    fn duplicate_key_rejected() {
        for policy in ALL_POLICIES {
            let db = inventory_db(policy);
            let mut t = db.begin();
            let err = t
                .insert(
                    "inventory",
                    vec!["London".into(), "chair".into(), true.into(), 1i64.into()],
                )
                .unwrap_err();
            assert!(matches!(err, DbError::DuplicateKey { .. }), "{policy:?}");
            t.abort();
        }
    }

    #[test]
    fn checkpoint_preserves_view_and_resets_layers() {
        for policy in ALL_POLICIES {
            let db = inventory_db(policy);
            let mut t = db.begin();
            t.insert(
                "inventory",
                vec!["Oslo".into(), "desk".into(), true.into(), 2i64.into()],
            )
            .unwrap();
            t.delete_where("inventory", exec::expr::col(1).eq(exec::expr::lit("rug")))
                .unwrap();
            t.commit().unwrap();
            let before = all_rows(&db);
            assert!(db.checkpoint("inventory").unwrap(), "{policy:?}");
            assert_eq!(all_rows(&db), before, "{policy:?}");
            // clean scan of the new image equals the merged view
            assert_eq!(clean_rows(&db), before, "{policy:?}");
            // idempotent when clean
            assert!(!db.checkpoint("inventory").unwrap(), "{policy:?}");
        }
    }

    #[test]
    fn checkpoint_abort_releases_pin_window() {
        // a failed merge aborts the pin; the store must come out exactly
        // as if the checkpoint never started — commits retained during
        // the window are dropped from the residual log (they are still in
        // the committed delta) and the next pin succeeds
        for policy in ALL_POLICIES {
            let db = inventory_db(policy);
            let mut t = db.begin();
            t.insert(
                "inventory",
                vec!["Oslo".into(), "desk".into(), true.into(), 2i64.into()],
            )
            .unwrap();
            t.commit().unwrap();

            let (_, delta) = db.entry("inventory").unwrap();
            let pin = delta.checkpoint_pin(db.txn_mgr.seq()).unwrap();
            // a commit lands inside the pin window...
            let mut t = db.begin();
            t.insert(
                "inventory",
                vec!["Rome".into(), "lamp".into(), true.into(), 3i64.into()],
            )
            .unwrap();
            t.commit().unwrap();
            // ...then the merge "fails" and the pin is abandoned
            delta.checkpoint_abort(pin);

            let before = all_rows(&db);
            assert_eq!(before.len(), 7, "{policy:?}");
            // the next checkpoint starts from scratch and folds everything
            assert!(db.checkpoint("inventory").unwrap(), "{policy:?}");
            assert_eq!(all_rows(&db), before, "{policy:?}");
            assert_eq!(clean_rows(&db), before, "{policy:?}");
        }
    }

    #[test]
    fn flush_threshold_policy() {
        let db = inventory_db(UpdatePolicy::Pdt);
        assert!(!db.maybe_flush("inventory", usize::MAX).unwrap());
        let mut t = db.begin();
        t.insert(
            "inventory",
            vec!["Ams".into(), "x".into(), true.into(), 1i64.into()],
        )
        .unwrap();
        t.commit().unwrap();
        assert!(db.maybe_flush("inventory", 0).unwrap());
        // view unchanged after flush
        assert_eq!(all_rows(&db).len(), 6);
    }

    #[test]
    fn sort_key_update_is_delete_plus_insert() {
        for policy in ALL_POLICIES {
            let db = inventory_db(policy);
            let mut t = db.begin();
            // rename London/table -> London/bench (SK column!)
            t.update_where(
                "inventory",
                exec::expr::col(1).eq(exec::expr::lit("table")),
                vec![(1, exec::expr::lit("bench"))],
            )
            .unwrap();
            t.commit().unwrap();
            let rows = all_rows(&db);
            let prods: Vec<&str> = rows.iter().map(|r| r[1].as_str()).collect();
            assert!(prods.contains(&"bench") && !prods.contains(&"table"));
            // order maintained: bench sorts before chair
            assert_eq!(rows[0][1].as_str(), "bench", "{policy:?}");
            assert_eq!(rows.len(), 5);
        }
    }

    #[test]
    fn db_error_displays_readable_messages_with_sources() {
        // the differential harness prints these on divergence — they must
        // read like sentences, not Debug dumps
        let cases = [
            (
                DbError::UnknownTable("inv".into()),
                "unknown table inv",
                false,
            ),
            (
                DbError::UnknownColumn {
                    table: "inv".into(),
                    column: "ghost".into(),
                },
                "unknown column ghost in table inv",
                false,
            ),
            (
                DbError::DuplicateKey {
                    table: "inv".into(),
                    key: vec![Value::Int(7)],
                },
                "duplicate sort key [Int(7)] in table inv",
                false,
            ),
            (
                DbError::Conflict {
                    table: "inv".into(),
                    reason: "concurrent insert of sort key [Int(7)]".into(),
                },
                "write-write conflict on table inv: concurrent insert of sort key [Int(7)]",
                false,
            ),
            (
                DbError::BatchShape {
                    table: "inv".into(),
                    detail: "batch has 2 columns, table has 4".into(),
                },
                "batch does not fit table inv: batch has 2 columns, table has 4",
                false,
            ),
            (
                DbError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "wal gone",
                )),
                "io error: wal gone",
                true,
            ),
        ];
        use std::error::Error;
        for (err, want, has_source) in cases {
            assert_eq!(err.to_string(), want);
            assert_eq!(err.source().is_some(), has_source, "{err}");
        }
        // wrapped errors chain their source for `anyhow`-style reporting
        let err = DbError::Txn(txn::TxnError::UnknownTable("inv".into()));
        assert!(err.source().unwrap().to_string().contains("inv"));
    }

    #[test]
    fn unknown_table_errors_from_every_entry_point() {
        let db = inventory_db(UpdatePolicy::Pdt);
        assert!(matches!(db.schema("nope"), Err(DbError::UnknownTable(_))));
        assert!(matches!(db.stable("nope"), Err(DbError::UnknownTable(_))));
        assert!(matches!(db.policy("nope"), Err(DbError::UnknownTable(_))));
        assert!(matches!(
            db.row_count("nope"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            db.maybe_flush("nope", 0),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            db.checkpoint("nope"),
            Err(DbError::UnknownTable(_))
        ));

        let view = db.read_view();
        assert!(matches!(view.table("nope"), Err(DbError::UnknownTable(_))));
        assert!(matches!(
            view.col("nope", "store"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            view.col("inventory", "ghost_col"),
            Err(DbError::UnknownColumn { .. })
        ));
        assert!(matches!(
            view.visible_rows("nope"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            view.scan("nope", vec![0]),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            view.scan_cols("nope", &["store"]),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            view.scan_cols("inventory", &["ghost_col"]),
            Err(DbError::UnknownColumn { .. })
        ));

        let mut t = db.begin();
        assert!(matches!(
            t.insert("nope", vec!["x".into()]),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            t.delete_where("nope", exec::expr::lit(true)),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            t.update_where("nope", exec::expr::lit(true), vec![]),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            t.visible_rows("nope"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            t.scan("nope", vec![0]),
            Err(DbError::UnknownTable(_))
        ));
        t.abort();
    }
}
