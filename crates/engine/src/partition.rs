//! Horizontal range partitioning — the layer between [`crate::Database`]
//! and [`crate::DeltaStore`].
//!
//! A PDT indexes updates against **one** stable image, so scaling a table
//! past a single image means splitting it by sort-key range: each
//! partition owns its own stable slice *and* its own update structure
//! (any [`crate::UpdatePolicy`]), exactly how VectorWise deploys PDTs
//! over partitioned tables. Everything positional stays per-partition —
//! SIDs, RIDs, checkpoints, conflict footprints — while the engine keeps
//! the global positional API intact by mapping visible RIDs through the
//! partitions' cumulative row counts:
//!
//! ```text
//! Database
//!   └─ table ─ splits: [k₁, k₂, …]          (sort-key split points)
//!        ├─ partition 0  (keys < k₁)        StableTable ∘ DeltaStore
//!        ├─ partition 1  (k₁ ≤ keys < k₂)   StableTable ∘ DeltaStore
//!        └─ partition 2  (k₂ ≤ keys)        StableTable ∘ DeltaStore
//! ```
//!
//! The router (`route`) sends every write to the partition
//! owning its sort key (a split point belongs to the partition *above*
//! it); reads union the partitions in split order, re-basing each
//! partition's locally consecutive RIDs so scans emit globally
//! consecutive ones ([`exec::TableScan::union`], and the
//! partition-parallel [`exec::ParallelUnionScan`]). Commits validate and
//! WAL each touched partition's footprint independently, and the
//! maintenance scheduler flushes/checkpoints partitions — not tables — so
//! maintenance parallelizes across them.
//!
//! [`PartitionSpec::None`] keeps the single-partition layout and is
//! behaviorally identical to the pre-partitioning engine.

use crate::compaction::PartitionHeat;
use crate::delta::DeltaStore;
use crate::{DbError, TableOptions};
use columnar::{BlockProvenance, IoTracker, StableTable, Tuple, Value};
use parking_lot::Mutex;
use std::sync::Arc;

/// How a table is range-partitioned, chosen at
/// [`crate::Database::create_table`] time through
/// [`TableOptions::partitions`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PartitionSpec {
    /// One partition — today's behavior, the default.
    #[default]
    None,
    /// Split the bulk-loaded rows into `n` ranges of roughly equal row
    /// count (split points drawn from the loaded keys; an empty or
    /// near-empty load degrades to fewer partitions).
    Count(usize),
    /// Explicit sort-key split points, strictly ascending. `k` points
    /// make `k + 1` partitions; partitions may be empty. Each point is a
    /// non-empty prefix of the sort key, and a key equal to a point
    /// routes to the partition above it.
    SplitPoints(Vec<Vec<Value>>),
}

/// One partition: its stable slice, its update structure, and the mutex
/// serializing its maintenance (flush vs checkpoint) — commits and reads
/// never take it.
pub(crate) struct PartitionEntry {
    pub stable: Arc<StableTable>,
    pub delta: Arc<dyn DeltaStore>,
    pub maint: Arc<Mutex<()>>,
    /// Per-block delta/scan heat of the current stable slice (reset on
    /// every stable swap) — the compaction planner's input.
    pub heat: Arc<PartitionHeat>,
    /// The database's shared I/O counters, scoped to report block reads
    /// to `heat`. Built once here so every scan path (view, transaction,
    /// parallel union) charges the same tracker.
    pub heat_io: IoTracker,
    /// Provenance of the current stable slice's blocks in the image
    /// store: `(manifest seq, block index)` of the image each block's
    /// bytes were *written* in. `None` when no image covers the slice
    /// (no store attached, or never checkpointed). Incremental
    /// compaction passes this to
    /// [`columnar::ImageStore::publish_with_reuse`] so untouched blocks
    /// become references instead of rewrites.
    pub provenance: Arc<Mutex<Option<BlockProvenance>>>,
}

impl PartitionEntry {
    /// A fresh entry around `stable`/`delta`, with cold heat and no image
    /// provenance.
    pub fn new(stable: Arc<StableTable>, delta: Arc<dyn DeltaStore>, io: &IoTracker) -> Self {
        let heat = PartitionHeat::new(stable.num_blocks());
        let heat_io = io.scoped(heat.clone());
        PartitionEntry {
            stable,
            delta,
            maint: Arc::new(Mutex::new(())),
            heat,
            heat_io,
            provenance: Arc::new(Mutex::new(None)),
        }
    }
}

/// A table as the database holds it: the ordered partitions plus the
/// split points that route between them.
pub(crate) struct TableEntry {
    pub parts: Vec<PartitionEntry>,
    /// `parts.len() - 1` strictly ascending sort-key split points.
    pub splits: Vec<Vec<Value>>,
    /// Creation-time options (maintenance budgets included).
    pub opts: TableOptions,
}

/// Partition index for `key` under `splits`: the number of split points
/// at or below it (so a key equal to a split point routes *above* it).
pub(crate) fn route(splits: &[Vec<Value>], key: &[Value]) -> usize {
    splits.partition_point(|s| s.as_slice() <= key)
}

/// Build the scan segments of a partitioned table from its parts in
/// split order — the **one** place the global-RID accumulation invariant
/// (`rid_base += visible`, split order) lives. Both the read-view and
/// transaction scan paths feed their `(stable, layers, visible)` triples
/// through here, so they can never disagree on global RIDs.
pub(crate) fn build_segments<'a>(
    parts: impl Iterator<
        Item = (
            &'a columnar::StableTable,
            exec::DeltaLayers<'a>,
            u64,
            Option<columnar::IoTracker>,
        ),
    >,
) -> Vec<exec::ScanSegment<'a>> {
    let mut base = 0u64;
    parts
        .map(|(stable, layers, visible, io)| {
            let seg = exec::ScanSegment {
                stable,
                layers,
                rid_base: base,
                io,
            };
            base += visible;
            seg
        })
        .collect()
}

/// Resolve a [`PartitionSpec`] against the bulk-loaded rows into concrete
/// split points (empty ⇒ one partition). `sk_types` are the sort-key
/// columns' value types, in key order — explicit split points must match
/// them exactly, or routing would silently compare across type tags and
/// funnel every row into one partition.
pub(crate) fn derive_splits(
    table: &str,
    spec: &PartitionSpec,
    rows: &[Tuple],
    sk_cols: &[usize],
    sk_types: &[columnar::ValueType],
) -> Result<Vec<Vec<Value>>, DbError> {
    let invalid = |detail: String| DbError::Partition {
        table: table.to_string(),
        detail,
    };
    match spec {
        PartitionSpec::None => Ok(Vec::new()),
        PartitionSpec::SplitPoints(points) => {
            for p in points {
                if p.is_empty() || p.len() > sk_cols.len() {
                    return Err(invalid(format!(
                        "split point {p:?} must be a non-empty sort-key prefix (≤ {} columns)",
                        sk_cols.len()
                    )));
                }
                for (v, &want) in p.iter().zip(sk_types) {
                    if v.value_type() != Some(want) {
                        return Err(invalid(format!(
                            "split point value {v:?} does not fit sort-key type {want}"
                        )));
                    }
                }
            }
            if let Some(w) = points.windows(2).find(|w| w[0] >= w[1]) {
                return Err(invalid(format!(
                    "split points must be strictly ascending, got {:?} before {:?}",
                    w[0], w[1]
                )));
            }
            Ok(points.clone())
        }
        PartitionSpec::Count(n) => {
            if *n == 0 {
                return Err(invalid("partition count must be ≥ 1".into()));
            }
            if *n == 1 {
                return Ok(Vec::new());
            }
            let mut keys: Vec<Vec<Value>> = rows
                .iter()
                .map(|r| sk_cols.iter().map(|&c| r[c].clone()).collect())
                .collect();
            keys.sort();
            keys.dedup();
            // equi-depth split points drawn from the loaded keys; a load
            // with fewer distinct keys than partitions degrades gracefully
            let mut splits: Vec<Vec<Value>> = Vec::with_capacity(n - 1);
            for i in 1..*n {
                let idx = i * keys.len() / n;
                if idx == 0 || idx >= keys.len() {
                    continue;
                }
                if splits.last() != Some(&keys[idx]) {
                    splits.push(keys[idx].clone());
                }
            }
            Ok(splits)
        }
    }
}

/// Distribute bulk-load rows over the partitions (rows need not be
/// sorted; each partition bulk-loads and sorts its own slice).
pub(crate) fn split_rows(
    rows: Vec<Tuple>,
    splits: &[Vec<Value>],
    sk_cols: &[usize],
) -> Vec<Vec<Tuple>> {
    let nparts = splits.len() + 1;
    if nparts == 1 {
        return vec![rows];
    }
    let mut groups: Vec<Vec<Tuple>> = (0..nparts).map(|_| Vec::new()).collect();
    for row in rows {
        let key: Vec<Value> = sk_cols.iter().map(|&c| row[c].clone()).collect();
        groups[route(splits, &key)].push(row);
    }
    groups
}

/// Name a partition's PDT registers under in the [`txn::TxnManager`]
/// (single-partition tables keep the bare table name, so
/// [`PartitionSpec::None`] is bit-identical to the pre-partitioning
/// engine).
pub(crate) fn pdt_table_name(table: &str, partition: usize, nparts: usize) -> String {
    if nparts == 1 {
        table.to_string()
    } else {
        format!("{table}#{partition}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: i64) -> Vec<Value> {
        vec![Value::Int(v)]
    }

    const INT: &[columnar::ValueType] = &[columnar::ValueType::Int];

    #[test]
    fn route_sends_split_point_keys_up() {
        let splits = vec![k(10), k(20)];
        assert_eq!(route(&splits, &k(5)), 0);
        assert_eq!(route(&splits, &k(10)), 1, "split point belongs above");
        assert_eq!(route(&splits, &k(15)), 1);
        assert_eq!(route(&splits, &k(20)), 2);
        assert_eq!(route(&splits, &k(999)), 2);
    }

    #[test]
    fn count_spec_derives_equi_depth_splits() {
        let rows: Vec<Tuple> = (0..100)
            .map(|i| vec![Value::Int(i), Value::Int(0)])
            .collect();
        let splits = derive_splits("t", &PartitionSpec::Count(4), &rows, &[0], INT).unwrap();
        assert_eq!(splits, vec![k(25), k(50), k(75)]);
        // groups are balanced
        let groups = split_rows(rows, &splits, &[0]);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![25, 25, 25, 25]);
    }

    #[test]
    fn count_spec_degrades_on_tiny_loads() {
        // fewer distinct keys than partitions: fewer splits, never panic
        let rows: Vec<Tuple> = vec![vec![Value::Int(7)], vec![Value::Int(7)]];
        let splits = derive_splits("t", &PartitionSpec::Count(8), &rows, &[0], INT).unwrap();
        assert!(splits.is_empty());
        assert!(derive_splits("t", &PartitionSpec::Count(3), &[], &[0], INT)
            .unwrap()
            .is_empty());
        assert!(matches!(
            derive_splits("t", &PartitionSpec::Count(0), &[], &[0], INT),
            Err(DbError::Partition { .. })
        ));
    }

    #[test]
    fn explicit_splits_validate() {
        let ok = PartitionSpec::SplitPoints(vec![k(1), k(5)]);
        assert_eq!(derive_splits("t", &ok, &[], &[0], INT).unwrap().len(), 2);
        for bad in [
            PartitionSpec::SplitPoints(vec![k(5), k(1)]),
            PartitionSpec::SplitPoints(vec![k(5), k(5)]),
            PartitionSpec::SplitPoints(vec![vec![]]),
            PartitionSpec::SplitPoints(vec![vec![Value::Int(1), Value::Int(2)]]),
            PartitionSpec::SplitPoints(vec![vec![Value::Str("m".into())]]),
            PartitionSpec::SplitPoints(vec![vec![Value::Null]]),
        ] {
            assert!(
                matches!(
                    derive_splits("t", &bad, &[], &[0], INT),
                    Err(DbError::Partition { .. })
                ),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn split_rows_allows_empty_partitions() {
        let rows: Vec<Tuple> = vec![vec![Value::Int(100)]];
        let groups = split_rows(rows, &[k(10), k(20)], &[0]);
        assert_eq!(
            groups.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![0, 0, 1]
        );
    }
}
