//! Cross-backend differential test harness.
//!
//! Three independently implemented update structures sit behind
//! [`DeltaStore`](crate::DeltaStore); driven by identical DML they must
//! agree **bit-for-bit** — on scan images, row counts, commit/abort
//! decisions, and recovered state. [`DiffHarness`] turns that invariant
//! into an executable oracle: every workload step is applied through the
//! same transactional API to one database per [`UpdatePolicy`] *and* to
//! the executable specification [`NaiveImage`], then all four images are
//! compared. The workspace's fuzz tests, lifecycle tests and DML unit
//! tests all drive their workloads through this module, so any behavioural
//! divergence between PDT, VDT and the row store fails loudly and with a
//! readable diff.
//!
//! With [`DiffHarness::with_wal`] every database is WAL-backed, and
//! [`DiffHarness::crash_recover`] models a crash: all databases are
//! dropped and rebuilt from their base image plus WAL replay — recovery
//! state is part of the differential contract. Checkpoints in WAL mode
//! rotate the log *logically*: the engine appends a checkpoint marker at
//! the pinned commit sequence, the harness restarts its recovery base
//! from the checkpointed image, and replay skips every record the marker
//! covers — the log-truncation bargain checkpointing buys a real system,
//! stated in a way that stays correct when commits land mid-checkpoint.
//!
//! [`run_interleaved`] extends the oracle to concurrency: a fixed
//! two-transaction interleaving is executed against every policy and the
//! per-transaction commit/abort decisions plus the final image must match
//! — the PDT's TZ-set serialization, the VDT's value-wise replay and the
//! row store's run-footprint validation have to reach the same verdicts.
//!
//! [`run_concurrent_differential`] goes further: real threads. Fixed-seed
//! writer scripts on disjoint key partitions, scanner threads asserting
//! snapshot invariants on every pass, and the background
//! [`MaintenanceScheduler`](crate::MaintenanceScheduler) flushing and
//! checkpointing with tiny budgets — per-partition determinism makes the
//! final image interleaving-independent, so concurrency bugs surface as
//! differential divergence from the sequential model.

use crate::{Database, DbError, PartitionSpec, TableOptions, UpdatePolicy, ALL_POLICIES};
use columnar::{Schema, TableMeta, Tuple, Value};
use exec::expr::{col, lit, Expr};
use exec::run_to_rows;
use pdt::naive::NaiveImage;
use std::path::PathBuf;

/// Equality predicate over a full sort key (one `col = lit` conjunct per
/// key column) — how every harness statement addresses its victim row.
pub fn key_eq_pred(sk_cols: &[usize], key: &[Value]) -> Expr {
    sk_cols
        .iter()
        .zip(key)
        .map(|(&c, v)| col(c).eq(lit(v.clone())))
        .reduce(|a, b| a.and(b))
        .expect("non-empty sort key")
}

/// One database per update policy plus the naive model, driven in lockstep.
pub struct DiffHarness {
    table: String,
    schema: Schema,
    sk_cols: Vec<usize>,
    block_rows: usize,
    /// Stable image the databases were (re)built from — WAL recovery
    /// replays on top of this.
    base_rows: Vec<Tuple>,
    dbs: Vec<(UpdatePolicy, Database)>,
    model: NaiveImage,
    /// `Some(dir)`: databases are WAL-backed (one log per policy) and
    /// support [`Self::crash_recover`].
    wal_dir: Option<PathBuf>,
    /// Databases persist compressed checkpoint images (one image dir per
    /// policy under `wal_dir`) and recovery must restore checkpointed
    /// state from them: [`Self::checkpoint`] then keeps the *original*
    /// base image, so any folded history a checkpoint made unreplayable
    /// has to come back through the images — the differential contract
    /// image-based recovery is held to.
    images: bool,
    /// Range partitioning applied to every database. After the first
    /// build this is frozen to the *resolved* split points, so crash
    /// rebuilds recreate the exact partitioning the WAL's partition tags
    /// refer to.
    partitions: PartitionSpec,
}

impl DiffHarness {
    /// In-memory harness (no WAL, no recovery steps).
    pub fn new(
        table: &str,
        schema: Schema,
        sk_cols: Vec<usize>,
        rows: Vec<Tuple>,
        block_rows: usize,
    ) -> Self {
        Self::build(table, schema, sk_cols, rows, block_rows, None, false)
    }

    /// WAL-backed harness: one log file per policy under `dir` (removed on
    /// creation so every run starts clean).
    pub fn with_wal(
        dir: PathBuf,
        table: &str,
        schema: Schema,
        sk_cols: Vec<usize>,
        rows: Vec<Tuple>,
        block_rows: usize,
    ) -> Self {
        std::fs::create_dir_all(&dir).expect("harness wal dir");
        for policy in ALL_POLICIES {
            let _ = std::fs::remove_file(Self::wal_path(&dir, policy));
        }
        Self::build(table, schema, sk_cols, rows, block_rows, Some(dir), false)
    }

    /// WAL- and image-backed harness: each policy's database persists
    /// compressed checkpoint images under `dir` and
    /// [`Self::crash_recover`] exercises image-based recovery — the base
    /// image is *never* rotated by the harness, so checkpointed state must
    /// come back from disk.
    pub fn with_storage(
        dir: PathBuf,
        table: &str,
        schema: Schema,
        sk_cols: Vec<usize>,
        rows: Vec<Tuple>,
        block_rows: usize,
    ) -> Self {
        std::fs::create_dir_all(&dir).expect("harness storage dir");
        for policy in ALL_POLICIES {
            let _ = std::fs::remove_file(Self::wal_path(&dir, policy));
            let _ = std::fs::remove_dir_all(Self::image_dir(&dir, policy));
        }
        Self::build(table, schema, sk_cols, rows, block_rows, Some(dir), true)
    }

    fn wal_path(dir: &std::path::Path, policy: UpdatePolicy) -> PathBuf {
        dir.join(format!("{policy:?}.wal"))
    }

    fn image_dir(dir: &std::path::Path, policy: UpdatePolicy) -> PathBuf {
        dir.join(format!("{policy:?}.images"))
    }

    fn build(
        table: &str,
        schema: Schema,
        sk_cols: Vec<usize>,
        rows: Vec<Tuple>,
        block_rows: usize,
        wal_dir: Option<PathBuf>,
        images: bool,
    ) -> Self {
        let model = NaiveImage::new(&rows, sk_cols.clone());
        let mut h = DiffHarness {
            table: table.to_string(),
            schema,
            sk_cols,
            block_rows,
            base_rows: rows,
            dbs: Vec::new(),
            model,
            wal_dir,
            images,
            partitions: PartitionSpec::None,
        };
        h.dbs = h.make_dbs();
        h
    }

    /// Rebuild every database range-partitioned into `n` equi-depth
    /// partitions — the partitioned-vs-single-partition differential
    /// knob. Call right after construction (any prior workload is
    /// discarded). The resolved split points are frozen so WAL crash
    /// rebuilds recreate the identical partitioning.
    pub fn with_partitions(self, n: usize) -> Self {
        self.with_partition_spec(PartitionSpec::Count(n))
    }

    /// [`DiffHarness::with_partitions`] with explicit split points
    /// (empty partitions allowed) — what the proptests sweep.
    pub fn with_split_points(self, splits: Vec<Vec<Value>>) -> Self {
        self.with_partition_spec(PartitionSpec::SplitPoints(splits))
    }

    fn with_partition_spec(mut self, spec: PartitionSpec) -> Self {
        self.partitions = spec;
        if let Some(dir) = &self.wal_dir {
            for policy in ALL_POLICIES {
                let _ = std::fs::remove_file(Self::wal_path(dir, policy));
                if self.images {
                    let _ = std::fs::remove_dir_all(Self::image_dir(dir, policy));
                }
            }
        }
        self.dbs = self.make_dbs();
        let resolved = self.dbs[0]
            .1
            .partition_splits(&self.table)
            .expect("harness table exists");
        self.partitions = PartitionSpec::SplitPoints(resolved);
        self
    }

    /// Partition count of the harness databases.
    pub fn partition_count(&self) -> usize {
        self.dbs[0]
            .1
            .partition_count(&self.table)
            .expect("harness table exists")
    }

    fn make_dbs(&self) -> Vec<(UpdatePolicy, Database)> {
        ALL_POLICIES
            .iter()
            .map(|&policy| {
                let db = match &self.wal_dir {
                    Some(dir) if self.images => Database::with_storage(
                        &Self::wal_path(dir, policy),
                        &Self::image_dir(dir, policy),
                    )
                    .expect("open harness storage"),
                    Some(dir) => {
                        Database::with_wal(&Self::wal_path(dir, policy)).expect("open harness wal")
                    }
                    None => Database::new(),
                };
                db.create_table(
                    TableMeta::new(&self.table, self.schema.clone(), self.sk_cols.clone()),
                    TableOptions {
                        block_rows: self.block_rows,
                        compressed: true,
                        policy,
                        partitions: self.partitions.clone(),
                        ..TableOptions::default()
                    },
                    self.base_rows.clone(),
                )
                .expect("harness create_table");
                (policy, db)
            })
            .collect()
    }

    /// The reference model.
    pub fn model(&self) -> &NaiveImage {
        &self.model
    }

    /// The databases, for workload steps the harness does not wrap.
    pub fn dbs(&self) -> impl Iterator<Item = (UpdatePolicy, &Database)> {
        self.dbs.iter().map(|(p, db)| (*p, db))
    }

    fn key_of(&self, row: &[Value]) -> Vec<Value> {
        self.sk_cols.iter().map(|&c| row[c].clone()).collect()
    }

    fn key_pred(&self, key: &[Value]) -> Expr {
        key_eq_pred(&self.sk_cols, key)
    }

    fn merged_image(db: &Database, table: &str, ncols: usize) -> Vec<Tuple> {
        let view = db.read_view();
        run_to_rows(&mut view.scan(table, (0..ncols).collect()).unwrap())
    }

    /// Assert every database's merged image, visible row count and policy
    /// tag agree with the model.
    pub fn assert_agree(&self, context: &str) {
        let ncols = self.schema.len();
        for (policy, db) in &self.dbs {
            assert_eq!(
                db.policy(&self.table).unwrap(),
                *policy,
                "{context}: policy tag"
            );
            let image = Self::merged_image(db, &self.table, ncols);
            assert_eq!(
                image,
                self.model.rows(),
                "{context}: {policy:?} image diverged from the model"
            );
            assert_eq!(
                db.row_count(&self.table).unwrap(),
                self.model.len() as u64,
                "{context}: {policy:?} row count"
            );
        }
    }

    /// Assert every database's *clean* (stable-image-only) scan equals the
    /// model — meaningful right after a checkpoint.
    pub fn assert_clean_agree(&self, context: &str) {
        let ncols = self.schema.len();
        for (policy, db) in &self.dbs {
            let view = db.clean_view();
            let clean = run_to_rows(&mut view.scan(&self.table, (0..ncols).collect()).unwrap());
            assert_eq!(
                clean,
                self.model.rows(),
                "{context}: {policy:?} clean image diverged"
            );
        }
    }

    /// INSERT `tuple` through one committed transaction per database.
    /// Returns `false` when the model predicts a duplicate sort key — in
    /// which case every database must reject it identically.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        let key = self.key_of(&tuple);
        let dup = self.model.rows().iter().any(|r| self.key_of(r) == key);
        for (policy, db) in &self.dbs {
            let mut txn = db.begin();
            let res = txn.insert(&self.table, tuple.clone());
            if dup {
                assert!(
                    matches!(res, Err(DbError::DuplicateKey { .. })),
                    "{policy:?}: duplicate insert of {key:?} must be rejected, got {res:?}"
                );
                txn.abort();
            } else {
                res.unwrap_or_else(|e| panic!("{policy:?}: insert of {key:?} failed: {e}"));
                txn.commit()
                    .unwrap_or_else(|e| panic!("{policy:?}: insert commit failed: {e}"));
            }
        }
        if !dup {
            let pos = self
                .model
                .rows()
                .iter()
                .position(|r| self.key_of(r) > key)
                .unwrap_or(self.model.len());
            self.model.insert(pos, tuple);
        }
        self.assert_agree("after insert");
        !dup
    }

    /// APPEND a whole batch through one committed transaction per
    /// database. Returns `false` when the statement carries a duplicate
    /// sort key (intra-batch or against the model's visible image) — then
    /// every database must reject the whole statement identically.
    pub fn append(&mut self, rows: Vec<Tuple>) -> bool {
        let keys: Vec<Vec<Value>> = rows.iter().map(|r| self.key_of(r)).collect();
        let mut sorted_keys = keys.clone();
        sorted_keys.sort();
        let dup = sorted_keys.windows(2).any(|w| w[0] == w[1])
            || self
                .model
                .rows()
                .iter()
                .any(|r| keys.contains(&self.key_of(r)));
        let types = self.schema.types();
        for (policy, db) in &self.dbs {
            let mut txn = db.begin();
            let res = txn.append(&self.table, exec::Batch::from_rows(&types, &rows));
            if dup {
                assert!(
                    matches!(res, Err(DbError::DuplicateKey { .. })),
                    "{policy:?}: duplicate batch append must be rejected, got {res:?}"
                );
                txn.abort();
            } else {
                let n = res.unwrap_or_else(|e| panic!("{policy:?}: batch append failed: {e}"));
                assert_eq!(n, rows.len(), "{policy:?}");
                txn.commit()
                    .unwrap_or_else(|e| panic!("{policy:?}: append commit failed: {e}"));
            }
        }
        if !dup {
            for row in rows {
                let key = self.key_of(&row);
                let pos = self
                    .model
                    .rows()
                    .iter()
                    .position(|r| self.key_of(r) > key)
                    .unwrap_or(self.model.len());
                self.model.insert(pos, row);
            }
        }
        self.assert_agree("after batch append");
        !dup
    }

    /// DELETE the model's visible rows at `rids` (any order, duplicates
    /// ignored) through one positional `delete_rids` statement per
    /// database.
    pub fn delete_rids(&mut self, rids: &[u64]) {
        let mut sorted = rids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.retain(|&r| (r as usize) < self.model.len());
        for (policy, db) in &self.dbs {
            let mut txn = db.begin();
            let n = txn
                .delete_rids(&self.table, &sorted)
                .unwrap_or_else(|e| panic!("{policy:?}: delete_rids failed: {e}"));
            assert_eq!(n, sorted.len(), "{policy:?}");
            txn.commit()
                .unwrap_or_else(|e| panic!("{policy:?}: delete_rids commit failed: {e}"));
        }
        for &r in sorted.iter().rev() {
            self.model.delete(r as usize);
        }
        self.assert_agree("after delete_rids");
    }

    /// UPDATE a non-sort-key column of the model's visible rows at `rids`
    /// through one positional `update_col` statement per database.
    pub fn update_col(&mut self, rids: &[u64], col: usize, values: &[Value]) {
        assert!(
            !self.sk_cols.contains(&col),
            "update_col harness op is for non-key columns; use modify() for key rewrites"
        );
        let mut pairs: Vec<(u64, Value)> = rids
            .iter()
            .copied()
            .zip(values.iter().cloned())
            .filter(|(r, _)| (*r as usize) < self.model.len())
            .collect();
        pairs.sort_by_key(|p| p.0);
        pairs.dedup_by_key(|p| p.0);
        let rids: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let mut vals = columnar::ColumnVec::new(self.schema.vtype(col));
        for (_, v) in &pairs {
            vals.push(v);
        }
        for (policy, db) in &self.dbs {
            let mut txn = db.begin();
            let n = txn
                .update_col(&self.table, &rids, col, vals.clone())
                .unwrap_or_else(|e| panic!("{policy:?}: update_col failed: {e}"));
            assert_eq!(n, rids.len(), "{policy:?}");
            txn.commit()
                .unwrap_or_else(|e| panic!("{policy:?}: update_col commit failed: {e}"));
        }
        for (r, v) in pairs {
            self.model.modify(r as usize, col, v);
        }
        self.assert_agree("after update_col");
    }

    /// DELETE the model's visible row `rid` through one committed
    /// transaction per database (victims located by sort key).
    pub fn delete(&mut self, rid: usize) {
        let key = self.key_of(&self.model.rows()[rid]);
        let pred = self.key_pred(&key);
        for (policy, db) in &self.dbs {
            let mut txn = db.begin();
            let n = txn
                .delete_where(&self.table, pred.clone())
                .unwrap_or_else(|e| panic!("{policy:?}: delete of {key:?} failed: {e}"));
            assert_eq!(n, 1, "{policy:?}: delete of {key:?} must hit one row");
            txn.commit()
                .unwrap_or_else(|e| panic!("{policy:?}: delete commit failed: {e}"));
        }
        self.model.delete(rid);
        self.assert_agree("after delete");
    }

    /// UPDATE column `m_col` of the model's visible row `rid` through one
    /// committed transaction per database. Sort-key columns are allowed —
    /// the engines rewrite those as delete + insert, and the model follows
    /// by repositioning the row. Returns `false` when the rewrite would
    /// collide with an existing key (then every database must reject it).
    pub fn modify(&mut self, rid: usize, m_col: usize, value: Value) -> bool {
        let pre = self.model.rows()[rid].clone();
        let key = self.key_of(&pre);
        let pred = self.key_pred(&key);
        let touches_sk = self.sk_cols.contains(&m_col);
        let mut post = pre.clone();
        post[m_col] = value.clone();
        let new_key = self.key_of(&post);
        let collides = touches_sk
            && new_key != key
            && self.model.rows().iter().any(|r| self.key_of(r) == new_key);
        for (policy, db) in &self.dbs {
            let mut txn = db.begin();
            let res =
                txn.update_where(&self.table, pred.clone(), vec![(m_col, lit(value.clone()))]);
            if collides {
                assert!(
                    matches!(res, Err(DbError::DuplicateKey { .. })),
                    "{policy:?}: key rewrite {key:?}->{new_key:?} must collide, got {res:?}"
                );
                txn.abort();
            } else {
                let n = res.unwrap_or_else(|e| panic!("{policy:?}: modify of {key:?} failed: {e}"));
                assert_eq!(n, 1, "{policy:?}: modify of {key:?} must hit one row");
                txn.commit()
                    .unwrap_or_else(|e| panic!("{policy:?}: modify commit failed: {e}"));
            }
        }
        if !collides {
            if touches_sk {
                self.model.delete(rid);
                let pos = self
                    .model
                    .rows()
                    .iter()
                    .position(|r| self.key_of(r) > new_key)
                    .unwrap_or(self.model.len());
                self.model.insert(pos, post);
            } else {
                self.model.modify(rid, m_col, value);
            }
        }
        self.assert_agree("after modify");
        !collides
    }

    /// Migrate every database's write-optimised layer (no-op for the
    /// single-layer structures) and re-verify.
    pub fn flush(&mut self) {
        for (_, db) in &self.dbs {
            db.maybe_flush(&self.table, 0).unwrap();
        }
        self.assert_agree("after flush");
    }

    /// Checkpoint every database into a fresh stable image and verify both
    /// the merged and the clean views. In WAL mode this also rotates the
    /// logs *logically*: each checkpoint appends a marker carrying its
    /// pinned commit sequence, the databases stay live, and a later
    /// [`Self::crash_recover`] rebuilds from the checkpointed image while
    /// recovery skips every record the marker covers — the log-truncation
    /// bargain checkpointing buys a real system, without assuming commits
    /// pause around the checkpoint.
    pub fn checkpoint(&mut self) {
        for (policy, db) in &self.dbs {
            db.checkpoint(&self.table)
                .unwrap_or_else(|e| panic!("{policy:?}: checkpoint failed: {e}"));
        }
        self.assert_agree("after checkpoint");
        self.assert_clean_agree("after checkpoint");
        if self.wal_dir.is_some() && !self.images {
            // recovery restarts from the checkpointed image — but only in
            // plain WAL mode, where the harness must simulate the image
            // hand-off. With persisted images the engine recovers the
            // checkpointed state from disk on its own, so the base stays
            // put and any folded history must come back via the images.
            self.base_rows = self.model.rows().to_vec();
        }
    }

    /// Attempt a checkpoint that dies *inside the crash window*: the
    /// compressed image is published (manifest swapped) but the process
    /// "crashes" before the WAL checkpoint marker lands. Every database
    /// must report the simulated failure (so each policy's delta must be
    /// non-empty going in — an empty delta never reaches the publish) and
    /// roll its in-memory pin back; on-disk state is left exactly in the
    /// window a following [`Self::crash_recover`] has to tolerate.
    /// Requires [`Self::with_storage`].
    pub fn checkpoint_crashing_before_marker(&mut self) {
        assert!(
            self.images,
            "crash-window checkpoints need an image-backed harness"
        );
        for (policy, db) in &self.dbs {
            db.crash_after_image_publish(true);
            let res = db.checkpoint(&self.table);
            assert!(
                res.is_err(),
                "{policy:?}: armed checkpoint must die in the crash window, got {res:?}"
            );
            db.crash_after_image_publish(false);
        }
        // the aborted pin must leave the live image untouched
        self.assert_agree("after crashed checkpoint");
    }

    /// Incrementally compact stable blocks `[b0, b1)` of partition `p`
    /// in every database and verify the merged view — the compaction
    /// differential step. The range is clamped per database to its
    /// current block count (compaction re-blocks, so geometries drift
    /// apart between policies only in row count, never in validity);
    /// empty ranges, out-of-range partitions and pin-less (delta-free)
    /// partitions are no-ops, exactly as the scheduler treats them.
    pub fn compact(&mut self, p: usize, b0: usize, b1: usize) {
        for (policy, db) in &self.dbs {
            if p >= db.partition_count(&self.table).expect("harness table") {
                continue;
            }
            let nb = db
                .stable_partition(&self.table, p)
                .expect("harness partition")
                .num_blocks();
            let (b0, b1) = (b0.min(nb), b1.min(nb));
            if b0 >= b1 {
                continue;
            }
            db.compact_range(&self.table, p, b0, b1)
                .unwrap_or_else(|e| panic!("{policy:?}: compact_range failed: {e}"));
        }
        self.assert_agree("after compaction");
    }

    /// Attempt a range compaction that dies *inside the crash window*:
    /// the spliced image (with block reuse) is published but the process
    /// "crashes" before the WAL range marker lands. Every database must
    /// report the simulated failure — so the targeted partition's delta
    /// must be non-empty and the (clamped) range valid going in — and
    /// roll its pin back; on-disk state is left exactly in the window a
    /// following [`Self::crash_recover`] has to tolerate. Requires
    /// [`Self::with_storage`].
    pub fn compact_crashing_before_marker(&mut self, p: usize, b0: usize, b1: usize) {
        assert!(
            self.images,
            "crash-window compactions need an image-backed harness"
        );
        for (policy, db) in &self.dbs {
            let nb = db
                .stable_partition(&self.table, p)
                .expect("harness partition")
                .num_blocks();
            let (b0, b1) = (b0.min(nb), b1.min(nb));
            db.crash_after_image_publish(true);
            let res = db.compact_range(&self.table, p, b0, b1);
            assert!(
                res.is_err(),
                "{policy:?}: armed compaction must die in the crash window, got {res:?}"
            );
            db.crash_after_image_publish(false);
        }
        // the aborted pin must leave the live image untouched
        self.assert_agree("after crashed compaction");
    }

    /// Crash: drop every database and rebuild it from its base image plus
    /// WAL replay, then verify the recovered state against the model.
    /// Panics unless the harness was built with [`Self::with_wal`].
    pub fn crash_recover(&mut self) {
        let dir = self
            .wal_dir
            .clone()
            .expect("crash_recover requires a WAL-backed harness");
        self.dbs.clear(); // drop live databases (the crash)
        self.dbs = self.make_dbs();
        for (policy, db) in &self.dbs {
            db.recover_from(&Self::wal_path(&dir, *policy))
                .unwrap_or_else(|e| panic!("{policy:?}: WAL recovery failed: {e}"));
        }
        self.assert_agree("after crash recovery");
    }
}

// --- Batch ≡ row-at-a-time differential harness --------------------------

/// Two WAL-backed databases of the *same* update policy, driven in
/// lockstep: one through the batch-first statements ([`crate::DbTxn::append`],
/// [`crate::DbTxn::delete_rids`], [`crate::DbTxn::update_col`]), one
/// through the equivalent row-at-a-time loops. After every step both must
/// agree on the merged image, visible row count, commit/abort/error
/// verdicts — and, via [`BatchRowHarness::crash_recover`], on the state
/// rebuilt from base image + WAL replay, which pins down that the batched
/// `INS_BATCH`/`DEL_BATCH` log encodings replay to exactly what the
/// per-row entries would have.
///
/// The table is fixed at `(k INT, a INT, b INT)` with sort key `k` —
/// enough to cover fresh inserts, reinserts over ghosts, sort-key
/// rewrites, and disjoint/overlapping column updates.
pub struct BatchRowHarness {
    policy: UpdatePolicy,
    base_rows: Vec<Tuple>,
    block_rows: usize,
    wal_dir: PathBuf,
    batched: Database,
    rowwise: Database,
}

/// The two driving modes of the harness.
const MODES: [&str; 2] = ["batched", "rowwise"];

impl BatchRowHarness {
    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("k", columnar::ValueType::Int),
            ("a", columnar::ValueType::Int),
            ("b", columnar::ValueType::Int),
        ])
    }

    /// WAL-backed pair under `dir` (recreated clean) over `base_keys` rows
    /// with keys `0, 10, 20, …`.
    pub fn new(dir: PathBuf, policy: UpdatePolicy, base_keys: i64, block_rows: usize) -> Self {
        std::fs::create_dir_all(&dir).expect("harness wal dir");
        for mode in MODES {
            let _ = std::fs::remove_file(dir.join(format!("{mode}.wal")));
        }
        let base_rows: Vec<Tuple> = (0..base_keys)
            .map(|i| vec![Value::Int(i * 10), Value::Int(i), Value::Int(-i)])
            .collect();
        let mut h = BatchRowHarness {
            policy,
            base_rows,
            block_rows,
            wal_dir: dir,
            batched: Database::new(),
            rowwise: Database::new(),
        };
        let (batched, rowwise) = h.make_dbs();
        h.batched = batched;
        h.rowwise = rowwise;
        h.assert_agree("fresh harness");
        h
    }

    fn make_db(&self, mode: &str) -> Database {
        let db = Database::with_wal(&self.wal_dir.join(format!("{mode}.wal")))
            .expect("open harness wal");
        db.create_table(
            TableMeta::new("t", Self::schema(), vec![0]),
            TableOptions {
                block_rows: self.block_rows,
                compressed: true,
                policy: self.policy,
                ..TableOptions::default()
            },
            self.base_rows.clone(),
        )
        .expect("harness create_table");
        db
    }

    fn make_dbs(&self) -> (Database, Database) {
        (self.make_db(MODES[0]), self.make_db(MODES[1]))
    }

    fn image(db: &Database) -> Vec<Tuple> {
        let view = db.read_view();
        run_to_rows(&mut view.scan("t", vec![0, 1, 2]).unwrap())
    }

    /// Current visible row count (both databases agree by invariant).
    pub fn visible(&self) -> u64 {
        self.batched.row_count("t").unwrap()
    }

    /// Current visible image (both databases agree by invariant).
    pub fn rows(&self) -> Vec<Tuple> {
        Self::image(&self.batched)
    }

    /// Assert the two databases agree bit-for-bit.
    pub fn assert_agree(&self, context: &str) {
        let b = Self::image(&self.batched);
        let r = Self::image(&self.rowwise);
        assert_eq!(
            b, r,
            "{:?} {context}: batched and row-at-a-time images diverged",
            self.policy
        );
        assert_eq!(
            self.batched.row_count("t").unwrap(),
            self.rowwise.row_count("t").unwrap(),
            "{:?} {context}: row counts diverged",
            self.policy
        );
    }

    /// APPEND `(k, a)` rows (column `b` mirrors `a`): one `append` batch
    /// vs an `insert` loop, in one transaction each. Returns whether the
    /// statement committed — on a duplicate key both sides must reject.
    pub fn append(&mut self, kvs: &[(i64, i64)]) -> bool {
        let rows: Vec<Tuple> = kvs
            .iter()
            .map(|&(k, a)| vec![Value::Int(k), Value::Int(a), Value::Int(a ^ 1)])
            .collect();
        let mut txn = self.batched.begin();
        let batched_res = txn.append("t", exec::Batch::from_rows(&Self::schema().types(), &rows));
        let committed = match batched_res {
            Ok(n) => {
                assert_eq!(n, rows.len());
                txn.commit().expect("batched append commit");
                true
            }
            Err(DbError::DuplicateKey { .. }) => {
                txn.abort();
                false
            }
            Err(e) => panic!("{:?}: batched append failed oddly: {e}", self.policy),
        };
        let mut txn = self.rowwise.begin();
        let rowwise_res: Result<(), DbError> =
            rows.iter().try_for_each(|r| txn.insert("t", r.clone()));
        match rowwise_res {
            Ok(()) => {
                assert!(committed, "{:?}: only the batch rejected", self.policy);
                txn.commit().expect("rowwise insert commit");
            }
            Err(DbError::DuplicateKey { .. }) => {
                assert!(!committed, "{:?}: only the row loop rejected", self.policy);
                txn.abort();
            }
            Err(e) => panic!("{:?}: rowwise insert failed oddly: {e}", self.policy),
        }
        self.assert_agree("after append");
        committed
    }

    /// Victim keys and pre-images at `rids` (sorted, distinct, in range).
    fn victims_at(&self, rids: &[u64]) -> Vec<Tuple> {
        let all = self.rows();
        rids.iter().map(|&r| all[r as usize].clone()).collect()
    }

    /// DELETE by position: one `delete_rids` vs one per-key predicate
    /// delete per victim.
    pub fn delete_rids(&mut self, rids: &[u64]) {
        let mut rids = rids.to_vec();
        rids.sort_unstable();
        rids.dedup();
        let victims = self.victims_at(&rids);
        let mut txn = self.batched.begin();
        let n = txn.delete_rids("t", &rids).expect("batched delete_rids");
        assert_eq!(n, rids.len());
        txn.commit().expect("batched delete commit");
        let mut txn = self.rowwise.begin();
        for v in &victims {
            let n = txn
                .delete_where("t", col(0).eq(lit(v[0].clone())))
                .expect("rowwise delete");
            assert_eq!(n, 1, "{:?}: rowwise delete missed", self.policy);
        }
        txn.commit().expect("rowwise delete commit");
        self.assert_agree("after delete_rids");
    }

    /// UPDATE column `a` by position: one `update_col` vs one per-key
    /// predicate update per victim.
    pub fn update_col(&mut self, rids: &[u64], vals: &[i64]) {
        let mut pairs: Vec<(u64, i64)> = rids.iter().copied().zip(vals.iter().copied()).collect();
        pairs.sort_unstable();
        pairs.dedup_by_key(|p| p.0);
        let rids: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let vals: Vec<i64> = pairs.iter().map(|p| p.1).collect();
        let victims = self.victims_at(&rids);
        let mut txn = self.batched.begin();
        let n = txn
            .update_col("t", &rids, 1, columnar::ColumnVec::Int(vals.clone()))
            .expect("batched update_col");
        assert_eq!(n, rids.len());
        txn.commit().expect("batched update commit");
        let mut txn = self.rowwise.begin();
        for (v, &val) in victims.iter().zip(&vals) {
            let n = txn
                .update_where("t", col(0).eq(lit(v[0].clone())), vec![(1, lit(val))])
                .expect("rowwise update");
            assert_eq!(n, 1, "{:?}: rowwise update missed", self.policy);
        }
        txn.commit().expect("rowwise update commit");
        self.assert_agree("after update_col");
    }

    /// UPDATE the sort-key column by position — the §2.1 delete + insert
    /// rewrite, batched vs decomposed (all deletes, then all inserts, the
    /// order a single row-at-a-time statement uses). Returns whether the
    /// statement committed (a rewrite may collide with an existing key).
    pub fn update_keys(&mut self, rids: &[u64], new_keys: &[i64]) -> bool {
        let mut pairs: Vec<(u64, i64)> =
            rids.iter().copied().zip(new_keys.iter().copied()).collect();
        pairs.sort_unstable();
        pairs.dedup_by_key(|p| p.0);
        let rids: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let new_keys: Vec<i64> = pairs.iter().map(|p| p.1).collect();
        let victims = self.victims_at(&rids);
        let mut txn = self.batched.begin();
        let committed =
            match txn.update_col("t", &rids, 0, columnar::ColumnVec::Int(new_keys.clone())) {
                Ok(n) => {
                    assert_eq!(n, rids.len());
                    txn.commit().expect("batched key update commit");
                    true
                }
                Err(DbError::DuplicateKey { .. }) => {
                    txn.abort();
                    false
                }
                Err(e) => panic!("{:?}: batched key update failed oddly: {e}", self.policy),
            };
        let mut txn = self.rowwise.begin();
        let result: Result<(), DbError> = (|| {
            for v in &victims {
                txn.delete_where("t", col(0).eq(lit(v[0].clone())))?;
            }
            for (v, &k) in victims.iter().zip(&new_keys) {
                let mut row = v.clone();
                row[0] = Value::Int(k);
                txn.insert("t", row)?;
            }
            Ok(())
        })();
        match result {
            Ok(()) => {
                assert!(committed, "{:?}: only the batch rejected", self.policy);
                txn.commit().expect("rowwise key update commit");
            }
            Err(DbError::DuplicateKey { .. }) => {
                assert!(!committed, "{:?}: only the row loop rejected", self.policy);
                txn.abort();
            }
            Err(e) => panic!("{:?}: rowwise key update failed oddly: {e}", self.policy),
        }
        self.assert_agree("after update_keys");
        committed
    }

    /// Two concurrent transactions appending `a` and `b`: the batched
    /// databases stage whole batches, the row-wise ones loop — the
    /// prepare-time conflict verdicts (batch footprints vs per-row
    /// footprints) must match. Returns `(a_committed, b_committed)`.
    pub fn concurrent_appends(&mut self, a: &[(i64, i64)], b: &[(i64, i64)]) -> (bool, bool) {
        let row_of = |&(k, v): &(i64, i64)| -> Tuple {
            vec![Value::Int(k), Value::Int(v), Value::Int(v ^ 1)]
        };
        let a_rows: Vec<Tuple> = a.iter().map(row_of).collect();
        let b_rows: Vec<Tuple> = b.iter().map(row_of).collect();
        let mut verdicts = Vec::new();
        for (mode, db) in [(0, &self.batched), (1, &self.rowwise)] {
            let mut ta = db.begin();
            let mut tb = db.begin();
            let stage = |txn: &mut crate::DbTxn<'_>, rows: &[Tuple]| -> bool {
                if mode == 0 {
                    txn.append("t", exec::Batch::from_rows(&Self::schema().types(), rows))
                        .is_ok()
                } else {
                    rows.iter().all(|r| txn.insert("t", r.clone()).is_ok())
                }
            };
            let a_staged = stage(&mut ta, &a_rows);
            let b_staged = stage(&mut tb, &b_rows);
            let a_ok = if a_staged {
                ta.commit().is_ok()
            } else {
                ta.abort();
                false
            };
            let b_ok = if b_staged {
                tb.commit().is_ok()
            } else {
                tb.abort();
                false
            };
            verdicts.push((a_ok, b_ok));
        }
        assert_eq!(
            verdicts[0], verdicts[1],
            "{:?}: batched and row-wise interleavings reached different verdicts",
            self.policy
        );
        self.assert_agree("after concurrent appends");
        verdicts[0]
    }

    /// Flush both write-optimised layers and re-verify.
    pub fn flush(&mut self) {
        self.batched.maybe_flush("t", 0).unwrap();
        self.rowwise.maybe_flush("t", 0).unwrap();
        self.assert_agree("after flush");
    }

    /// Checkpoint both databases (rotating the recovery base, as markers
    /// make replay skip the covered commits) and re-verify.
    pub fn checkpoint(&mut self) {
        self.batched.checkpoint("t").expect("batched checkpoint");
        self.rowwise.checkpoint("t").expect("rowwise checkpoint");
        self.assert_agree("after checkpoint");
        self.base_rows = self.rows();
    }

    /// Crash both databases and rebuild them from base image + WAL replay
    /// — the batched log encodings must recover to the row-wise state.
    pub fn crash_recover(&mut self) {
        self.batched = Database::new();
        self.rowwise = Database::new(); // drop the live databases
        let (batched, rowwise) = self.make_dbs();
        self.batched = batched;
        self.rowwise = rowwise;
        for (mode, db) in MODES.iter().zip([&self.batched, &self.rowwise]) {
            db.recover_from(&self.wal_dir.join(format!("{mode}.wal")))
                .unwrap_or_else(|e| panic!("{:?}: {mode} recovery failed: {e}", self.policy));
        }
        self.assert_agree("after crash recovery");
    }
}

/// One statement of a scripted transaction for [`run_interleaved`].
#[derive(Debug, Clone)]
pub enum TxnOp {
    /// Insert a new tuple.
    Insert(Tuple),
    /// Delete the visible row with this sort key (0 or 1 victims).
    Delete {
        /// Sort key of the victim.
        key: Vec<Value>,
    },
    /// Set `col` of the visible row with this sort key (0 or 1 victims).
    Modify {
        /// Sort key of the target row.
        key: Vec<Value>,
        /// Column to set (never a sort-key column).
        col: usize,
        /// The new value.
        value: Value,
    },
}

/// Outcome of a two-transaction interleaving, identical across policies.
#[derive(Debug, Clone, PartialEq)]
pub struct InterleavedOutcome {
    /// Did transaction A's statements and commit all succeed?
    pub a_ok: bool,
    /// Did transaction B's statements and commit all succeed?
    pub b_ok: bool,
    /// The final committed image.
    pub image: Vec<Tuple>,
}

/// Run the interleaving «begin A; begin B; A's ops; B's ops; commit A;
/// commit B» against one database per policy and assert that every policy
/// reaches the same per-transaction decision and the same final image.
/// Returns the common outcome.
pub fn run_interleaved(
    schema: Schema,
    sk_cols: Vec<usize>,
    rows: Vec<Tuple>,
    a_ops: &[TxnOp],
    b_ops: &[TxnOp],
) -> InterleavedOutcome {
    run_interleaved_spec(schema, sk_cols, rows, a_ops, b_ops, PartitionSpec::None)
}

/// [`run_interleaved`] over range-partitioned tables: the conflict
/// verdicts and final image must not depend on the partitioning, so a
/// caller typically runs the same interleaving under several specs and
/// asserts the outcomes are equal.
pub fn run_interleaved_spec(
    schema: Schema,
    sk_cols: Vec<usize>,
    rows: Vec<Tuple>,
    a_ops: &[TxnOp],
    b_ops: &[TxnOp],
    partitions: PartitionSpec,
) -> InterleavedOutcome {
    let key_pred = |key: &[Value]| -> Expr { key_eq_pred(&sk_cols, key) };
    let apply = |txn: &mut crate::DbTxn<'_>, op: &TxnOp| -> Result<(), DbError> {
        match op {
            TxnOp::Insert(t) => txn.insert("t", t.clone()),
            TxnOp::Delete { key } => txn.delete_where("t", key_pred(key)).map(|_| ()),
            TxnOp::Modify { key, col: c, value } => txn
                .update_where("t", key_pred(key), vec![(*c, lit(value.clone()))])
                .map(|_| ()),
        }
    };
    let mut outcomes: Vec<(UpdatePolicy, InterleavedOutcome)> = Vec::new();
    for policy in ALL_POLICIES {
        let db = Database::new();
        db.create_table(
            TableMeta::new("t", schema.clone(), sk_cols.clone()),
            TableOptions {
                block_rows: 8,
                compressed: true,
                policy,
                partitions: partitions.clone(),
                ..TableOptions::default()
            },
            rows.clone(),
        )
        .unwrap();
        let mut a = db.begin();
        let mut b = db.begin();
        let a_staged = a_ops.iter().all(|op| apply(&mut a, op).is_ok());
        let b_staged = b_ops.iter().all(|op| apply(&mut b, op).is_ok());
        let a_ok = if a_staged {
            a.commit().is_ok()
        } else {
            a.abort();
            false
        };
        let b_ok = if b_staged {
            b.commit().is_ok()
        } else {
            b.abort();
            false
        };
        let view = db.read_view();
        let image = run_to_rows(&mut view.scan("t", (0..schema.len()).collect()).unwrap());
        outcomes.push((policy, InterleavedOutcome { a_ok, b_ok, image }));
    }
    let (_, first) = &outcomes[0];
    for (policy, o) in &outcomes[1..] {
        assert_eq!(
            o, first,
            "{policy:?} disagreed with {:?} on the interleaving outcome",
            outcomes[0].0
        );
    }
    first.clone()
}

// --- Concurrent differential harness ------------------------------------

/// Deterministic multi-threaded workload for [`run_concurrent_differential`]:
/// `writers` threads each execute a fixed-seed script of single-statement
/// transactions confined to their own sort-key partition, `scanners`
/// threads continuously assert snapshot invariants, and a background
/// [`MaintenanceScheduler`](crate::MaintenanceScheduler) with tiny byte
/// budgets flushes and checkpoints throughout. Partition-disjoint scripts
/// make the final image independent of thread interleaving, so the run is
/// an oracle despite real concurrency: every policy must converge to the
/// same image, which must equal the sequential replay of the scripts.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentSpec {
    /// Writer threads, each confined to its own sort-key partition.
    pub writers: usize,
    /// Reader threads asserting snapshot invariants throughout.
    pub scanners: usize,
    /// Single-statement transactions per writer.
    pub ops_per_writer: usize,
    /// Bulk-loaded rows per writer partition.
    pub base_rows_per_writer: usize,
    /// Seed of the deterministic per-writer scripts.
    pub seed: u64,
    /// Rows per stable block of the test table.
    pub block_rows: usize,
}

impl Default for ConcurrentSpec {
    fn default() -> Self {
        ConcurrentSpec {
            writers: 4,
            scanners: 2,
            ops_per_writer: 60,
            base_rows_per_writer: 32,
            seed: 0x5eed_cafe,
            block_rows: 16,
        }
    }
}

/// Width of each writer's private key partition.
const PARTITION_SPAN: i64 = 1_000_000;

/// One step of a writer script. Every row ever written satisfies
/// `v == k + 1` (column 1), which scanners assert on every visible row —
/// a torn merge or a misplaced positional update breaks it.
#[derive(Debug, Clone)]
enum WriterOp {
    Insert { key: i64, tag: i64 },
    Delete { key: i64 },
    Modify { key: i64, tag: i64 },
}

/// Minimal deterministic RNG (splitmix64) — the harness must not depend on
/// workload crates.
struct Splitmix(u64);

impl Splitmix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Generate writer `w`'s script plus its partition's final row state, by
/// simulating the script against a local model (pure in `spec.seed`).
fn writer_script(
    spec: &ConcurrentSpec,
    w: usize,
    base: &[Tuple],
) -> (Vec<WriterOp>, std::collections::BTreeMap<i64, Tuple>) {
    use std::collections::BTreeMap;
    let lo = w as i64 * PARTITION_SPAN;
    let mut model: BTreeMap<i64, Tuple> = base
        .iter()
        .filter(|r| r[0].as_int() >= lo && r[0].as_int() < lo + PARTITION_SPAN)
        .map(|r| (r[0].as_int(), r.clone()))
        .collect();
    let mut rng = Splitmix(spec.seed ^ (w as u64).wrapping_mul(0x9e3779b97f4a7c15));
    let mut ops = Vec::with_capacity(spec.ops_per_writer);
    for step in 0..spec.ops_per_writer {
        let tag = (w * spec.ops_per_writer + step) as i64;
        let pick_existing = |rng: &mut Splitmix, model: &BTreeMap<i64, Tuple>| -> Option<i64> {
            if model.is_empty() {
                None
            } else {
                let i = rng.below(model.len() as u64) as usize;
                model.keys().nth(i).copied()
            }
        };
        let op = match rng.below(3) {
            0 => {
                // insert a fresh key in the partition
                let mut key = lo + rng.below(PARTITION_SPAN as u64) as i64;
                while model.contains_key(&key) {
                    key = lo + rng.below(PARTITION_SPAN as u64) as i64;
                }
                WriterOp::Insert { key, tag }
            }
            1 => match pick_existing(&mut rng, &model) {
                Some(key) => WriterOp::Delete { key },
                None => WriterOp::Insert { key: lo + tag, tag },
            },
            _ => match pick_existing(&mut rng, &model) {
                Some(key) => WriterOp::Modify { key, tag },
                None => WriterOp::Insert { key: lo + tag, tag },
            },
        };
        match &op {
            WriterOp::Insert { key, tag } => {
                model.insert(
                    *key,
                    vec![Value::Int(*key), Value::Int(*key + 1), Value::Int(*tag)],
                );
            }
            WriterOp::Delete { key } => {
                model.remove(key);
            }
            WriterOp::Modify { key, tag } => {
                model.get_mut(key).expect("picked existing")[2] = Value::Int(*tag);
            }
        }
        ops.push(op);
    }
    (ops, model)
}

/// Assert the invariants every consistent snapshot of the stress table
/// obeys, returning the scanned rows.
fn assert_snapshot_invariants(
    view: &crate::ReadView,
    table: &str,
    policy: UpdatePolicy,
    context: &str,
) -> Vec<Tuple> {
    let rows = run_to_rows(&mut view.scan(table, vec![0, 1, 2]).unwrap());
    for w in rows.windows(2) {
        assert!(
            w[0][0].as_int() < w[1][0].as_int(),
            "{policy:?} {context}: sort order violated around {:?}",
            &w[0]
        );
    }
    for r in &rows {
        assert_eq!(
            r[1].as_int(),
            r[0].as_int() + 1,
            "{policy:?} {context}: torn row {r:?}"
        );
    }
    assert_eq!(
        view.visible_rows(table).unwrap(),
        rows.len() as u64,
        "{policy:?} {context}: delta_total drifted from the scan"
    );
    rows
}

/// Run the concurrent workload against one database per [`UpdatePolicy`]
/// — writers, scanners and the background maintenance scheduler all live
/// at once — and assert that every policy converges to the model image.
/// Returns the agreed final image.
pub fn run_concurrent_differential(spec: ConcurrentSpec) -> Vec<Tuple> {
    use std::sync::atomic::{AtomicBool, Ordering};
    let schema = Schema::from_pairs(&[
        ("k", columnar::ValueType::Int),
        ("v", columnar::ValueType::Int),
        ("tag", columnar::ValueType::Int),
    ]);
    // base rows: a stripe inside every writer's partition
    let mut base: Vec<Tuple> = Vec::new();
    for w in 0..spec.writers {
        let lo = w as i64 * PARTITION_SPAN;
        for j in 0..spec.base_rows_per_writer as i64 {
            let key = lo + j * 37;
            base.push(vec![Value::Int(key), Value::Int(key + 1), Value::Int(0)]);
        }
    }
    // deterministic scripts + the sequentially-replayed expected image
    let mut scripts = Vec::with_capacity(spec.writers);
    let mut expected: Vec<Tuple> = Vec::new();
    for w in 0..spec.writers {
        let (ops, final_model) = writer_script(&spec, w, &base);
        scripts.push(ops);
        expected.extend(final_model.into_values());
    }
    expected.sort_by_key(|r| r[0].as_int());

    let mut images: Vec<(UpdatePolicy, Vec<Tuple>)> = Vec::new();
    for policy in ALL_POLICIES {
        let db = std::sync::Arc::new(Database::new());
        db.create_table(
            TableMeta::new("t", schema.clone(), vec![0]),
            TableOptions {
                block_rows: spec.block_rows,
                compressed: true,
                policy,
                // tiny budgets: maintenance fires constantly under load
                flush_threshold_bytes: 256,
                checkpoint_threshold_bytes: 1024,
                partitions: PartitionSpec::None,
                ..TableOptions::default()
            },
            base.clone(),
        )
        .unwrap();
        let scheduler = crate::MaintenanceScheduler::start(
            db.clone(),
            crate::MaintenanceConfig::with_tick(std::time::Duration::from_millis(1)),
        );
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let mut writer_handles = Vec::with_capacity(spec.writers);
            for (w, ops) in scripts.iter().enumerate() {
                let db = &db;
                let handle = s.spawn(move || {
                    for (step, op) in ops.iter().enumerate() {
                        // writers also drive maintenance directly at fixed
                        // strides (offset per writer): flushes and
                        // checkpoints are then *guaranteed* to overlap
                        // other writers' commits and the scanners,
                        // whatever the scheduler's timing
                        if step % 7 == w % 7 {
                            db.maybe_flush("t", 0).unwrap();
                        }
                        if step % 13 == w % 13 {
                            db.checkpoint("t")
                                .unwrap_or_else(|e| panic!("{policy:?}: checkpoint failed: {e}"));
                        }
                        let mut txn = db.begin();
                        match op {
                            WriterOp::Insert { key, tag } => {
                                txn.insert(
                                    "t",
                                    vec![Value::Int(*key), Value::Int(key + 1), Value::Int(*tag)],
                                )
                                .unwrap();
                            }
                            WriterOp::Delete { key } => {
                                let n = txn
                                    .delete_where("t", key_eq_pred(&[0], &[Value::Int(*key)]))
                                    .unwrap();
                                assert_eq!(n, 1, "{policy:?}: delete of {key} missed");
                            }
                            WriterOp::Modify { key, tag } => {
                                let n = txn
                                    .update_where(
                                        "t",
                                        key_eq_pred(&[0], &[Value::Int(*key)]),
                                        vec![(2, lit(*tag))],
                                    )
                                    .unwrap();
                                assert_eq!(n, 1, "{policy:?}: modify of {key} missed");
                            }
                        }
                        txn.commit()
                            .unwrap_or_else(|e| panic!("{policy:?}: commit failed: {e}"));
                    }
                });
                writer_handles.push(handle);
            }
            for _ in 0..spec.scanners {
                let db = &db;
                let done = &done;
                s.spawn(move || {
                    let mut passes = 0u32;
                    while !done.load(Ordering::Acquire) || passes < 3 {
                        let view = db.read_view();
                        let first = assert_snapshot_invariants(&view, "t", policy, "scan");
                        // the same view re-scanned mid-maintenance must be
                        // byte-identical: snapshots never move
                        let second = assert_snapshot_invariants(&view, "t", policy, "re-scan");
                        assert_eq!(
                            first, second,
                            "{policy:?}: open view drifted across concurrent maintenance"
                        );
                        // stable-only scans see some checkpointed prefix:
                        // ordered and un-torn, like any consistent cut
                        assert_snapshot_invariants(&db.clean_view(), "t", policy, "clean scan");
                        passes += 1;
                    }
                });
            }
            // release the scanners only once every writer is done — and
            // release them even when a writer panicked, or the scanners
            // would spin forever and the scope (hence the test) would
            // hang instead of failing with the writer's panic
            let mut writer_panic = None;
            for h in writer_handles {
                if let Err(p) = h.join() {
                    writer_panic.get_or_insert(p);
                }
            }
            done.store(true, Ordering::Release);
            if let Some(p) = writer_panic {
                std::panic::resume_unwind(p);
            }
        });
        scheduler
            .drain()
            .unwrap_or_else(|e| panic!("{policy:?}: drain failed: {e}"));
        let stats = scheduler.stats();
        assert_eq!(
            stats.errors,
            0,
            "{policy:?}: maintenance errors: {:?}",
            scheduler.last_error()
        );
        assert!(
            stats.checkpoints > 0,
            "{policy:?}: no checkpoint ran — the stress run exercised nothing"
        );
        scheduler.shutdown();
        let view = db.read_view();
        let image = assert_snapshot_invariants(&view, "t", policy, "final");
        assert_eq!(
            image, expected,
            "{policy:?}: concurrent run diverged from the sequential model"
        );
        images.push((policy, image));
    }
    let (_, first) = &images[0];
    for (policy, img) in &images[1..] {
        assert_eq!(
            img, first,
            "{policy:?} disagreed with {:?} after the concurrent run",
            images[0].0
        );
    }
    first.clone()
}
