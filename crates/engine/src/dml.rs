//! Read-write transactions: DML staged against the table's update
//! structure through the [`DeltaStore`] interface.
//!
//! All statements operate on the transaction's own consistent view
//! (stable ∘ committed deltas ∘ staged updates — eq. (9) for PDT tables),
//! so later statements see earlier updates of the same transaction, exactly
//! as §3.3's Trans-PDT layer prescribes. The same flows serve value-based
//! tables: victims are still located positionally by scans; only the
//! staging representation differs.
//!
//! Commit is two-phase under the manager's commit guard: every touched
//! table's store validates (`prepare`) against updates committed since
//! begin — any conflict aborts the whole transaction — then the WAL record
//! is appended and every store publishes at one commit sequence number, so
//! multi-table transactions stay atomic across update structures.

use crate::delta::{DeltaSnapshot, DeltaStore, DeltaTxn};
use crate::{Database, DbError};
use columnar::{StableTable, Tuple, Value};
use exec::expr::Expr;
use exec::{DeltaLayers, ScanBounds, TableScan};
use std::collections::HashMap;
use std::sync::Arc;
use txn::wal::WalEntry;

/// Per-table state captured at transaction begin.
pub(crate) struct TxnTable {
    stable: Arc<StableTable>,
    store: Arc<dyn DeltaStore>,
    snap: Arc<dyn DeltaSnapshot>,
    staged: Option<Box<dyn DeltaTxn>>,
}

impl TxnTable {
    pub(crate) fn new(
        stable: Arc<StableTable>,
        store: Arc<dyn DeltaStore>,
        snap: Arc<dyn DeltaSnapshot>,
    ) -> Self {
        TxnTable {
            stable,
            store,
            snap,
            staged: None,
        }
    }

    fn layers(&self) -> DeltaLayers<'_> {
        match &self.staged {
            Some(s) => s.layers(),
            None => self.snap.layers(),
        }
    }

    fn delta_total(&self) -> i64 {
        match &self.staged {
            Some(s) => s.delta_total(),
            None => self.snap.delta_total(),
        }
    }
}

/// A read-write transaction handle.
pub struct DbTxn<'db> {
    db: &'db Database,
    id: u64,
    start_seq: u64,
    tables: HashMap<String, TxnTable>,
}

impl<'db> DbTxn<'db> {
    pub(crate) fn new(
        db: &'db Database,
        id: u64,
        start_seq: u64,
        tables: HashMap<String, TxnTable>,
    ) -> Self {
        DbTxn {
            db,
            id,
            start_seq,
            tables,
        }
    }

    fn table(&self, table: &str) -> Result<&TxnTable, DbError> {
        self.tables
            .get(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))
    }

    /// The staging area for `table`, created on first update.
    fn staged_mut(&mut self, table: &str) -> Result<&mut dyn DeltaTxn, DbError> {
        let start_seq = self.start_seq;
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        Ok(t.staged
            .get_or_insert_with(|| t.store.begin(&t.snap, start_seq))
            .as_mut())
    }

    /// Scan `table` under this transaction's view (including its own
    /// uncommitted updates), optionally ranged.
    pub fn scan_ranged(
        &self,
        table: &str,
        proj: Vec<usize>,
        bounds: ScanBounds,
    ) -> Result<TableScan<'_>, DbError> {
        let t = self.table(table)?;
        Ok(TableScan::ranged(
            &t.stable,
            t.layers(),
            proj,
            bounds,
            self.db.io().clone(),
            self.db.clock().clone(),
        ))
    }

    /// Full scan under this transaction's view.
    pub fn scan(&self, table: &str, proj: Vec<usize>) -> Result<TableScan<'_>, DbError> {
        self.scan_ranged(table, proj, ScanBounds::default())
    }

    /// Total visible rows of `table` under this transaction's view.
    pub fn visible_rows(&self, table: &str) -> Result<u64, DbError> {
        let t = self.table(table)?;
        Ok((t.stable.row_count() as i64 + t.delta_total()) as u64)
    }

    /// Find the RID where a tuple with sort key `sk` must be inserted —
    /// the paper's `SELECT rid FROM t WHERE SK > sk ORDER BY rid LIMIT 1`
    /// flow, served by a sparse-index-ranged scan. Errors on duplicates.
    fn find_insert_rid(&self, table: &str, sk: &[Value]) -> Result<u64, DbError> {
        let sk_cols: Vec<usize> = self.table(table)?.stable.sort_key().cols().to_vec();
        let mut scan = self.scan_ranged(
            table,
            sk_cols,
            ScanBounds {
                lo: Some(sk.to_vec()),
                hi: Some(sk.to_vec()),
            },
        )?;
        // when the whole range is ghosted the scan emits nothing, but the
        // rank of its start is still the correct insert position
        let mut last_end = scan.start_rid();
        use exec::Operator;
        while let Some(batch) = scan.next_batch() {
            for i in 0..batch.num_rows() {
                let key: Vec<Value> = batch.cols.iter().map(|c| c.get(i)).collect();
                match key.as_slice().cmp(sk) {
                    std::cmp::Ordering::Greater => return Ok(batch.rid_start + i as u64),
                    std::cmp::Ordering::Equal => {
                        return Err(DbError::DuplicateKey {
                            table: table.to_string(),
                            key: sk.to_vec(),
                        })
                    }
                    std::cmp::Ordering::Less => {}
                }
            }
            last_end = batch.rid_start + batch.num_rows() as u64;
        }
        Ok(last_end)
    }

    /// INSERT a tuple; its position follows from the table's sort order.
    pub fn insert(&mut self, table: &str, tuple: Tuple) -> Result<(), DbError> {
        let sk = self.table(table)?.stable.sort_key().extract(&tuple);
        let rid = self.find_insert_rid(table, &sk)?;
        self.staged_mut(table)?.stage_insert(rid, &tuple);
        Ok(())
    }

    /// DELETE rows matching `pred` (evaluated over all table columns).
    /// Returns the number of deleted rows.
    pub fn delete_where(&mut self, table: &str, pred: Expr) -> Result<usize, DbError> {
        self.delete_where_ranged(table, pred, ScanBounds::default())
    }

    /// DELETE with a sort-key range restriction (sparse-index assisted).
    pub fn delete_where_ranged(
        &mut self,
        table: &str,
        pred: Expr,
        bounds: ScanBounds,
    ) -> Result<usize, DbError> {
        let ncols = self.table(table)?.stable.schema().len();
        // collect victims (RID + full pre-image) under the current view
        let mut victims: Vec<(u64, Tuple)> = Vec::new();
        {
            let mut scan = self.scan_ranged(table, (0..ncols).collect(), bounds)?;
            use exec::Operator;
            while let Some(batch) = scan.next_batch() {
                let keep = pred.eval_bool(&batch);
                for (i, hit) in keep.iter().enumerate() {
                    if *hit {
                        victims.push((batch.rid_start + i as u64, batch.row(i)));
                    }
                }
            }
        }
        // apply in descending RID order so earlier RIDs stay valid
        let n = victims.len();
        let staged = self.staged_mut(table)?;
        for (rid, row) in victims.into_iter().rev() {
            staged.stage_delete(rid, &row);
        }
        Ok(n)
    }

    /// UPDATE rows matching `pred`, assigning each `(column, expression)`
    /// pair (expressions are evaluated over the pre-image row). Sort-key
    /// columns may be assigned: such updates are rewritten as
    /// delete + insert, per §2.1. Returns the number of updated rows.
    pub fn update_where(
        &mut self,
        table: &str,
        pred: Expr,
        sets: Vec<(usize, Expr)>,
    ) -> Result<usize, DbError> {
        self.update_where_ranged(table, pred, sets, ScanBounds::default())
    }

    /// UPDATE with a sort-key range restriction.
    pub fn update_where_ranged(
        &mut self,
        table: &str,
        pred: Expr,
        sets: Vec<(usize, Expr)>,
        bounds: ScanBounds,
    ) -> Result<usize, DbError> {
        let stable = self.table(table)?.stable.clone();
        let ncols = stable.schema().len();
        let sk_cols: Vec<usize> = stable.sort_key().cols().to_vec();
        let touches_sk = sets.iter().any(|(c, _)| sk_cols.contains(c));

        // victims with their new values, evaluated batch-wise
        type PlainUpdate = (u64, Tuple, Vec<(usize, Value)>); // (rid, pre-image, assigns)
        let mut plain: Vec<PlainUpdate> = Vec::new();
        let mut rewrites: Vec<(u64, Tuple, Tuple)> = Vec::new(); // (rid, pre-image, new tuple)
        {
            let mut scan = self.scan_ranged(table, (0..ncols).collect(), bounds)?;
            use exec::Operator;
            while let Some(batch) = scan.next_batch() {
                let keep = pred.eval_bool(&batch);
                if !keep.iter().any(|&k| k) {
                    continue;
                }
                let new_vals: Vec<columnar::ColumnVec> =
                    sets.iter().map(|(_, e)| e.eval(&batch)).collect();
                for (i, hit) in keep.iter().enumerate() {
                    if !*hit {
                        continue;
                    }
                    let rid = batch.rid_start + i as u64;
                    let row = batch.row(i);
                    if touches_sk {
                        let mut new_row = row.clone();
                        for ((c, _), vals) in sets.iter().zip(&new_vals) {
                            new_row[*c] = vals.get(i);
                        }
                        rewrites.push((rid, row, new_row));
                    } else {
                        let assigns = sets
                            .iter()
                            .zip(&new_vals)
                            .map(|((c, _), vals)| (*c, vals.get(i)))
                            .collect();
                        plain.push((rid, row, assigns));
                    }
                }
            }
        }
        let n = plain.len() + rewrites.len();
        {
            let staged = self.staged_mut(table)?;
            // in-place modifications: RIDs unaffected, apply in any order
            for (rid, row, assigns) in plain {
                for (col, v) in assigns {
                    staged.stage_modify(rid, col, &v, &row);
                }
            }
            // SK rewrites: delete first (descending), insert after
            for (rid, row, _) in rewrites.iter().rev() {
                staged.stage_delete(*rid, row);
            }
        }
        for (_, _, new_row) in rewrites {
            self.insert(table, new_row)?;
        }
        Ok(n)
    }

    /// Commit: prepare every touched table (Serialize for PDT tables,
    /// key-addressed replay validation for VDT tables), append one WAL
    /// record, publish everything at one commit sequence. On conflict the
    /// transaction is gone and the error describes the clash.
    pub fn commit(self) -> Result<u64, DbError> {
        let mgr = &self.db.txn_mgr;
        let _commit = mgr.commit_guard();
        let mut touched: Vec<(String, TxnTable)> = self
            .tables
            .into_iter()
            .filter(|(_, t)| t.staged.as_ref().is_some_and(|s| s.is_dirty()))
            .collect();
        // deterministic table order (WAL records, lock-free publishes)
        touched.sort_by(|a, b| a.0.cmp(&b.0));
        if touched.is_empty() {
            // read-only transaction: nothing to do, no new sequence needed
            mgr.end_txn(self.id);
            return Ok(mgr.seq());
        }
        // Phase 1: validate everything, failing wholesale on any conflict.
        for (_, t) in touched.iter_mut() {
            let staged = t.staged.as_mut().expect("filtered on staged").as_mut();
            if let Err(e) = t.store.prepare(staged) {
                mgr.end_txn(self.id);
                return Err(e);
            }
        }
        // Durability before visibility: one record for the whole commit.
        // The per-table flattenings also ride along to `publish` — stores
        // that checkpoint by residual replay retain them until a marker
        // covers them.
        let entries: Vec<(String, Vec<WalEntry>)> = touched
            .iter()
            .map(|(name, t)| {
                let staged = t.staged.as_ref().expect("filtered on staged").as_ref();
                (name.clone(), t.store.wal_entries(staged))
            })
            .collect();
        let logged: Vec<(&str, &[WalEntry])> = entries
            .iter()
            .filter(|(_, e)| !e.is_empty())
            .map(|(t, e)| (t.as_str(), e.as_slice()))
            .collect();
        let seq = mgr.alloc_seq();
        if let Err(e) = mgr.log_commit(seq, &logged) {
            mgr.end_txn(self.id);
            return Err(e.into());
        }
        // Phase 2: publish (infallible).
        for ((_, mut t), (_, table_entries)) in touched.into_iter().zip(entries) {
            let staged = t.staged.take().expect("filtered on staged");
            t.store.publish(staged, seq, &table_entries);
        }
        mgr.end_txn(self.id);
        Ok(seq)
    }

    /// Abort, discarding all staged updates.
    pub fn abort(self) {
        self.db.txn_mgr.end_txn(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TableOptions, UpdatePolicy};
    use columnar::{Schema, TableMeta, ValueType};
    use exec::expr::{col, lit};
    use exec::run_to_rows;

    fn db_with_ints(n: i64, policy: UpdatePolicy) -> Database {
        let db = Database::new();
        let schema = Schema::from_pairs(&[("k", ValueType::Int), ("v", ValueType::Int)]);
        let rows: Vec<Tuple> = (0..n)
            .map(|i| vec![Value::Int(i * 10), Value::Int(i)])
            .collect();
        db.create_table(
            TableMeta::new("t", schema, vec![0]),
            TableOptions {
                block_rows: 8,
                compressed: true,
                policy,
                ..TableOptions::default()
            },
            rows,
        )
        .unwrap();
        db
    }

    fn keys(db: &Database) -> Vec<i64> {
        let view = db.read_view();
        let mut scan = view.scan("t", vec![0]).unwrap();
        run_to_rows(&mut scan)
            .iter()
            .map(|r| r[0].as_int())
            .collect()
    }

    use crate::ALL_POLICIES;

    #[test]
    fn own_updates_visible_within_txn() {
        for policy in ALL_POLICIES {
            let db = db_with_ints(10, policy);
            let mut t = db.begin();
            t.insert("t", vec![Value::Int(55), Value::Int(0)]).unwrap();
            assert_eq!(t.visible_rows("t").unwrap(), 11, "{policy:?}");
            // the same txn can find and modify the new tuple
            let n = t
                .update_where("t", col(0).eq(lit(55i64)), vec![(1, lit(9i64))])
                .unwrap();
            assert_eq!(n, 1);
            let mut scan = t.scan("t", vec![0, 1]).unwrap();
            let rows = run_to_rows(&mut scan);
            let hit = rows.iter().find(|r| r[0] == Value::Int(55)).unwrap();
            assert_eq!(hit[1], Value::Int(9));
            t.commit().unwrap();
            assert!(keys(&db).contains(&55), "{policy:?}");
        }
    }

    #[test]
    fn multi_row_delete_descending_rids() {
        for policy in ALL_POLICIES {
            let db = db_with_ints(20, policy);
            let mut t = db.begin();
            let n = t
                .delete_where("t", col(0).ge(lit(50i64)).and(col(0).le(lit(120i64))))
                .unwrap();
            assert_eq!(n, 8);
            t.commit().unwrap();
            let ks = keys(&db);
            assert_eq!(ks.len(), 12);
            assert!(!ks.contains(&50) && !ks.contains(&120) && ks.contains(&130));
        }
    }

    #[test]
    fn abort_discards_updates() {
        for policy in ALL_POLICIES {
            let db = db_with_ints(5, policy);
            let mut t = db.begin();
            t.insert("t", vec![Value::Int(99), Value::Int(0)]).unwrap();
            t.abort();
            assert_eq!(keys(&db).len(), 5, "{policy:?}");
        }
    }

    #[test]
    fn ranged_delete_uses_bounds() {
        let db = db_with_ints(100, UpdatePolicy::Pdt);
        let io_before = db.io().stats();
        let mut t = db.begin();
        t.delete_where_ranged(
            "t",
            col(0).eq(lit(500i64)),
            ScanBounds {
                lo: Some(vec![Value::Int(500)]),
                hi: Some(vec![Value::Int(500)]),
            },
        )
        .unwrap();
        t.commit().unwrap();
        let scan_bytes = db.io().stats().since(&io_before).bytes_read;
        assert!(keys(&db).len() == 99);
        // the ranged victim scan must not have read the whole table
        let full = db.stable("t").unwrap().total_bytes();
        assert!(scan_bytes < full, "{scan_bytes} vs {full}");
    }

    #[test]
    fn insert_positions_respect_own_deletes() {
        for policy in ALL_POLICIES {
            let db = db_with_ints(10, policy);
            let mut t = db.begin();
            // delete key 50 then insert 45: must go where 50 was
            t.delete_where("t", col(0).eq(lit(50i64))).unwrap();
            t.insert("t", vec![Value::Int(45), Value::Int(0)]).unwrap();
            t.commit().unwrap();
            let ks = keys(&db);
            assert_eq!(ks, vec![0, 10, 20, 30, 40, 45, 60, 70, 80, 90]);
        }
    }

    #[test]
    fn insert_beyond_fully_ghosted_tail() {
        // regression (found by fuzzing): when every stable row the ranged
        // victim scan covers is a ghost, the scan emits nothing — the
        // insert rank must then fall back to the scan's start RID, not 0.
        for policy in ALL_POLICIES {
            let db = db_with_ints(40, policy);
            let mut t = db.begin();
            t.delete_where("t", col(0).ge(lit(320i64))).unwrap();
            t.commit().unwrap();
            let mut t = db.begin();
            t.insert("t", vec![Value::Int(1980), Value::Int(0)])
                .unwrap();
            t.commit().unwrap();
            let ks = keys(&db);
            assert!(ks.windows(2).all(|w| w[0] < w[1]), "order violated: {ks:?}");
            assert_eq!(*ks.last().unwrap(), 1980);
        }
    }

    #[test]
    fn conflicting_engine_txns() {
        let db = db_with_ints(10, UpdatePolicy::Pdt);
        let mut a = db.begin();
        let mut b = db.begin();
        a.update_where("t", col(0).eq(lit(30i64)), vec![(1, lit(1i64))])
            .unwrap();
        b.update_where("t", col(0).eq(lit(30i64)), vec![(1, lit(2i64))])
            .unwrap();
        a.commit().unwrap();
        assert!(matches!(b.commit(), Err(DbError::Txn(_))));
    }

    /// The two value-addressed stores, which share the key-based conflict
    /// semantics these tests pin down (the PDT equivalents live in
    /// `conflicting_engine_txns` and the txn crate).
    const VALUE_STORES: [UpdatePolicy; 2] = [UpdatePolicy::Vdt, UpdatePolicy::RowStore];

    #[test]
    fn conflicting_value_store_inserts_abort_second_writer() {
        for policy in VALUE_STORES {
            let db = db_with_ints(10, policy);
            let mut a = db.begin();
            let mut b = db.begin();
            a.insert("t", vec![Value::Int(55), Value::Int(1)]).unwrap();
            b.insert("t", vec![Value::Int(55), Value::Int(2)]).unwrap();
            a.commit().unwrap();
            assert!(
                matches!(b.commit(), Err(DbError::Conflict { .. })),
                "{policy:?}"
            );
            // state reflects only a's insert
            let view = db.read_view();
            let mut scan = view.scan("t", vec![0, 1]).unwrap();
            let rows = run_to_rows(&mut scan);
            let hit = rows.iter().find(|r| r[0] == Value::Int(55)).unwrap();
            assert_eq!(hit[1], Value::Int(1), "{policy:?}");
        }
    }

    #[test]
    fn conflicting_value_store_modifies_abort_second_writer() {
        // same column of the same tuple: the value-based validation must
        // detect the lost update, exactly like PDT Serialize does
        for policy in VALUE_STORES {
            let db = db_with_ints(10, policy);
            let mut a = db.begin();
            let mut b = db.begin();
            a.update_where("t", col(0).eq(lit(30i64)), vec![(1, lit(1i64))])
                .unwrap();
            b.update_where("t", col(0).eq(lit(30i64)), vec![(1, lit(2i64))])
                .unwrap();
            a.commit().unwrap();
            assert!(
                matches!(b.commit(), Err(DbError::Conflict { .. })),
                "{policy:?}"
            );
            let view = db.read_view();
            let rows = run_to_rows(&mut view.scan("t", vec![0, 1]).unwrap());
            assert_eq!(
                rows[3][1],
                Value::Int(1),
                "{policy:?}: first writer's value survives"
            );
        }
    }

    #[test]
    fn disjoint_column_value_store_modifies_reconcile() {
        // different columns of the same tuple reconcile (CheckModConflict)
        for policy in VALUE_STORES {
            let db = Database::new();
            let schema = Schema::from_pairs(&[
                ("k", ValueType::Int),
                ("a", ValueType::Int),
                ("b", ValueType::Int),
            ]);
            db.create_table(
                TableMeta::new("t", schema, vec![0]),
                TableOptions::default().with_policy(policy),
                vec![vec![Value::Int(1), Value::Int(0), Value::Int(0)]],
            )
            .unwrap();
            let mut p = db.begin();
            let mut q = db.begin();
            p.update_where("t", col(0).eq(lit(1i64)), vec![(1, lit(11i64))])
                .unwrap();
            q.update_where("t", col(0).eq(lit(1i64)), vec![(2, lit(22i64))])
                .unwrap();
            p.commit().unwrap();
            q.commit()
                .unwrap_or_else(|e| panic!("{policy:?}: disjoint columns must reconcile: {e}"));
            let view = db.read_view();
            let rows = run_to_rows(&mut view.scan("t", vec![0, 1, 2]).unwrap());
            assert_eq!(
                rows[0],
                vec![Value::Int(1), Value::Int(11), Value::Int(22)],
                "{policy:?}"
            );
        }
    }

    #[test]
    fn value_store_delete_vs_modify_conflicts() {
        for policy in VALUE_STORES {
            let db = db_with_ints(10, policy);
            let mut a = db.begin();
            let mut b = db.begin();
            a.update_where("t", col(0).eq(lit(30i64)), vec![(1, lit(1i64))])
                .unwrap();
            b.delete_where("t", col(0).eq(lit(30i64))).unwrap();
            a.commit().unwrap();
            assert!(
                matches!(b.commit(), Err(DbError::Conflict { .. })),
                "{policy:?}"
            );
            assert_eq!(
                db.row_count("t").unwrap(),
                10,
                "{policy:?}: delete must not land"
            );
        }
    }

    #[test]
    fn disjoint_value_store_commits_both_land() {
        // the validation path: b began before a committed, touching other
        // keys — both commits must land
        for policy in VALUE_STORES {
            let db = db_with_ints(10, policy);
            let mut a = db.begin();
            let mut b = db.begin();
            a.update_where("t", col(0).eq(lit(10i64)), vec![(1, lit(-1i64))])
                .unwrap();
            b.update_where("t", col(0).eq(lit(80i64)), vec![(1, lit(-2i64))])
                .unwrap();
            a.commit().unwrap();
            b.commit().unwrap();
            let view = db.read_view();
            let mut scan = view.scan("t", vec![0, 1]).unwrap();
            let rows = run_to_rows(&mut scan);
            assert_eq!(rows[1][1], Value::Int(-1), "{policy:?}");
            assert_eq!(rows[8][1], Value::Int(-2), "{policy:?}");
            assert_eq!(rows.len(), 10, "{policy:?}");
        }
    }
}
