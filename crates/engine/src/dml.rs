//! Read-write transactions: DML against the Trans-PDT.
//!
//! All statements operate on the transaction's own consistent view
//! (stable ∘ Read-PDT ∘ Write-PDT ∘ Trans-PDT — eq. (9)), so later
//! statements see earlier updates of the same transaction, exactly as
//! §3.3's Trans-PDT layer prescribes.

use crate::{Database, DbError};
use columnar::{StableTable, Tuple, Value};
use exec::expr::Expr;
use exec::{DeltaLayers, ScanBounds, TableScan};
use std::collections::HashMap;
use std::sync::Arc;
use txn::Transaction;

/// A read-write transaction handle.
pub struct DbTxn<'db> {
    db: &'db Database,
    txn: Transaction,
    /// Stable images captured at begin (consistent with the PDT snapshots).
    stables: HashMap<String, Arc<StableTable>>,
}

impl<'db> DbTxn<'db> {
    pub(crate) fn new(db: &'db Database, txn: Transaction) -> Self {
        let stables = db
            .tables
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.stable.clone()))
            .collect();
        DbTxn { db, txn, stables }
    }

    fn stable(&self, table: &str) -> &Arc<StableTable> {
        self.stables
            .get(table)
            .unwrap_or_else(|| panic!("unknown table {table}"))
    }

    /// Scan `table` under this transaction's view (including its own
    /// uncommitted updates), optionally ranged.
    pub fn scan_ranged(
        &self,
        table: &str,
        proj: Vec<usize>,
        bounds: ScanBounds,
    ) -> TableScan<'_> {
        let layers = self.txn.layers(table);
        let delta = if layers.is_empty() {
            DeltaLayers::None
        } else {
            DeltaLayers::Pdt(layers)
        };
        TableScan::ranged(
            self.stable(table),
            delta,
            proj,
            bounds,
            self.db.io().clone(),
            self.db.clock().clone(),
        )
    }

    /// Full scan under this transaction's view.
    pub fn scan(&self, table: &str, proj: Vec<usize>) -> TableScan<'_> {
        self.scan_ranged(table, proj, ScanBounds::default())
    }

    /// Total visible rows of `table` under this transaction's view.
    pub fn visible_rows(&self, table: &str) -> u64 {
        let base = self.stable(table).row_count() as i64;
        let delta: i64 = self
            .txn
            .layers(table)
            .iter()
            .map(|p| p.delta_total())
            .sum();
        (base + delta) as u64
    }

    /// Find the RID where a tuple with sort key `sk` must be inserted —
    /// the paper's `SELECT rid FROM t WHERE SK > sk ORDER BY rid LIMIT 1`
    /// flow, served by a sparse-index-ranged scan. Errors on duplicates.
    fn find_insert_rid(&self, table: &str, sk: &[Value]) -> Result<u64, DbError> {
        let sk_cols: Vec<usize> = self.stable(table).sort_key().cols().to_vec();
        let mut scan = self.scan_ranged(
            table,
            sk_cols,
            ScanBounds {
                lo: Some(sk.to_vec()),
                hi: Some(sk.to_vec()),
            },
        );
        // when the whole range is ghosted the scan emits nothing, but the
        // rank of its start is still the correct insert position
        let mut last_end = scan.start_rid();
        use exec::Operator;
        while let Some(batch) = scan.next_batch() {
            for i in 0..batch.num_rows() {
                let key: Vec<Value> = batch.cols.iter().map(|c| c.get(i)).collect();
                match key.as_slice().cmp(sk) {
                    std::cmp::Ordering::Greater => return Ok(batch.rid_start + i as u64),
                    std::cmp::Ordering::Equal => {
                        return Err(DbError::DuplicateKey {
                            table: table.to_string(),
                            key: sk.to_vec(),
                        })
                    }
                    std::cmp::Ordering::Less => {}
                }
            }
            last_end = batch.rid_start + batch.num_rows() as u64;
        }
        Ok(last_end)
    }

    /// INSERT a tuple; its position follows from the table's sort order.
    pub fn insert(&mut self, table: &str, tuple: Tuple) -> Result<(), DbError> {
        let sk = self.stable(table).sort_key().extract(&tuple);
        let rid = self.find_insert_rid(table, &sk)?;
        let trans = self.txn.trans_pdt_mut(table);
        let sid = trans.sk_rid_to_sid(&sk, rid);
        trans.add_insert(sid, rid, &tuple);
        Ok(())
    }

    /// DELETE rows matching `pred` (evaluated over all table columns).
    /// Returns the number of deleted rows.
    pub fn delete_where(&mut self, table: &str, pred: Expr) -> Result<usize, DbError> {
        self.delete_where_ranged(table, pred, ScanBounds::default())
    }

    /// DELETE with a sort-key range restriction (sparse-index assisted).
    pub fn delete_where_ranged(
        &mut self,
        table: &str,
        pred: Expr,
        bounds: ScanBounds,
    ) -> Result<usize, DbError> {
        let ncols = self.stable(table).schema().len();
        let sk_cols: Vec<usize> = self.stable(table).sort_key().cols().to_vec();
        // collect victims under the current view
        let mut victims: Vec<(u64, Vec<Value>)> = Vec::new();
        {
            let mut scan = self.scan_ranged(table, (0..ncols).collect(), bounds);
            use exec::Operator;
            while let Some(batch) = scan.next_batch() {
                let keep = pred.eval_bool(&batch);
                for (i, hit) in keep.iter().enumerate() {
                    if *hit {
                        let sk = sk_cols.iter().map(|&c| batch.cols[c].get(i)).collect();
                        victims.push((batch.rid_start + i as u64, sk));
                    }
                }
            }
        }
        // apply in descending RID order so earlier RIDs stay valid
        let n = victims.len();
        let trans = self.txn.trans_pdt_mut(table);
        for (rid, sk) in victims.into_iter().rev() {
            trans.add_delete(rid, &sk);
        }
        Ok(n)
    }

    /// UPDATE rows matching `pred`, assigning each `(column, expression)`
    /// pair (expressions are evaluated over the pre-image row). Sort-key
    /// columns may be assigned: such updates are rewritten as
    /// delete + insert, per §2.1. Returns the number of updated rows.
    pub fn update_where(
        &mut self,
        table: &str,
        pred: Expr,
        sets: Vec<(usize, Expr)>,
    ) -> Result<usize, DbError> {
        self.update_where_ranged(table, pred, sets, ScanBounds::default())
    }

    /// UPDATE with a sort-key range restriction.
    pub fn update_where_ranged(
        &mut self,
        table: &str,
        pred: Expr,
        sets: Vec<(usize, Expr)>,
        bounds: ScanBounds,
    ) -> Result<usize, DbError> {
        let stable = self.stable(table).clone();
        let ncols = stable.schema().len();
        let sk_cols: Vec<usize> = stable.sort_key().cols().to_vec();
        let touches_sk = sets.iter().any(|(c, _)| sk_cols.contains(c));

        // victims with their new values, evaluated batch-wise
        let mut plain: Vec<(u64, Vec<(usize, Value)>)> = Vec::new();
        let mut rewrites: Vec<(u64, Vec<Value>, Tuple)> = Vec::new(); // (rid, old sk, new tuple)
        {
            let mut scan = self.scan_ranged(table, (0..ncols).collect(), bounds);
            use exec::Operator;
            while let Some(batch) = scan.next_batch() {
                let keep = pred.eval_bool(&batch);
                if !keep.iter().any(|&k| k) {
                    continue;
                }
                let new_vals: Vec<columnar::ColumnVec> =
                    sets.iter().map(|(_, e)| e.eval(&batch)).collect();
                for (i, hit) in keep.iter().enumerate() {
                    if !*hit {
                        continue;
                    }
                    let rid = batch.rid_start + i as u64;
                    if touches_sk {
                        let mut row = batch.row(i);
                        let old_sk: Vec<Value> =
                            sk_cols.iter().map(|&c| row[c].clone()).collect();
                        for ((c, _), vals) in sets.iter().zip(&new_vals) {
                            row[*c] = vals.get(i);
                        }
                        rewrites.push((rid, old_sk, row));
                    } else {
                        let assigns = sets
                            .iter()
                            .zip(&new_vals)
                            .map(|((c, _), vals)| (*c, vals.get(i)))
                            .collect();
                        plain.push((rid, assigns));
                    }
                }
            }
        }
        let n = plain.len() + rewrites.len();
        // in-place modifications: RIDs unaffected, apply in any order
        {
            let trans = self.txn.trans_pdt_mut(table);
            for (rid, assigns) in plain {
                for (col, v) in assigns {
                    trans.add_modify(rid, col, &v);
                }
            }
            // SK rewrites: delete first (descending), insert after
            for (rid, old_sk, _) in rewrites.iter().rev() {
                trans.add_delete(*rid, old_sk);
            }
        }
        for (_, _, row) in rewrites {
            self.insert(table, row)?;
        }
        Ok(n)
    }

    /// Commit via the transaction manager (Serialize + Propagate —
    /// Algorithm 9). On conflict the transaction is gone and the error
    /// describes the clash.
    pub fn commit(self) -> Result<u64, DbError> {
        Ok(self.db.txn_mgr.commit(self.txn)?)
    }

    /// Abort, discarding the Trans-PDTs.
    pub fn abort(self) {
        self.db.txn_mgr.abort(self.txn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScanMode;
    use columnar::{Schema, TableMeta, TableOptions, ValueType};
    use exec::expr::{col, lit};
    use exec::run_to_rows;

    fn db_with_ints(n: i64) -> Database {
        let db = Database::new();
        let schema = Schema::from_pairs(&[("k", ValueType::Int), ("v", ValueType::Int)]);
        let rows: Vec<Tuple> = (0..n)
            .map(|i| vec![Value::Int(i * 10), Value::Int(i)])
            .collect();
        db.create_table(
            TableMeta::new("t", schema, vec![0]),
            TableOptions {
                block_rows: 8,
                compressed: true,
            },
            rows,
        )
        .unwrap();
        db
    }

    fn keys(db: &Database) -> Vec<i64> {
        let view = db.read_view(ScanMode::Pdt);
        let mut scan = view.scan("t", vec![0]);
        run_to_rows(&mut scan).iter().map(|r| r[0].as_int()).collect()
    }

    #[test]
    fn own_updates_visible_within_txn() {
        let db = db_with_ints(10);
        let mut t = db.begin();
        t.insert("t", vec![Value::Int(55), Value::Int(0)]).unwrap();
        assert_eq!(t.visible_rows("t"), 11);
        // the same txn can find and modify the new tuple
        let n = t
            .update_where("t", col(0).eq(lit(55i64)), vec![(1, lit(9i64))])
            .unwrap();
        assert_eq!(n, 1);
        let mut scan = t.scan("t", vec![0, 1]);
        let rows = run_to_rows(&mut scan);
        let hit = rows.iter().find(|r| r[0] == Value::Int(55)).unwrap();
        assert_eq!(hit[1], Value::Int(9));
        t.commit().unwrap();
        assert!(keys(&db).contains(&55));
    }

    #[test]
    fn multi_row_delete_descending_rids() {
        let db = db_with_ints(20);
        let mut t = db.begin();
        let n = t
            .delete_where("t", col(0).ge(lit(50i64)).and(col(0).le(lit(120i64))))
            .unwrap();
        assert_eq!(n, 8);
        t.commit().unwrap();
        let ks = keys(&db);
        assert_eq!(ks.len(), 12);
        assert!(!ks.contains(&50) && !ks.contains(&120) && ks.contains(&130));
    }

    #[test]
    fn abort_discards_updates() {
        let db = db_with_ints(5);
        let mut t = db.begin();
        t.insert("t", vec![Value::Int(99), Value::Int(0)]).unwrap();
        t.abort();
        assert_eq!(keys(&db).len(), 5);
    }

    #[test]
    fn ranged_delete_uses_bounds() {
        let db = db_with_ints(100);
        let io_before = db.io().stats();
        let mut t = db.begin();
        t.delete_where_ranged(
            "t",
            col(0).eq(lit(500i64)),
            ScanBounds {
                lo: Some(vec![Value::Int(500)]),
                hi: Some(vec![Value::Int(500)]),
            },
        )
        .unwrap();
        t.commit().unwrap();
        let scan_bytes = db.io().stats().since(&io_before).bytes_read;
        assert!(keys(&db).len() == 99);
        // the ranged victim scan must not have read the whole table
        let full = db.stable("t").total_bytes();
        assert!(scan_bytes < full, "{scan_bytes} vs {full}");
    }

    #[test]
    fn insert_positions_respect_own_deletes() {
        let db = db_with_ints(10);
        let mut t = db.begin();
        // delete key 50 then insert 45: must go where 50 was
        t.delete_where("t", col(0).eq(lit(50i64)))
            .unwrap();
        t.insert("t", vec![Value::Int(45), Value::Int(0)]).unwrap();
        t.commit().unwrap();
        let ks = keys(&db);
        assert_eq!(ks, vec![0, 10, 20, 30, 40, 45, 60, 70, 80, 90]);
    }

    #[test]
    fn insert_beyond_fully_ghosted_tail() {
        // regression (found by fuzzing): when every stable row the ranged
        // victim scan covers is a ghost, the scan emits nothing — the
        // insert rank must then fall back to the scan's start RID, not 0.
        let db = db_with_ints(40);
        let mut t = db.begin();
        t.delete_where("t", col(0).ge(lit(320i64))).unwrap();
        t.commit().unwrap();
        let mut t = db.begin();
        t.insert("t", vec![Value::Int(1980), Value::Int(0)]).unwrap();
        t.commit().unwrap();
        let ks = keys(&db);
        assert!(ks.windows(2).all(|w| w[0] < w[1]), "order violated: {ks:?}");
        assert_eq!(*ks.last().unwrap(), 1980);
    }

    #[test]
    fn conflicting_engine_txns() {
        let db = db_with_ints(10);
        let mut a = db.begin();
        let mut b = db.begin();
        a.update_where("t", col(0).eq(lit(30i64)), vec![(1, lit(1i64))])
            .unwrap();
        b.update_where("t", col(0).eq(lit(30i64)), vec![(1, lit(2i64))])
            .unwrap();
        a.commit().unwrap();
        assert!(matches!(b.commit(), Err(DbError::Txn(_))));
    }
}
