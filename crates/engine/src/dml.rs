//! Read-write transactions: batch-first DML staged against the table's
//! update structure through the [`DeltaStore`] interface.
//!
//! The write surface is **batch-first**: every statement —
//! [`DbTxn::append`] (columnar bulk insert, with [`Appender`] for
//! streaming loads), the positional [`DbTxn::delete_rids`] /
//! [`DbTxn::update_col`], and the predicate forms built on them — resolves
//! its victims with *one* scan, packs them into one
//! [`DmlBatch`], and stages it with one
//! [`DeltaTxn::stage_batch`] call. Positional-delta maintenance thus
//! amortizes over the whole statement (one victim/rank scan, one op-log
//! entry, one WAL entry per batch), which is where differential-store
//! write throughput comes from. [`DbTxn::insert`] is the one-row special
//! case of `append`.
//!
//! All statements operate on the transaction's own consistent view
//! (stable ∘ committed deltas ∘ staged updates — eq. (9) for PDT tables),
//! so later statements see earlier updates of the same transaction, exactly
//! as §3.3's Trans-PDT layer prescribes. The same flows serve value-based
//! tables: victims are still located positionally by scans; only the
//! staging representation differs.
//!
//! Batch shape (arity, column types, rid ranges) is validated here, at the
//! API boundary — a malformed batch comes back as
//! [`DbError::BatchShape`] before anything is staged, never as a panic
//! inside a delta structure.
//!
//! Commit is two-phase under the manager's commit guard: every touched
//! table's store validates (`prepare`) against updates committed since
//! begin — any conflict aborts the whole transaction — then the WAL record
//! is appended and every store publishes at one commit sequence number, so
//! multi-table transactions stay atomic across update structures.

use crate::batch::DmlBatch;
use crate::delta::{DeltaSnapshot, DeltaStore, DeltaTxn};
use crate::partition::{self, TableEntry};
use crate::{Database, DbError, ScanSpec};
use columnar::{ColumnVec, Schema, StableTable, Tuple, Value, ValueType};
use exec::expr::Expr;
use exec::{Batch, DeltaLayers, Operator, ScanBounds, ScanSegment, TableScan};
use std::collections::HashMap;
use std::sync::Arc;
use txn::wal::WalEntry;

/// One partition's state captured at transaction begin.
pub(crate) struct TxnPart {
    stable: Arc<StableTable>,
    store: Arc<dyn DeltaStore>,
    snap: Arc<dyn DeltaSnapshot>,
    staged: Option<Box<dyn DeltaTxn>>,
    /// The partition's compaction heat map: staged batches charge their
    /// payload bytes to the stable blocks they overlap.
    heat: Arc<crate::compaction::PartitionHeat>,
    /// Partition-scoped I/O tracker (shared counters + heat sink) the
    /// transaction's scans of this partition charge.
    heat_io: columnar::IoTracker,
}

impl TxnPart {
    fn layers(&self) -> DeltaLayers<'_> {
        match &self.staged {
            Some(s) => s.layers(),
            None => self.snap.layers(),
        }
    }

    fn delta_total(&self) -> i64 {
        match &self.staged {
            Some(s) => s.delta_total(),
            None => self.snap.delta_total(),
        }
    }

    /// Visible rows of this partition under the transaction's view
    /// (staged updates included).
    fn visible(&self) -> u64 {
        (self.stable.row_count() as i64 + self.delta_total()) as u64
    }
}

/// Per-table state captured at transaction begin: one [`TxnPart`] per
/// partition, plus the split points that route writes between them.
pub(crate) struct TxnTable {
    parts: Vec<TxnPart>,
    splits: Vec<Vec<Value>>,
}

impl TxnTable {
    pub(crate) fn new(entry: &TableEntry) -> Self {
        TxnTable {
            parts: entry
                .parts
                .iter()
                .map(|p| TxnPart {
                    stable: p.stable.clone(),
                    store: p.delta.clone(),
                    snap: p.delta.snapshot(),
                    staged: None,
                    heat: p.heat.clone(),
                    heat_io: p.heat_io.clone(),
                })
                .collect(),
            splits: entry.splits.clone(),
        }
    }

    fn schema(&self) -> &Schema {
        self.parts[0].stable.schema()
    }

    fn sk_cols(&self) -> &[usize] {
        self.parts[0].stable.sort_key().cols()
    }

    /// Partition owning sort key `key`.
    fn route(&self, key: &[Value]) -> usize {
        partition::route(&self.splits, key)
    }

    /// The partition segments a scan must union, with global rid bases.
    fn segments(&self) -> Vec<ScanSegment<'_>> {
        partition::build_segments(
            self.parts
                .iter()
                .map(|p| (&*p.stable, p.layers(), p.visible(), Some(p.heat_io.clone()))),
        )
    }

    /// Cumulative visible-row offsets: `offsets[p]` is the global RID of
    /// partition `p`'s first row, `offsets[nparts]` the total.
    fn visible_offsets(&self) -> Vec<u64> {
        let mut offsets = Vec::with_capacity(self.parts.len() + 1);
        let mut base = 0u64;
        offsets.push(0);
        for p in &self.parts {
            base += p.visible();
            offsets.push(base);
        }
        offsets
    }
}

/// A read-write transaction handle.
pub struct DbTxn<'db> {
    db: &'db Database,
    id: u64,
    start_seq: u64,
    tables: HashMap<String, TxnTable>,
}

impl<'db> DbTxn<'db> {
    pub(crate) fn new(
        db: &'db Database,
        id: u64,
        start_seq: u64,
        tables: HashMap<String, TxnTable>,
    ) -> Self {
        DbTxn {
            db,
            id,
            start_seq,
            tables,
        }
    }

    fn table(&self, table: &str) -> Result<&TxnTable, DbError> {
        self.tables
            .get(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))
    }

    /// The staging area of one partition of `table`, created on first
    /// update.
    fn staged_mut(&mut self, table: &str, part: usize) -> Result<&mut dyn DeltaTxn, DbError> {
        let start_seq = self.start_seq;
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        let p = &mut t.parts[part];
        Ok(p.staged
            .get_or_insert_with(|| p.store.begin(&p.snap, start_seq))
            .as_mut())
    }

    /// Stage one partition-local batch, charging its payload bytes to the
    /// partition's compaction heat map (advisory — a heat count from a
    /// transaction that later aborts changes planner priorities, never
    /// correctness; see [`crate::compaction`]).
    fn stage_in(&mut self, table: &str, part: usize, batch: DmlBatch) -> Result<(), DbError> {
        self.staged_mut(table, part)?.stage_batch(&batch);
        record_delta_heat(&self.table(table)?.parts[part], &batch);
        Ok(())
    }

    /// Open a scan described by a [`ScanSpec`] under this transaction's
    /// view (including its own uncommitted updates) — the one scan entry
    /// point; the wrappers below forward here. Partitioned tables scan as
    /// a sequential union with globally consecutive RIDs.
    pub fn scan_with(&self, table: &str, spec: ScanSpec) -> Result<TableScan<'_>, DbError> {
        let t = self.table(table)?;
        spec.open(
            table,
            t.schema(),
            t.segments(),
            self.db.io().clone(),
            self.db.clock().clone(),
        )
    }

    /// Scan **one partition** under this transaction's view, with
    /// partition-local RIDs — the unit the positional write paths rank
    /// and collect against.
    fn scan_partition(
        &self,
        table: &str,
        part: usize,
        spec: ScanSpec,
    ) -> Result<TableScan<'_>, DbError> {
        let t = self.table(table)?;
        let p = &t.parts[part];
        spec.open(
            table,
            t.schema(),
            vec![ScanSegment {
                stable: &p.stable,
                layers: p.layers(),
                rid_base: 0,
                io: Some(p.heat_io.clone()),
            }],
            self.db.io().clone(),
            self.db.clock().clone(),
        )
    }

    /// Ranged scan under this transaction's view. Thin wrapper over
    /// [`DbTxn::scan_with`].
    pub fn scan_ranged(
        &self,
        table: &str,
        proj: Vec<usize>,
        bounds: ScanBounds,
    ) -> Result<TableScan<'_>, DbError> {
        self.scan_with(table, ScanSpec::cols(proj).bounds(bounds))
    }

    /// Full scan under this transaction's view. Thin wrapper over
    /// [`DbTxn::scan_with`].
    pub fn scan(&self, table: &str, proj: Vec<usize>) -> Result<TableScan<'_>, DbError> {
        self.scan_with(table, ScanSpec::cols(proj))
    }

    /// Total visible rows of `table` under this transaction's view,
    /// summed over partitions.
    pub fn visible_rows(&self, table: &str) -> Result<u64, DbError> {
        Ok(self.table(table)?.parts.iter().map(TxnPart::visible).sum())
    }

    /// APPEND a whole columnar batch of new rows; each row's position
    /// follows from the table's sort order. This is the paper's
    /// `SELECT rid WHERE SK > sk ORDER BY rid LIMIT 1` insert-positioning
    /// flow, amortized: the batch is routed to its partitions by sort-key
    /// range, and **one** sparse-index-ranged scan per touched partition
    /// resolves every row's rank (and rejects duplicate sort keys —
    /// intra-batch or against the visible image) before a single
    /// [`DeltaTxn::stage_batch`] call per partition stages the statement.
    /// Rows need not arrive sorted. Returns the number of rows appended;
    /// on error nothing is staged.
    pub fn append(&mut self, table: &str, rows: Batch) -> Result<usize, DbError> {
        let n = rows.num_rows();
        let t = self.table(table)?;
        let schema = t.schema().clone();
        let sk_cols: Vec<usize> = t.sk_cols().to_vec();
        let nparts = t.parts.len();
        validate_batch_shape(table, &schema, &rows)?;
        if n == 0 {
            return Ok(0);
        }
        // key-sort the batch (the staging contract) and reject duplicates
        let keys: Vec<Vec<Value>> = (0..n)
            .map(|i| sk_cols.iter().map(|&c| rows.cols[c].get(i)).collect())
            .collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
        for w in order.windows(2) {
            if keys[w[0]] == keys[w[1]] {
                return Err(DbError::DuplicateKey {
                    table: table.to_string(),
                    key: keys[w[0]].clone(),
                });
            }
        }
        // route the key-ordered batch to its partitions (keys are sorted,
        // so each partition's slice stays sorted)
        let t = self.table(table)?;
        let mut groups: Vec<Vec<usize>> = (0..nparts).map(|_| Vec::new()).collect();
        for &i in &order {
            groups[t.route(&keys[i])].push(i);
        }
        // rank every partition's slice first (read-only), so a duplicate
        // detected in a later partition leaves nothing staged
        let mut ranked: Vec<(usize, Vec<u64>)> = Vec::new();
        for (p, idx) in groups.iter().enumerate() {
            if idx.is_empty() {
                continue;
            }
            let pkeys: Vec<&[Value]> = idx.iter().map(|&i| keys[i].as_slice()).collect();
            let base = self.rank_in_partition(table, p, &sk_cols, &pkeys)?;
            // final positions include the intra-batch shift: the j-th row
            // of the partition's slice (in key order) lands j places after
            // its pre-batch rank
            let rids: Vec<u64> = base
                .iter()
                .enumerate()
                .map(|(j, &b)| b + j as u64)
                .collect();
            ranked.push((p, rids));
        }
        // stage per partition; a single-partition, already-sorted input
        // (the common bulk-load case) moves straight through — only
        // out-of-order or cross-partition batches pay the gather copy
        let mut rows = Some(rows);
        for (p, rids) in ranked {
            let idx = &groups[p];
            let sub = if idx.len() == n && idx.iter().enumerate().all(|(i, &o)| i == o) {
                rows.take().expect("whole batch moves once")
            } else {
                rows.as_ref()
                    .expect("batch retained for gathers")
                    .gather(idx)
            };
            self.stage_in(table, p, DmlBatch::Insert { rids, rows: sub })?;
        }
        Ok(n)
    }

    /// Rank sorted `keys` against one partition with a single
    /// sparse-index-ranged scan: a key's base rid is the partition-local
    /// rank of the first visible row with a greater key (the rank of the
    /// range end when none is) — fully ghosted ranges fall back to the
    /// scan's start rank. Detects duplicates against the visible image.
    fn rank_in_partition(
        &self,
        table: &str,
        part: usize,
        sk_cols: &[usize],
        keys: &[&[Value]],
    ) -> Result<Vec<u64>, DbError> {
        let n = keys.len();
        let lo = keys[0].to_vec();
        let hi = keys[n - 1].to_vec();
        let mut base: Vec<u64> = Vec::with_capacity(n);
        let mut scan = self.scan_partition(
            table,
            part,
            ScanSpec::cols(sk_cols.to_vec()).key_range(lo, hi),
        )?;
        let mut last_end = scan.start_rid();
        let mut k = 0usize;
        'scan: while let Some(b) = scan.next_batch() {
            for i in 0..b.num_rows() {
                let vis: Vec<Value> = b.cols.iter().map(|c| c.get(i)).collect();
                while k < n {
                    match keys[k].cmp(&vis[..]) {
                        std::cmp::Ordering::Less => {
                            base.push(b.rid_start + i as u64);
                            k += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            return Err(DbError::DuplicateKey {
                                table: table.to_string(),
                                key: keys[k].to_vec(),
                            });
                        }
                        std::cmp::Ordering::Greater => break,
                    }
                }
                if k == n {
                    break 'scan;
                }
            }
            last_end = b.rid_start + b.num_rows() as u64;
        }
        // keys past every scanned row rank at the range end
        base.resize(n, last_end);
        Ok(base)
    }

    /// INSERT a tuple; its position follows from the table's sort order.
    /// The one-row special case of [`DbTxn::append`].
    pub fn insert(&mut self, table: &str, tuple: Tuple) -> Result<(), DbError> {
        let schema = self.table(table)?.schema().clone();
        validate_tuple(table, &schema, &tuple)?;
        let types = schema.types();
        self.append(table, Batch::from_owned_rows(&types, vec![tuple]))?;
        Ok(())
    }

    /// A streaming bulk-load handle: rows buffer client-side and flush as
    /// sorted batch appends of `batch_rows` (default 4096) rows each.
    pub fn appender<'t>(&'t mut self, table: &str) -> Result<Appender<'t, 'db>, DbError> {
        let schema = self.table(table)?.schema().clone();
        let types = schema.types();
        Ok(Appender {
            buf: Batch::with_capacity(&types, 0),
            types,
            schema,
            table: table.to_string(),
            txn: self,
            batch_rows: Appender::DEFAULT_BATCH_ROWS,
            appended: 0,
        })
    }

    /// Pre-validate a sort-key rewrite (delete victims + re-append the
    /// rewritten rows): the new keys must be distinct and must not collide
    /// with any visible row that is not itself a victim. Checked with one
    /// ranged scan **before anything is staged**, so a rejected statement
    /// leaves the transaction untouched — the same atomicity `append`
    /// gives plain inserts.
    fn check_rewrite_keys(
        &self,
        table: &str,
        victims: &Batch,
        new_rows: &Batch,
    ) -> Result<(), DbError> {
        let sk_cols: Vec<usize> = self.table(table)?.sk_cols().to_vec();
        let key_at = |b: &Batch, i: usize| -> Vec<Value> {
            sk_cols.iter().map(|&c| b.cols[c].get(i)).collect()
        };
        let mut new_keys: Vec<Vec<Value>> = (0..new_rows.num_rows())
            .map(|i| key_at(new_rows, i))
            .collect();
        new_keys.sort();
        for w in new_keys.windows(2) {
            if w[0] == w[1] {
                return Err(DbError::DuplicateKey {
                    table: table.to_string(),
                    key: w[0].clone(),
                });
            }
        }
        let Some((lo, hi)) = new_keys.first().cloned().zip(new_keys.last().cloned()) else {
            return Ok(());
        };
        let victim_keys: std::collections::HashSet<Vec<Value>> = (0..victims.num_rows())
            .map(|i| key_at(victims, i))
            .collect();
        let mut scan = self.scan_with(table, ScanSpec::cols(sk_cols.clone()).key_range(lo, hi))?;
        let mut k = 0usize;
        while let Some(b) = scan.next_batch() {
            for i in 0..b.num_rows() {
                let vis: Vec<Value> = b.cols.iter().map(|c| c.get(i)).collect();
                while k < new_keys.len() && new_keys[k] < vis {
                    k += 1;
                }
                if k == new_keys.len() {
                    return Ok(());
                }
                if new_keys[k] == vis && !victim_keys.contains(&vis) {
                    return Err(DbError::DuplicateKey {
                        table: table.to_string(),
                        key: vis,
                    });
                }
            }
        }
        Ok(())
    }

    /// Full pre-images of the visible rows at `rids` (sorted ascending and
    /// distinct, global positions), collected with one rid-clamped union
    /// scan (partitions outside the window are skipped).
    fn collect_rows_at(&self, table: &str, rids: &[u64]) -> Result<Batch, DbError> {
        let schema = self.table(table)?.schema().clone();
        let mut pre = Batch::with_capacity(&schema.types(), rids.len());
        let Some((&first, &last)) = rids.first().zip(rids.last()) else {
            return Ok(pre);
        };
        let mut scan = self.scan_with(table, ScanSpec::all().rid_range(first, last + 1))?;
        let mut k = 0usize;
        while let Some(b) = scan.next_batch() {
            let end = b.rid_start + b.num_rows() as u64;
            let mut idx = Vec::new();
            while k < rids.len() && rids[k] < end {
                idx.push((rids[k] - b.rid_start) as usize);
                k += 1;
            }
            extend_gathered(&mut pre, &b, &idx);
            if k == rids.len() {
                break;
            }
        }
        if k != rids.len() {
            return Err(batch_shape(table, format!("rid {} out of range", rids[k])));
        }
        Ok(pre)
    }

    /// Stage a globally-addressed positional statement, split into one
    /// [`DmlBatch`] per touched partition with partition-local rids:
    /// `make(local_rids, slice)` builds each partition's batch, where
    /// `slice` is the statement's index range for that partition (`None` =
    /// the whole statement — the single-partition fast path, which moves
    /// the payload instead of slicing it). `rids` ascending and distinct.
    /// Infallible once inputs are validated, so multi-partition statements
    /// stay atomic (nothing stages after an error).
    fn stage_split_positional(
        &mut self,
        table: &str,
        rids: Vec<u64>,
        mut make: impl FnMut(Vec<u64>, Option<std::ops::Range<usize>>) -> DmlBatch,
    ) -> Result<(), DbError> {
        let (nparts, offsets) = {
            let t = self.table(table)?;
            (t.parts.len(), t.visible_offsets())
        };
        if nparts == 1 {
            let batch = make(rids, None);
            self.stage_in(table, 0, batch)?;
            return Ok(());
        }
        let pieces = split_by_offsets(&offsets, &rids);
        // a statement whose victims all land in one partition still moves
        // its payload instead of slicing a full copy
        if let [(p, range)] = pieces.as_slice() {
            debug_assert_eq!(*range, 0..rids.len());
            let local: Vec<u64> = rids.iter().map(|&r| r - offsets[*p]).collect();
            let batch = make(local, None);
            self.stage_in(table, *p, batch)?;
            return Ok(());
        }
        for (p, range) in pieces {
            let local: Vec<u64> = rids[range.clone()]
                .iter()
                .map(|&r| r - offsets[p])
                .collect();
            let batch = make(local, Some(range));
            self.stage_in(table, p, batch)?;
        }
        Ok(())
    }

    /// Per-partition positional delete (see
    /// [`DbTxn::stage_split_positional`]).
    fn stage_delete_batch(
        &mut self,
        table: &str,
        rids: Vec<u64>,
        pre: Batch,
    ) -> Result<(), DbError> {
        let mut pre = Some(pre);
        self.stage_split_positional(table, rids, |rids, slice| DmlBatch::Delete {
            rids,
            pre: match slice {
                None => pre.take().expect("whole statement moves once"),
                Some(r) => slice_rows(pre.as_ref().expect("payload retained"), r),
            },
        })
    }

    /// Per-partition positional single-column update (see
    /// [`DbTxn::stage_split_positional`]).
    fn stage_update_batch(
        &mut self,
        table: &str,
        rids: Vec<u64>,
        col: usize,
        values: ColumnVec,
        pre: Batch,
    ) -> Result<(), DbError> {
        let mut payload = Some((values, pre));
        self.stage_split_positional(table, rids, |rids, slice| match slice {
            None => {
                let (values, pre) = payload.take().expect("whole statement moves once");
                DmlBatch::UpdateCol {
                    rids,
                    col,
                    values,
                    pre,
                }
            }
            Some(r) => {
                let (values, pre) = payload.as_ref().expect("payload retained");
                let mut vals = ColumnVec::new(values.vtype());
                vals.extend_range(values, r.start, r.end);
                DmlBatch::UpdateCol {
                    rids,
                    col,
                    values: vals,
                    pre: slice_rows(pre, r),
                }
            }
        })
    }

    /// DELETE the visible rows at the given positions (any order,
    /// duplicates ignored). One scan collects the pre-images, one
    /// [`DeltaTxn::stage_batch`] call per touched partition stages the
    /// statement. Returns the number of deleted rows.
    pub fn delete_rids(&mut self, table: &str, rids: &[u64]) -> Result<usize, DbError> {
        let visible = self.visible_rows(table)?;
        let mut sorted = rids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let Some(&last) = sorted.last() else {
            return Ok(0);
        };
        if last >= visible {
            return Err(batch_shape(
                table,
                format!("rid {last} out of range (visible rows: {visible})"),
            ));
        }
        let pre = self.collect_rows_at(table, &sorted)?;
        let n = sorted.len();
        self.stage_delete_batch(table, sorted, pre)?;
        Ok(n)
    }

    /// UPDATE one column of the visible rows at the given positions:
    /// `values[i]` becomes the new value of `col` for the row at `rids[i]`.
    /// Sort-key columns are allowed — those updates are rewritten as
    /// delete + insert, per §2.1. Returns the number of updated rows.
    pub fn update_col(
        &mut self,
        table: &str,
        rids: &[u64],
        col: usize,
        values: ColumnVec,
    ) -> Result<usize, DbError> {
        let t = self.table(table)?;
        let schema = t.schema().clone();
        let sk_cols: Vec<usize> = t.sk_cols().to_vec();
        if col >= schema.len() {
            return Err(batch_shape(
                table,
                format!("column #{col} out of range ({} columns)", schema.len()),
            ));
        }
        let want = schema.vtype(col);
        let got = values.vtype();
        if got != want && !(got == ValueType::Int && want == ValueType::Double) {
            return Err(batch_shape(
                table,
                format!("values for column #{col} are {got}, table expects {want}"),
            ));
        }
        if values.len() != rids.len() {
            return Err(batch_shape(
                table,
                format!("{} rids but {} values", rids.len(), values.len()),
            ));
        }
        if rids.is_empty() {
            return Ok(0);
        }
        // pair values with rids, then order by position
        let mut order: Vec<usize> = (0..rids.len()).collect();
        order.sort_by_key(|&i| rids[i]);
        if let Some(w) = order.windows(2).find(|w| rids[w[0]] == rids[w[1]]) {
            return Err(batch_shape(
                table,
                format!("rid {} updated twice in one statement", rids[w[0]]),
            ));
        }
        let visible = self.visible_rows(table)?;
        let last = rids[order[rids.len() - 1]];
        if last >= visible {
            return Err(batch_shape(
                table,
                format!("rid {last} out of range (visible rows: {visible})"),
            ));
        }
        let sorted_rids: Vec<u64> = order.iter().map(|&i| rids[i]).collect();
        let mut sorted_vals = ColumnVec::with_capacity(got, values.len());
        for &i in &order {
            sorted_vals.push_owned(values.get(i));
        }
        let pre = self.collect_rows_at(table, &sorted_rids)?;
        let n = sorted_rids.len();
        if sk_cols.contains(&col) {
            let mut new_rows = Batch::with_capacity(&schema.types(), n);
            for i in 0..n {
                let mut row = pre.row(i);
                row[col] = sorted_vals.get(i);
                new_rows.push_owned_row(row);
            }
            self.stage_key_rewrite(table, sorted_rids, pre, new_rows)?;
        } else {
            self.stage_update_batch(table, sorted_rids, col, sorted_vals, pre)?;
        }
        Ok(n)
    }

    /// The §2.1 sort-key rewrite shared by [`DbTxn::update_col`] and
    /// [`DbTxn::update_where_ranged`]: delete the victims, re-append the
    /// rewritten rows (which re-rank themselves — and re-*route*
    /// themselves: a key rewrite may move a row to a different
    /// partition). Key collisions are checked **before anything is
    /// staged**, so a rejected statement leaves the transaction
    /// untouched.
    fn stage_key_rewrite(
        &mut self,
        table: &str,
        rids: Vec<u64>,
        pre: Batch,
        new_rows: Batch,
    ) -> Result<(), DbError> {
        self.check_rewrite_keys(table, &pre, &new_rows)?;
        self.stage_delete_batch(table, rids, pre)?;
        self.append(table, new_rows)?;
        Ok(())
    }

    /// DELETE rows matching `pred` (evaluated over all table columns).
    /// Returns the number of deleted rows.
    pub fn delete_where(&mut self, table: &str, pred: Expr) -> Result<usize, DbError> {
        self.delete_where_ranged(table, pred, ScanBounds::default())
    }

    /// DELETE with a sort-key range restriction (sparse-index assisted).
    /// One victim scan, one batched staging call.
    pub fn delete_where_ranged(
        &mut self,
        table: &str,
        pred: Expr,
        bounds: ScanBounds,
    ) -> Result<usize, DbError> {
        let schema = self.table(table)?.schema().clone();
        // collect victims (RID + full pre-image) under the current view
        let mut rids: Vec<u64> = Vec::new();
        let mut pre = Batch::empty(&schema.types());
        {
            let mut scan = self.scan_with(table, ScanSpec::all().bounds(bounds))?;
            while let Some(batch) = scan.next_batch() {
                let keep = pred.eval_bool(&batch);
                let idx: Vec<usize> = keep
                    .iter()
                    .enumerate()
                    .filter_map(|(i, hit)| hit.then_some(i))
                    .collect();
                rids.extend(idx.iter().map(|&i| batch.rid_start + i as u64));
                extend_gathered(&mut pre, &batch, &idx);
            }
        }
        let n = rids.len();
        if n > 0 {
            self.stage_delete_batch(table, rids, pre)?;
        }
        Ok(n)
    }

    /// UPDATE rows matching `pred`, assigning each `(column, expression)`
    /// pair (expressions are evaluated over the pre-image row). Sort-key
    /// columns may be assigned: such updates are rewritten as
    /// delete + insert, per §2.1. Returns the number of updated rows.
    pub fn update_where(
        &mut self,
        table: &str,
        pred: Expr,
        sets: Vec<(usize, Expr)>,
    ) -> Result<usize, DbError> {
        self.update_where_ranged(table, pred, sets, ScanBounds::default())
    }

    /// UPDATE with a sort-key range restriction. One victim scan feeds
    /// one batched staging call per assigned column (plain updates), or a
    /// batched delete + batched append (sort-key rewrites).
    pub fn update_where_ranged(
        &mut self,
        table: &str,
        pred: Expr,
        sets: Vec<(usize, Expr)>,
        bounds: ScanBounds,
    ) -> Result<usize, DbError> {
        let t = self.table(table)?;
        let schema = t.schema().clone();
        let types = schema.types();
        let sk_cols: Vec<usize> = t.sk_cols().to_vec();
        let touches_sk = sets.iter().any(|(c, _)| sk_cols.contains(c));

        // victims with their new values, evaluated batch-wise and gathered
        // columnar: one rid run, the pre-images, and one value vector per
        // assigned column
        let mut rids: Vec<u64> = Vec::new();
        let mut pre = Batch::empty(&types);
        let mut set_vals: Vec<Option<ColumnVec>> = sets.iter().map(|_| None).collect();
        {
            let mut scan = self.scan_with(table, ScanSpec::all().bounds(bounds))?;
            while let Some(batch) = scan.next_batch() {
                let keep = pred.eval_bool(&batch);
                if !keep.iter().any(|&k| k) {
                    continue;
                }
                let idx: Vec<usize> = keep
                    .iter()
                    .enumerate()
                    .filter_map(|(i, hit)| hit.then_some(i))
                    .collect();
                rids.extend(idx.iter().map(|&i| batch.rid_start + i as u64));
                extend_gathered(&mut pre, &batch, &idx);
                for ((_, e), acc) in sets.iter().zip(&mut set_vals) {
                    let vals = e.eval(&batch);
                    acc.get_or_insert_with(|| ColumnVec::new(vals.vtype()))
                        .extend_gather(&vals, &idx);
                }
            }
        }
        let n = rids.len();
        if n == 0 {
            return Ok(0);
        }
        if touches_sk {
            // rewrite every victim: new tuple = pre-image + all assignments
            let mut new_rows = Batch::with_capacity(&types, n);
            for i in 0..n {
                let mut row = pre.row(i);
                for ((c, _), vals) in sets.iter().zip(&set_vals) {
                    row[*c] = vals.as_ref().expect("evaluated with victims").get(i);
                }
                new_rows.push_owned_row(row);
            }
            self.stage_key_rewrite(table, rids, pre, new_rows)?;
        } else {
            // one staged batch per assigned column; the last one takes the
            // shared rid/pre-image payload by move, so the common
            // single-column statement never clones it
            let nsets = sets.len();
            let mut rids = rids;
            let mut pre = pre;
            for (j, ((col, _), vals)) in sets.iter().zip(set_vals).enumerate() {
                let (r, p) = if j + 1 == nsets {
                    let p = std::mem::replace(&mut pre, Batch::empty(&[]));
                    (std::mem::take(&mut rids), p)
                } else {
                    (rids.clone(), pre.clone())
                };
                self.stage_update_batch(table, r, *col, vals.expect("evaluated with victims"), p)?;
            }
        }
        Ok(n)
    }

    /// Commit: prepare every touched partition of every touched table
    /// (Serialize for PDT partitions, key-addressed replay validation for
    /// value-store partitions — each partition validates only its own
    /// footprint), append one partition-tagged WAL record, publish
    /// everything at one commit sequence. On conflict the transaction is
    /// gone and the error describes the clash.
    pub fn commit(self) -> Result<u64, DbError> {
        let trace_start = obs::trace::enabled().then(std::time::Instant::now);
        let mgr = &self.db.txn_mgr;
        let _commit = mgr.commit_guard();
        // flatten to the touched (table, partition) list, deterministic
        // order (WAL records, lock-free publishes)
        let mut touched: Vec<(String, u32, TxnPart)> = Vec::new();
        let mut tables: Vec<(String, TxnTable)> = self.tables.into_iter().collect();
        tables.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, t) in tables {
            for (p, part) in t.parts.into_iter().enumerate() {
                if part.staged.as_ref().is_some_and(|s| s.is_dirty()) {
                    touched.push((name.clone(), p as u32, part));
                }
            }
        }
        if touched.is_empty() {
            // read-only transaction: nothing to do, no new sequence needed
            mgr.end_txn(self.id);
            return Ok(mgr.seq());
        }
        // Phase 1: validate everything, failing wholesale on any conflict.
        for (_, _, part) in touched.iter_mut() {
            let staged = part.staged.as_mut().expect("filtered on staged").as_mut();
            if let Err(e) = part.store.prepare(staged) {
                mgr.end_txn(self.id);
                return Err(e);
            }
        }
        // Durability before visibility: one record for the whole commit.
        // The per-partition flattenings also ride along to `publish` —
        // stores that checkpoint by residual replay retain them until a
        // marker covers them.
        let entries: Vec<(String, u32, Vec<WalEntry>)> = touched
            .iter()
            .map(|(name, p, part)| {
                let staged = part.staged.as_ref().expect("filtered on staged").as_ref();
                (name.clone(), *p, part.store.wal_entries(staged))
            })
            .collect();
        let logged: Vec<(&str, u32, &[WalEntry])> = entries
            .iter()
            .filter(|(_, _, e)| !e.is_empty())
            .map(|(t, p, e)| (t.as_str(), *p, e.as_slice()))
            .collect();
        // When tracing, keep the touched (table, partition, wal entries)
        // triples for the commit event and the slow-commit check after
        // the durable wait (`entries` itself is consumed by publish).
        let traced_parts: Vec<(String, u32, u64)> = if trace_start.is_some() {
            entries
                .iter()
                .map(|(name, p, e)| (name.clone(), *p, e.len() as u64))
                .collect()
        } else {
            Vec::new()
        };
        let seq = mgr.alloc_seq();
        // Group commit phase A: enqueue the record in the coordinator's
        // buffer while still under the commit guard (keeps the log in
        // sequence order); the physical append happens after the guard
        // drops, shared with concurrently committing sessions.
        let wal_ticket = mgr.log_commit_enqueue(seq, &logged);
        // Phase 2: publish (infallible).
        for ((_, _, mut part), (_, _, part_entries)) in touched.into_iter().zip(entries) {
            let staged = part.staged.take().expect("filtered on staged");
            part.store.publish(staged, seq, &part_entries);
        }
        mgr.end_txn(self.id);
        drop(_commit);
        // Group commit phase B: acknowledge only once the record is on
        // disk. The commit is visible before it is durable; a crash in the
        // window loses only commits whose `commit()` never returned.
        let durable_start = trace_start.map(|_| std::time::Instant::now());
        if let Some(ticket) = wal_ticket {
            mgr.wait_wal_durable(ticket)?;
        }
        if let Some(t0) = trace_start {
            let total = t0.elapsed();
            let durable_ns = durable_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
            let wal_entries: u64 = traced_parts.iter().map(|(_, _, e)| e).sum();
            obs::event!(
                obs::TraceKind::Commit,
                seq: seq,
                dur_ns: total.as_nanos() as u64,
                a: traced_parts.len() as u64,
                b: wal_entries,
            );
            // Slow-commit log: one event per touched (table, partition)
            // whose table asked for it (`entries` are sorted by table, so
            // the threshold lookup is cached across adjacent partitions).
            let mut cached: Option<(String, Option<std::time::Duration>)> = None;
            for (name, part, part_entries) in &traced_parts {
                if cached.as_ref().is_none_or(|(n, _)| n != name) {
                    let th = self
                        .db
                        .options(name)
                        .ok()
                        .and_then(|o| o.slow_commit_threshold);
                    cached = Some((name.clone(), th));
                }
                let slow = cached
                    .as_ref()
                    .and_then(|(_, th)| *th)
                    .is_some_and(|th| total >= th);
                if slow {
                    obs::event!(
                        obs::TraceKind::SlowCommit,
                        table: obs::trace::intern(name),
                        part: *part,
                        seq: seq,
                        dur_ns: total.as_nanos() as u64,
                        a: *part_entries,
                        b: durable_ns,
                    );
                }
            }
        }
        Ok(seq)
    }

    /// Abort, discarding all staged updates.
    pub fn abort(self) {
        self.db.txn_mgr.end_txn(self.id);
    }
}

/// A streaming bulk-load handle (see [`DbTxn::appender`]): rows accumulate
/// in a columnar buffer and flush as one [`DbTxn::append`] per
/// `batch_rows` rows, so a row-at-a-time producer still writes through the
/// batched path. Call [`Appender::finish`] to flush the tail and get the
/// total row count; dropping an unfinished appender discards only the
/// *unflushed* tail (flushed batches are staged in the transaction like
/// any other statement).
pub struct Appender<'t, 'db> {
    txn: &'t mut DbTxn<'db>,
    table: String,
    schema: Schema,
    types: Vec<ValueType>,
    buf: Batch,
    batch_rows: usize,
    appended: usize,
}

impl<'t, 'db> Appender<'t, 'db> {
    const DEFAULT_BATCH_ROWS: usize = 4096;

    /// Override the rows-per-flush granularity (default 4096).
    pub fn with_batch_rows(mut self, rows: usize) -> Self {
        self.batch_rows = rows.max(1);
        self
    }

    /// Buffer one row, flushing a full batch through [`DbTxn::append`].
    pub fn push(&mut self, row: Tuple) -> Result<(), DbError> {
        validate_tuple(&self.table, &self.schema, &row)?;
        self.buf.push_owned_row(row);
        if self.buf.num_rows() >= self.batch_rows {
            self.flush()?;
        }
        Ok(())
    }

    /// Flush the buffered rows as one batch append (no-op when empty).
    pub fn flush(&mut self) -> Result<(), DbError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let batch = std::mem::replace(&mut self.buf, Batch::with_capacity(&self.types, 0));
        self.appended += self.txn.append(&self.table, batch)?;
        Ok(())
    }

    /// Flush the tail and return the total number of rows appended.
    pub fn finish(mut self) -> Result<usize, DbError> {
        self.flush()?;
        Ok(self.appended)
    }
}

fn batch_shape(table: &str, detail: String) -> DbError {
    DbError::BatchShape {
        table: table.to_string(),
        detail,
    }
}

/// Boundary validation of a columnar write batch: full arity, every column
/// of the schema's exact type, no ragged columns.
fn validate_batch_shape(table: &str, schema: &Schema, rows: &Batch) -> Result<(), DbError> {
    if rows.num_cols() != schema.len() {
        return Err(batch_shape(
            table,
            format!(
                "batch has {} columns, table has {}",
                rows.num_cols(),
                schema.len()
            ),
        ));
    }
    let nrows = rows.num_rows();
    for (i, c) in rows.cols.iter().enumerate() {
        if c.vtype() != schema.vtype(i) {
            return Err(batch_shape(
                table,
                format!(
                    "column #{i} is {}, table expects {}",
                    c.vtype(),
                    schema.vtype(i)
                ),
            ));
        }
        if c.len() != nrows {
            return Err(batch_shape(
                table,
                format!(
                    "ragged batch: column #{i} has {} of {} rows",
                    c.len(),
                    nrows
                ),
            ));
        }
    }
    Ok(())
}

/// Boundary validation of one row: full arity, every value of the
/// column's type (`Null` and Int-into-Double promote, as in storage).
fn validate_tuple(table: &str, schema: &Schema, tuple: &[Value]) -> Result<(), DbError> {
    if tuple.len() != schema.len() {
        return Err(batch_shape(
            table,
            format!(
                "row has {} values, table has {} columns",
                tuple.len(),
                schema.len()
            ),
        ));
    }
    for (i, v) in tuple.iter().enumerate() {
        let ok = match (v.value_type(), schema.vtype(i)) {
            (None, _) => true, // Null stores the type default
            (Some(got), want) if got == want => true,
            (Some(ValueType::Int), ValueType::Double) => true,
            _ => false,
        };
        if !ok {
            return Err(batch_shape(
                table,
                format!(
                    "value {v:?} at column #{i} does not fit {}",
                    schema.vtype(i)
                ),
            ));
        }
    }
    Ok(())
}

/// Charge a staged batch's payload bytes to the stable blocks its
/// partition-local rid span overlaps. Rids address the *visible* image,
/// which drifts from stable SIDs as deltas accumulate — close enough for
/// a heat heuristic, and exact right after a checkpoint (when heat
/// restarts cold). Trailing inserts clamp onto the last block.
fn record_delta_heat(p: &TxnPart, batch: &DmlBatch) {
    let (Some(&first), Some(&last)) = (match batch {
        DmlBatch::Insert { rids, .. }
        | DmlBatch::Delete { rids, .. }
        | DmlBatch::UpdateCol { rids, .. } => (rids.first(), rids.last()),
    }) else {
        return;
    };
    let bytes = match batch {
        DmlBatch::Insert { rows, .. } => rows.cols.iter().map(ColumnVec::heap_bytes).sum::<usize>(),
        DmlBatch::Delete { pre, .. } => pre.cols.iter().map(ColumnVec::heap_bytes).sum::<usize>(),
        DmlBatch::UpdateCol { values, .. } => values.heap_bytes(),
    } as u64;
    let n = p.stable.row_count();
    if n == 0 || p.stable.num_blocks() == 0 {
        p.heat.record_delta_span(0, 0, bytes);
        return;
    }
    let b0 = p.stable.block_of(first.min(n - 1));
    let b1 = p.stable.block_of(last.min(n - 1));
    p.heat.record_delta_span(b0, b1, bytes);
}

/// Split ascending global `rids` into per-partition index ranges:
/// partition `p` owns the rids in `[offsets[p], offsets[p+1])`. Only
/// partitions with victims are returned.
fn split_by_offsets(offsets: &[u64], rids: &[u64]) -> Vec<(usize, std::ops::Range<usize>)> {
    let nparts = offsets.len() - 1;
    let mut out = Vec::new();
    let mut i = 0usize;
    for p in 0..nparts {
        let start = i;
        while i < rids.len() && rids[i] < offsets[p + 1] {
            i += 1;
        }
        if i > start {
            out.push((p, start..i));
        }
    }
    out
}

/// Copy a contiguous row range of `src` into a fresh batch (the
/// per-partition slice of a multi-partition positional statement).
fn slice_rows(src: &Batch, range: std::ops::Range<usize>) -> Batch {
    Batch {
        cols: src
            .cols
            .iter()
            .map(|c| {
                let mut out = ColumnVec::new(c.vtype());
                out.extend_range(c, range.start, range.end);
                out
            })
            .collect(),
        rid_start: 0,
    }
}

/// Append the rows of `src` at `idx` onto `dst` column-wise (the
/// selection-vector gather the victim-collection paths share).
fn extend_gathered(dst: &mut Batch, src: &Batch, idx: &[usize]) {
    if idx.is_empty() {
        return;
    }
    for (d, s) in dst.cols.iter_mut().zip(&src.cols) {
        d.extend_gather(s, idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TableOptions, UpdatePolicy};
    use columnar::{Schema, TableMeta, ValueType};
    use exec::expr::{col, lit};
    use exec::run_to_rows;

    fn db_with_ints(n: i64, policy: UpdatePolicy) -> Database {
        let db = Database::new();
        let schema = Schema::from_pairs(&[("k", ValueType::Int), ("v", ValueType::Int)]);
        let rows: Vec<Tuple> = (0..n)
            .map(|i| vec![Value::Int(i * 10), Value::Int(i)])
            .collect();
        db.create_table(
            TableMeta::new("t", schema, vec![0]),
            TableOptions {
                block_rows: 8,
                compressed: true,
                policy,
                ..TableOptions::default()
            },
            rows,
        )
        .unwrap();
        db
    }

    fn keys(db: &Database) -> Vec<i64> {
        let view = db.read_view();
        let mut scan = view.scan("t", vec![0]).unwrap();
        run_to_rows(&mut scan)
            .iter()
            .map(|r| r[0].as_int())
            .collect()
    }

    use crate::ALL_POLICIES;

    #[test]
    fn own_updates_visible_within_txn() {
        for policy in ALL_POLICIES {
            let db = db_with_ints(10, policy);
            let mut t = db.begin();
            t.insert("t", vec![Value::Int(55), Value::Int(0)]).unwrap();
            assert_eq!(t.visible_rows("t").unwrap(), 11, "{policy:?}");
            // the same txn can find and modify the new tuple
            let n = t
                .update_where("t", col(0).eq(lit(55i64)), vec![(1, lit(9i64))])
                .unwrap();
            assert_eq!(n, 1);
            let mut scan = t.scan("t", vec![0, 1]).unwrap();
            let rows = run_to_rows(&mut scan);
            let hit = rows.iter().find(|r| r[0] == Value::Int(55)).unwrap();
            assert_eq!(hit[1], Value::Int(9));
            t.commit().unwrap();
            assert!(keys(&db).contains(&55), "{policy:?}");
        }
    }

    #[test]
    fn multi_row_delete_descending_rids() {
        for policy in ALL_POLICIES {
            let db = db_with_ints(20, policy);
            let mut t = db.begin();
            let n = t
                .delete_where("t", col(0).ge(lit(50i64)).and(col(0).le(lit(120i64))))
                .unwrap();
            assert_eq!(n, 8);
            t.commit().unwrap();
            let ks = keys(&db);
            assert_eq!(ks.len(), 12);
            assert!(!ks.contains(&50) && !ks.contains(&120) && ks.contains(&130));
        }
    }

    #[test]
    fn abort_discards_updates() {
        for policy in ALL_POLICIES {
            let db = db_with_ints(5, policy);
            let mut t = db.begin();
            t.insert("t", vec![Value::Int(99), Value::Int(0)]).unwrap();
            t.abort();
            assert_eq!(keys(&db).len(), 5, "{policy:?}");
        }
    }

    #[test]
    fn ranged_delete_uses_bounds() {
        let db = db_with_ints(100, UpdatePolicy::Pdt);
        let io_before = db.io().stats();
        let mut t = db.begin();
        t.delete_where_ranged(
            "t",
            col(0).eq(lit(500i64)),
            ScanBounds {
                lo: Some(vec![Value::Int(500)]),
                hi: Some(vec![Value::Int(500)]),
            },
        )
        .unwrap();
        t.commit().unwrap();
        let scan_bytes = db.io().stats().since(&io_before).bytes_read;
        assert!(keys(&db).len() == 99);
        // the ranged victim scan must not have read the whole table
        let full = db.stable_single("t").unwrap().total_bytes();
        assert!(scan_bytes < full, "{scan_bytes} vs {full}");
    }

    #[test]
    fn insert_positions_respect_own_deletes() {
        for policy in ALL_POLICIES {
            let db = db_with_ints(10, policy);
            let mut t = db.begin();
            // delete key 50 then insert 45: must go where 50 was
            t.delete_where("t", col(0).eq(lit(50i64))).unwrap();
            t.insert("t", vec![Value::Int(45), Value::Int(0)]).unwrap();
            t.commit().unwrap();
            let ks = keys(&db);
            assert_eq!(ks, vec![0, 10, 20, 30, 40, 45, 60, 70, 80, 90]);
        }
    }

    #[test]
    fn insert_beyond_fully_ghosted_tail() {
        // regression (found by fuzzing): when every stable row the ranged
        // victim scan covers is a ghost, the scan emits nothing — the
        // insert rank must then fall back to the scan's start RID, not 0.
        for policy in ALL_POLICIES {
            let db = db_with_ints(40, policy);
            let mut t = db.begin();
            t.delete_where("t", col(0).ge(lit(320i64))).unwrap();
            t.commit().unwrap();
            let mut t = db.begin();
            t.insert("t", vec![Value::Int(1980), Value::Int(0)])
                .unwrap();
            t.commit().unwrap();
            let ks = keys(&db);
            assert!(ks.windows(2).all(|w| w[0] < w[1]), "order violated: {ks:?}");
            assert_eq!(*ks.last().unwrap(), 1980);
        }
    }

    fn int_types() -> Vec<ValueType> {
        vec![ValueType::Int, ValueType::Int]
    }

    #[test]
    fn append_matches_row_at_a_time_inserts() {
        for policy in ALL_POLICIES {
            let batched = db_with_ints(10, policy);
            let looped = db_with_ints(10, policy);
            // unsorted input, scattered + clustered + tail positions
            let rows: Vec<Tuple> = [95i64, 5, 41, 43, 42, 1000, 999]
                .iter()
                .map(|&k| vec![Value::Int(k), Value::Int(-k)])
                .collect();
            let mut t = batched.begin();
            assert_eq!(
                t.append("t", Batch::from_rows(&int_types(), &rows))
                    .unwrap(),
                7
            );
            t.commit().unwrap();
            let mut t = looped.begin();
            for r in &rows {
                t.insert("t", r.clone()).unwrap();
            }
            t.commit().unwrap();
            let img = |db: &Database| {
                let view = db.read_view();
                exec::run_to_rows(&mut view.scan("t", vec![0, 1]).unwrap())
            };
            assert_eq!(img(&batched), img(&looped), "{policy:?}");
            let ks: Vec<i64> = img(&batched).iter().map(|r| r[0].as_int()).collect();
            assert!(ks.windows(2).all(|w| w[0] < w[1]), "{policy:?}: {ks:?}");
        }
    }

    #[test]
    fn append_rejects_duplicates_atomically() {
        for policy in ALL_POLICIES {
            let db = db_with_ints(10, policy);
            // intra-batch duplicate
            let mut t = db.begin();
            let dup = vec![
                vec![Value::Int(5), Value::Int(0)],
                vec![Value::Int(5), Value::Int(1)],
            ];
            assert!(matches!(
                t.append("t", Batch::from_rows(&int_types(), &dup)),
                Err(DbError::DuplicateKey { .. })
            ));
            // duplicate against the visible image — nothing staged by the
            // failed statement, so the good row is absent too
            let mixed = vec![
                vec![Value::Int(77), Value::Int(0)],
                vec![Value::Int(30), Value::Int(1)],
            ];
            assert!(matches!(
                t.append("t", Batch::from_rows(&int_types(), &mixed)),
                Err(DbError::DuplicateKey { .. })
            ));
            assert_eq!(t.visible_rows("t").unwrap(), 10, "{policy:?}");
            t.abort();
        }
    }

    #[test]
    fn append_ranks_against_own_staged_rows() {
        for policy in ALL_POLICIES {
            let db = db_with_ints(4, policy);
            let mut t = db.begin();
            t.append(
                "t",
                Batch::from_rows(&int_types(), &[vec![Value::Int(15), Value::Int(0)]]),
            )
            .unwrap();
            // second batch interleaves with the first batch's row
            t.append(
                "t",
                Batch::from_rows(
                    &int_types(),
                    &[
                        vec![Value::Int(13), Value::Int(0)],
                        vec![Value::Int(17), Value::Int(0)],
                    ],
                ),
            )
            .unwrap();
            t.commit().unwrap();
            assert_eq!(keys(&db), vec![0, 10, 13, 15, 17, 20, 30], "{policy:?}");
        }
    }

    #[test]
    fn delete_rids_matches_predicate_deletes() {
        for policy in ALL_POLICIES {
            let db = db_with_ints(20, policy);
            let mut t = db.begin();
            // unsorted, with a duplicate — keys 30, 70, 180
            let n = t.delete_rids("t", &[7, 3, 18, 7]).unwrap();
            assert_eq!(n, 3);
            t.commit().unwrap();
            let ks = keys(&db);
            assert_eq!(ks.len(), 17, "{policy:?}");
            assert!(!ks.contains(&30) && !ks.contains(&70) && !ks.contains(&180));
        }
    }

    #[test]
    fn update_col_positional_and_sort_key_rewrite() {
        for policy in ALL_POLICIES {
            let db = db_with_ints(10, policy);
            let mut t = db.begin();
            // plain column, unsorted rids paired with values
            let n = t
                .update_col("t", &[8, 2], 1, ColumnVec::Int(vec![88, 22]))
                .unwrap();
            assert_eq!(n, 2);
            // sort-key column: rewrite 90 -> 35 repositions the row
            let n = t
                .update_col("t", &[9], 0, ColumnVec::Int(vec![35]))
                .unwrap();
            assert_eq!(n, 1);
            t.commit().unwrap();
            let view = db.read_view();
            let rows = exec::run_to_rows(&mut view.scan("t", vec![0, 1]).unwrap());
            let ks: Vec<i64> = rows.iter().map(|r| r[0].as_int()).collect();
            assert_eq!(
                ks,
                vec![0, 10, 20, 30, 35, 40, 50, 60, 70, 80],
                "{policy:?}"
            );
            let find = |k: i64| rows.iter().find(|r| r[0].as_int() == k).unwrap()[1].as_int();
            assert_eq!(find(20), 22, "{policy:?}");
            assert_eq!(find(80), 88, "{policy:?}");
            assert_eq!(find(35), 9, "{policy:?}: payload survives the rewrite");
        }
    }

    #[test]
    fn failed_sort_key_rewrite_stages_nothing() {
        // regression (code review): the §2.1 delete+append rewrite used to
        // stage its deletes before the re-append detected a key collision,
        // leaving the statement half-applied on error
        for policy in ALL_POLICIES {
            let db = db_with_ints(5, policy);
            let mut t = db.begin();
            // rewrite 0 -> 30 collides with the existing key 30
            assert!(matches!(
                t.update_col("t", &[0], 0, ColumnVec::Int(vec![30])),
                Err(DbError::DuplicateKey { .. })
            ));
            assert_eq!(t.visible_rows("t").unwrap(), 5, "{policy:?}: delete leaked");
            // same through the predicate form
            assert!(matches!(
                t.update_where("t", col(0).eq(lit(0i64)), vec![(0, lit(30i64))]),
                Err(DbError::DuplicateKey { .. })
            ));
            assert_eq!(t.visible_rows("t").unwrap(), 5, "{policy:?}: delete leaked");
            // two victims rewriting into each other's key range still works
            // (deletes free the keys before the appends rank themselves)
            let n = t
                .update_col("t", &[1, 2], 0, ColumnVec::Int(vec![20, 10]))
                .unwrap();
            assert_eq!(n, 2);
            t.commit().unwrap();
            assert_eq!(keys(&db), vec![0, 10, 20, 30, 40], "{policy:?}");
            let view = db.read_view();
            let rows = run_to_rows(&mut view.scan("t", vec![0, 1]).unwrap());
            assert_eq!(rows[2][1], Value::Int(1), "{policy:?}: 10->20 payload");
            assert_eq!(rows[1][1], Value::Int(2), "{policy:?}: 20->10 payload");
        }
    }

    #[test]
    fn appender_streams_through_batched_appends() {
        for policy in ALL_POLICIES {
            let db = db_with_ints(5, policy);
            let mut t = db.begin();
            let mut app = t.appender("t").unwrap().with_batch_rows(3);
            for k in [95i64, 5, 41, 107, 203, 11, 12] {
                app.push(vec![Value::Int(k), Value::Int(0)]).unwrap();
            }
            assert_eq!(app.finish().unwrap(), 7);
            t.commit().unwrap();
            let ks = keys(&db);
            assert_eq!(ks.len(), 12, "{policy:?}");
            assert!(ks.windows(2).all(|w| w[0] < w[1]), "{policy:?}: {ks:?}");
        }
    }

    #[test]
    fn batch_shape_errors_at_the_boundary() {
        let db = db_with_ints(5, UpdatePolicy::Pdt);
        let mut t = db.begin();
        // wrong arity
        let narrow = Batch::from_rows(&[ValueType::Int], &[vec![Value::Int(1)]]);
        assert!(matches!(
            t.append("t", narrow),
            Err(DbError::BatchShape { .. })
        ));
        // wrong column type
        let wrong = Batch::from_rows(
            &[ValueType::Int, ValueType::Str],
            &[vec![Value::Int(1), Value::Str("x".into())]],
        );
        assert!(matches!(
            t.append("t", wrong),
            Err(DbError::BatchShape { .. })
        ));
        // tuple arity through insert and the appender
        assert!(matches!(
            t.insert("t", vec![Value::Int(1)]),
            Err(DbError::BatchShape { .. })
        ));
        let mut app = t.appender("t").unwrap();
        assert!(matches!(
            app.push(vec![Value::Str("oops".into()), Value::Int(0)]),
            Err(DbError::BatchShape { .. })
        ));
        drop(app);
        // positional forms: out-of-range rid, mismatched value count,
        // duplicate rid
        assert!(matches!(
            t.delete_rids("t", &[99]),
            Err(DbError::BatchShape { .. })
        ));
        assert!(matches!(
            t.update_col("t", &[0, 1], 1, ColumnVec::Int(vec![7])),
            Err(DbError::BatchShape { .. })
        ));
        assert!(matches!(
            t.update_col("t", &[1, 1], 1, ColumnVec::Int(vec![7, 8])),
            Err(DbError::BatchShape { .. })
        ));
        assert!(matches!(
            t.update_col("t", &[0], 9, ColumnVec::Int(vec![7])),
            Err(DbError::BatchShape { .. })
        ));
        assert!(matches!(
            t.update_col("t", &[0], 1, ColumnVec::Str(vec!["x".into()])),
            Err(DbError::BatchShape { .. })
        ));
        // nothing staged by any rejected statement
        assert_eq!(t.visible_rows("t").unwrap(), 5);
        t.commit().unwrap();
        assert_eq!(keys(&db).len(), 5);
    }

    #[test]
    fn scan_with_specs_match_wrappers() {
        let db = db_with_ints(50, UpdatePolicy::Pdt);
        let view = db.read_view();
        let by_idx = run_to_rows(&mut view.scan("t", vec![1]).unwrap());
        let by_name = run_to_rows(&mut view.scan_with("t", crate::ScanSpec::named(["v"])).unwrap());
        assert_eq!(by_idx, by_name);
        let all = run_to_rows(&mut view.scan_with("t", crate::ScanSpec::all()).unwrap());
        assert_eq!(all.len(), 50);
        assert_eq!(all[0].len(), 2);
        // rid window
        let windowed = run_to_rows(
            &mut view
                .scan_with("t", crate::ScanSpec::all().rid_range(10, 13))
                .unwrap(),
        );
        assert_eq!(windowed, all[10..13].to_vec());
        // unknown name errors
        assert!(matches!(
            view.scan_with("t", crate::ScanSpec::named(["ghost"])),
            Err(DbError::UnknownColumn { .. })
        ));
        // txn-side spec scan sees staged updates
        let mut t = db.begin();
        t.insert("t", vec![Value::Int(5), Value::Int(-1)]).unwrap();
        let staged = run_to_rows(&mut t.scan_with("t", crate::ScanSpec::named(["k"])).unwrap());
        assert_eq!(staged.len(), 51);
        t.abort();
    }

    #[test]
    fn conflicting_engine_txns() {
        let db = db_with_ints(10, UpdatePolicy::Pdt);
        let mut a = db.begin();
        let mut b = db.begin();
        a.update_where("t", col(0).eq(lit(30i64)), vec![(1, lit(1i64))])
            .unwrap();
        b.update_where("t", col(0).eq(lit(30i64)), vec![(1, lit(2i64))])
            .unwrap();
        a.commit().unwrap();
        assert!(matches!(b.commit(), Err(DbError::Txn(_))));
    }

    /// The two value-addressed stores, which share the key-based conflict
    /// semantics these tests pin down (the PDT equivalents live in
    /// `conflicting_engine_txns` and the txn crate).
    const VALUE_STORES: [UpdatePolicy; 2] = [UpdatePolicy::Vdt, UpdatePolicy::RowStore];

    #[test]
    fn conflicting_value_store_inserts_abort_second_writer() {
        for policy in VALUE_STORES {
            let db = db_with_ints(10, policy);
            let mut a = db.begin();
            let mut b = db.begin();
            a.insert("t", vec![Value::Int(55), Value::Int(1)]).unwrap();
            b.insert("t", vec![Value::Int(55), Value::Int(2)]).unwrap();
            a.commit().unwrap();
            assert!(
                matches!(b.commit(), Err(DbError::Conflict { .. })),
                "{policy:?}"
            );
            // state reflects only a's insert
            let view = db.read_view();
            let mut scan = view.scan("t", vec![0, 1]).unwrap();
            let rows = run_to_rows(&mut scan);
            let hit = rows.iter().find(|r| r[0] == Value::Int(55)).unwrap();
            assert_eq!(hit[1], Value::Int(1), "{policy:?}");
        }
    }

    #[test]
    fn conflicting_value_store_modifies_abort_second_writer() {
        // same column of the same tuple: the value-based validation must
        // detect the lost update, exactly like PDT Serialize does
        for policy in VALUE_STORES {
            let db = db_with_ints(10, policy);
            let mut a = db.begin();
            let mut b = db.begin();
            a.update_where("t", col(0).eq(lit(30i64)), vec![(1, lit(1i64))])
                .unwrap();
            b.update_where("t", col(0).eq(lit(30i64)), vec![(1, lit(2i64))])
                .unwrap();
            a.commit().unwrap();
            assert!(
                matches!(b.commit(), Err(DbError::Conflict { .. })),
                "{policy:?}"
            );
            let view = db.read_view();
            let rows = run_to_rows(&mut view.scan("t", vec![0, 1]).unwrap());
            assert_eq!(
                rows[3][1],
                Value::Int(1),
                "{policy:?}: first writer's value survives"
            );
        }
    }

    #[test]
    fn disjoint_column_value_store_modifies_reconcile() {
        // different columns of the same tuple reconcile (CheckModConflict)
        for policy in VALUE_STORES {
            let db = Database::new();
            let schema = Schema::from_pairs(&[
                ("k", ValueType::Int),
                ("a", ValueType::Int),
                ("b", ValueType::Int),
            ]);
            db.create_table(
                TableMeta::new("t", schema, vec![0]),
                TableOptions::default().with_policy(policy),
                vec![vec![Value::Int(1), Value::Int(0), Value::Int(0)]],
            )
            .unwrap();
            let mut p = db.begin();
            let mut q = db.begin();
            p.update_where("t", col(0).eq(lit(1i64)), vec![(1, lit(11i64))])
                .unwrap();
            q.update_where("t", col(0).eq(lit(1i64)), vec![(2, lit(22i64))])
                .unwrap();
            p.commit().unwrap();
            q.commit()
                .unwrap_or_else(|e| panic!("{policy:?}: disjoint columns must reconcile: {e}"));
            let view = db.read_view();
            let rows = run_to_rows(&mut view.scan("t", vec![0, 1, 2]).unwrap());
            assert_eq!(
                rows[0],
                vec![Value::Int(1), Value::Int(11), Value::Int(22)],
                "{policy:?}"
            );
        }
    }

    #[test]
    fn value_store_delete_vs_modify_conflicts() {
        for policy in VALUE_STORES {
            let db = db_with_ints(10, policy);
            let mut a = db.begin();
            let mut b = db.begin();
            a.update_where("t", col(0).eq(lit(30i64)), vec![(1, lit(1i64))])
                .unwrap();
            b.delete_where("t", col(0).eq(lit(30i64))).unwrap();
            a.commit().unwrap();
            assert!(
                matches!(b.commit(), Err(DbError::Conflict { .. })),
                "{policy:?}"
            );
            assert_eq!(
                db.row_count("t").unwrap(),
                10,
                "{policy:?}: delete must not land"
            );
        }
    }

    #[test]
    fn disjoint_value_store_commits_both_land() {
        // the validation path: b began before a committed, touching other
        // keys — both commits must land
        for policy in VALUE_STORES {
            let db = db_with_ints(10, policy);
            let mut a = db.begin();
            let mut b = db.begin();
            a.update_where("t", col(0).eq(lit(10i64)), vec![(1, lit(-1i64))])
                .unwrap();
            b.update_where("t", col(0).eq(lit(80i64)), vec![(1, lit(-2i64))])
                .unwrap();
            a.commit().unwrap();
            b.commit().unwrap();
            let view = db.read_view();
            let mut scan = view.scan("t", vec![0, 1]).unwrap();
            let rows = run_to_rows(&mut scan);
            assert_eq!(rows[1][1], Value::Int(-1), "{policy:?}");
            assert_eq!(rows[8][1], Value::Int(-2), "{policy:?}");
            assert_eq!(rows.len(), 10, "{policy:?}");
        }
    }
}
