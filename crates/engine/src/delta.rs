//! # The unified update-structure interface
//!
//! The paper's central comparison — positional (PDT) against value-based
//! (VDT) differential maintenance — only means something when both
//! structures sit behind the *same* lifecycle. This module defines that
//! lifecycle as three traits and gives each structure an implementation:
//!
//! * [`DeltaStore`] — one instance per table, chosen at `create_table` time
//!   via [`UpdatePolicy`]. Covers committed-state snapshots, the two-phase
//!   commit protocol (prepare → publish, driven by [`crate::DbTxn`] under
//!   the manager's commit guard), WAL flattening and replay, memory
//!   accounting for the Propagate policy, and checkpointing into a fresh
//!   stable image.
//! * [`DeltaSnapshot`] — an immutable capture of the committed delta state,
//!   from which scans obtain their [`DeltaLayers`].
//! * [`DeltaTxn`] — a transaction's private staging area: `stage_insert` /
//!   `stage_delete` / `stage_modify` mirror the DML statements, and
//!   `layers` lets the transaction's own scans see its uncommitted updates.
//!
//! [`PdtStore`] delegates to the [`TxnManager`]'s stacked-PDT machinery
//! (Read/Write/Trans layers, Serialize/Propagate commits — §3.3).
//! [`VdtStore`] gives the value-based baseline the *same* transactional
//! treatment the paper's VDT lacks in most systems: staged ops, snapshot
//! isolation from an immutable committed tree, key-addressed write-write
//! conflict detection on replay, and WAL-logged commits. The third backend,
//! [`crate::RowStore`](crate::rowstore::RowStore), stages updates in a
//! copy-on-write row buffer with per-commit versioned runs — the classic
//! delta-store model — again with zero call-site changes; three
//! independently implemented structures behind one lifecycle are what the
//! differential test harness ([`crate::testkit`]) leans on.

use crate::batch::DmlBatch;
use crate::DbError;
use columnar::{ColumnVec, ColumnarError, IoTracker, StableTable, Tuple, Value};
use exec::DeltaLayers;
use parking_lot::RwLock;
use pdt::Pdt;
use std::any::Any;
use std::sync::Arc;
use txn::wal::{self, WalEntry};
use txn::TxnManager;
use vdt::{Vdt, VdtOp};

/// Which differential structure maintains a table (per-table, chosen at
/// [`crate::Database::create_table`] time through [`crate::TableOptions`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdatePolicy {
    /// Positional Delta Trees under snapshot-isolation transactions (the
    /// paper's contribution; the default).
    #[default]
    Pdt,
    /// The value-based delta baseline (insert/delete trees keyed by sort
    /// key), behind the same transactional interface.
    Vdt,
    /// The classic delta-store baseline: an uncompressed copy-on-write row
    /// buffer with per-commit versioned runs, behind the same transactional
    /// interface.
    RowStore,
}

/// Every update policy, in a fixed order — drives the differential test
/// harness and policy-parametrized tests.
pub const ALL_POLICIES: [UpdatePolicy; 3] =
    [UpdatePolicy::Pdt, UpdatePolicy::Vdt, UpdatePolicy::RowStore];

/// An in-flight checkpoint of one table: the committed delta state pinned
/// by [`DeltaStore::checkpoint_pin`] (phase 1, under the commit guard),
/// carried across the off-lock stable rewrite
/// ([`DeltaStore::checkpoint_merge`]) to the installation of the new image
/// ([`DeltaStore::checkpoint_install`], under the commit guard again).
pub struct CheckpointPin {
    /// Global commit sequence at pin time: every commit at or below it is
    /// folded into the merged image; every later one stays in the residual
    /// delta after install. Also the sequence the WAL checkpoint marker
    /// carries.
    pub seq: u64,
    state: Box<dyn Any + Send>,
}

impl CheckpointPin {
    /// Pin at commit sequence `seq` carrying store-private `state`.
    pub fn new(seq: u64, state: impl Any + Send) -> Self {
        CheckpointPin {
            seq,
            state: Box::new(state),
        }
    }

    pub(crate) fn state<T: Any>(&self) -> &T {
        self.state
            .downcast_ref::<T>()
            .expect("checkpoint pin handed back to a foreign store")
    }
}

/// The target of a **range-scoped** checkpoint (sub-partition
/// compaction): stable blocks `[b0, b1)` of one partition, with the
/// positional window and key bounds the three stores classify their
/// delta against. Built by the engine from the stable image captured at
/// pin time.
#[derive(Debug, Clone)]
pub struct CompactRange {
    /// First stable block of the merge unit.
    pub b0: usize,
    /// One past the last stable block of the merge unit.
    pub b1: usize,
    /// First stable SID of the window (`block_range(b0).0`).
    pub s0: u64,
    /// One past the last stable SID (`block_range(b1 - 1).1`).
    pub s1: u64,
    /// `row_count()` of the captured stable — `s1 == row_count` means
    /// the window ends at the last block, so trailing inserts fold too.
    pub row_count: u64,
    /// Exclusive lower key bound for value-addressed stores: the max
    /// sort key of block `b0 - 1`. `None` at the partition's first
    /// block (unbounded below).
    pub lo: Option<Vec<Value>>,
    /// Inclusive upper key bound: the max sort key of block `b1 - 1`.
    /// `None` when the window ends at the last block (unbounded above —
    /// appends beyond the image fold here).
    pub hi: Option<Vec<Value>>,
}

impl CompactRange {
    /// Does the window end at the partition's last block, folding the
    /// append gap at `row_count` as well?
    pub fn folds_tail(&self) -> bool {
        self.s1 == self.row_count
    }

    /// Key-window test for value-addressed stores: sort keys strictly
    /// above `lo` and at most `hi` merge into the window's blocks;
    /// everything else stays in the residual delta. Prefix comparison —
    /// bounds may be key prefixes of the full sort key.
    pub fn key_in_window(&self, key: &[Value]) -> bool {
        let above = self.lo.as_deref().is_none_or(|lo| {
            key.iter().cmp(lo.iter().take(key.len())) == std::cmp::Ordering::Greater
        });
        let below = self.hi.as_deref().is_none_or(|hi| {
            key.iter().cmp(hi.iter().take(key.len())) != std::cmp::Ordering::Greater
        });
        above && below
    }
}

/// Result of [`DeltaStore::checkpoint_merge_range`]: the window's merged
/// rows in columnar form (input to [`StableTable::splice_blocks`]), the
/// residual delta flattened for the WAL range marker, and store-private
/// install state carried to [`DeltaStore::checkpoint_install_range`].
pub struct RangeMerge {
    /// One merged column per schema column, covering exactly the
    /// window's post-merge rows.
    pub cols: Vec<ColumnVec>,
    /// The out-of-window delta as loggable entries — what the WAL range
    /// marker carries so recovery can rebuild the residual over the
    /// spliced image.
    pub residual_entries: Vec<WalEntry>,
    state: Box<dyn Any + Send>,
}

impl RangeMerge {
    /// Package a range merge with store-private install `state`.
    pub fn new(
        cols: Vec<ColumnVec>,
        residual_entries: Vec<WalEntry>,
        state: impl Any + Send,
    ) -> Self {
        RangeMerge {
            cols,
            residual_entries,
            state: Box::new(state),
        }
    }

    pub(crate) fn into_state<T: Any>(self) -> T {
        *self
            .state
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("range merge handed back to a foreign store"))
    }
}

/// Materialize the rows of stable blocks `[b0, b1)` (the merge input of
/// the value-addressed stores' range checkpoints).
pub(crate) fn range_rows(
    stable: &StableTable,
    b0: usize,
    b1: usize,
    io: &IoTracker,
) -> Result<Vec<Tuple>, ColumnarError> {
    let ncols = stable.num_columns();
    let mut rows = Vec::new();
    for b in b0..b1 {
        let cols: Vec<ColumnVec> = (0..ncols)
            .map(|c| stable.read_block(c, b, io))
            .collect::<Result<_, _>>()?;
        let n = cols.first().map_or(0, ColumnVec::len);
        rows.reserve(n);
        for i in 0..n {
            rows.push(cols.iter().map(|c| c.get(i)).collect());
        }
    }
    Ok(rows)
}

/// Row-major → column-major for a range merge's output.
pub(crate) fn columnarize(schema: &columnar::Schema, rows: &[Tuple]) -> Vec<ColumnVec> {
    let mut cols: Vec<ColumnVec> = schema
        .fields()
        .iter()
        .map(|f| ColumnVec::with_capacity(f.vtype, rows.len()))
        .collect();
    for row in rows {
        for (c, v) in row.iter().enumerate() {
            cols[c].push(v);
        }
    }
    cols
}

/// Flatten a value-addressed residual (delete keys + insert tuples, each
/// key-sorted) into loggable entries: deletes first, then inserts, so
/// replaying through [`apply_key_entries`] reconstructs the structure
/// exactly (an insert over its own delete key re-hides the stable row).
pub(crate) fn key_residual_entries(dels: Vec<Vec<Value>>, inss: Vec<Tuple>) -> Vec<WalEntry> {
    let mut entries = Vec::new();
    match dels.len() {
        0 => {}
        1 => entries.push(WalEntry {
            sid: 0,
            kind: pdt::DEL,
            values: dels.into_iter().next().unwrap(),
        }),
        _ => entries.push(WalEntry {
            sid: 0,
            kind: pdt::DEL_BATCH,
            values: dels.into_iter().flatten().collect(),
        }),
    }
    match inss.len() {
        0 => {}
        1 => entries.push(WalEntry {
            sid: 0,
            kind: pdt::INS,
            values: inss.into_iter().next().unwrap(),
        }),
        _ => entries.push(WalEntry {
            sid: 0,
            kind: pdt::INS_BATCH,
            values: inss.into_iter().flatten().collect(),
        }),
    }
    entries
}

/// A value-addressed structure that key-addressed WAL entries apply to.
pub(crate) trait KeyEntrySink {
    fn apply_insert(&mut self, tuple: Vec<Value>);
    /// Apply one logged batch of inserts. Default: row loop; structures
    /// with a cheaper bulk path override it.
    fn apply_insert_batch(&mut self, tuples: Vec<Tuple>) {
        for t in tuples {
            self.apply_insert(t);
        }
    }
    fn apply_delete(&mut self, key: &[Value]);
    /// `(tuple width, sort-key width)` — the chunk sizes that slice a
    /// batched entry's flat value payload back into rows and keys.
    fn entry_widths(&self) -> (usize, usize);
}

impl KeyEntrySink for Vdt {
    fn apply_insert(&mut self, tuple: Vec<Value>) {
        self.insert(tuple);
    }

    fn apply_insert_batch(&mut self, tuples: Vec<Tuple>) {
        self.insert_batch(tuples);
    }

    fn apply_delete(&mut self, key: &[Value]) {
        self.delete(key);
    }

    fn entry_widths(&self) -> (usize, usize) {
        (self.schema().len(), self.sk_cols().len())
    }
}

/// Apply engine-generated key-addressed WAL entries (`INS` carries the
/// full tuple, `DEL` the sort key, `INS_BATCH`/`DEL_BATCH` whole
/// statements' worth of either) to a value-addressed structure — the one
/// replay loop shared by WAL recovery and the checkpoint-residual
/// rebuilds of both value stores. Panics on any other kind: value stores
/// never log modifies (they flatten them to delete + insert).
pub(crate) fn apply_key_entries(entries: &[WalEntry], sink: &mut impl KeyEntrySink) {
    let (tuple_width, key_width) = sink.entry_widths();
    for e in entries {
        if e.kind == pdt::INS {
            sink.apply_insert(e.values.clone());
        } else if e.kind == pdt::DEL {
            sink.apply_delete(&e.values);
        } else if e.kind == pdt::INS_BATCH {
            sink.apply_insert_batch(
                e.values
                    .chunks(tuple_width)
                    .map(<[Value]>::to_vec)
                    .collect(),
            );
        } else if e.kind == pdt::DEL_BATCH {
            for key in e.values.chunks(key_width) {
                sink.apply_delete(key);
            }
        } else {
            panic!(
                "value-store WAL replay: unexpected modify entry (kind {})",
                e.kind
            );
        }
    }
}

/// Pin-gated retention of commit WAL flattenings, shared by both value
/// stores' checkpoint protocols. While a checkpoint is in flight (between
/// pin and install/abort) every published commit's key-addressed entries
/// are recorded; at install the entries with sequence above the pin — the
/// commits that landed during the off-lock merge — rebuild the residual
/// delta over the new image. Raw staged ops would not do: their pre-images
/// can predate a commit the pin already folded into the image. Gating on
/// the pin bounds the memory to the merge window, so a database that never
/// checkpoints retains nothing.
pub(crate) struct ResidualLog {
    pinned_at: Option<u64>,
    log: Vec<(u64, Vec<WalEntry>)>,
}

impl ResidualLog {
    pub(crate) fn new() -> Self {
        ResidualLog {
            pinned_at: None,
            log: Vec::new(),
        }
    }

    /// Start retaining (checkpoint pinned at `seq`). Per-table maintenance
    /// is serialized by the engine, so no pin can already be in flight.
    pub(crate) fn pin(&mut self, seq: u64) {
        debug_assert!(
            self.pinned_at.is_none() && self.log.is_empty(),
            "checkpoint pinned while another pin is in flight"
        );
        self.pinned_at = Some(seq);
    }

    /// Record one published commit (no-op unless a pin is in flight).
    pub(crate) fn record(&mut self, seq: u64, entries: &[WalEntry]) {
        if self.pinned_at.is_some() && !entries.is_empty() {
            self.log.push((seq, entries.to_vec()));
        }
    }

    /// Replay the retained commits with sequence above `pin_seq` into
    /// `sink` — the residual delta over the checkpointed image.
    pub(crate) fn rebuild_into(&self, pin_seq: u64, sink: &mut impl KeyEntrySink) {
        for (_, entries) in self.log.iter().filter(|(s, _)| *s > pin_seq) {
            apply_key_entries(entries, sink);
        }
    }

    /// End the pin window (after install, or on a failed merge) and drop
    /// the retained entries.
    pub(crate) fn unpin(&mut self) {
        self.pinned_at = None;
        self.log.clear();
    }
}

/// Immutable committed-state capture used by read views.
pub trait DeltaSnapshot: Send + Sync {
    /// The delta layers a scan over the stable image must merge.
    fn layers(&self) -> DeltaLayers<'_>;
    /// Net visible-row change relative to the stable image.
    fn delta_total(&self) -> i64;
    /// Downcast seam for store-specific test assertions.
    fn as_any(&self) -> &dyn Any;
}

/// A transaction's private staging area for one table.
pub trait DeltaTxn: Send {
    /// Delta layers including this transaction's own staged updates.
    fn layers(&self) -> DeltaLayers<'_>;
    /// Net visible-row change including staged updates.
    fn delta_total(&self) -> i64;
    /// Has anything been staged?
    fn is_dirty(&self) -> bool;
    /// Stage an insert of `tuple` at visible position `rid`.
    fn stage_insert(&mut self, rid: u64, tuple: &[Value]);
    /// Stage deletion of the visible row `row` at position `rid`.
    fn stage_delete(&mut self, rid: u64, row: &[Value]);
    /// Stage `row[col] = value` for the visible row `row` at `rid`.
    fn stage_modify(&mut self, rid: u64, col: usize, value: &Value, row: &[Value]);
    /// Stage one whole batched statement (see [`DmlBatch`] for the
    /// invariants the engine upholds). The default is the row loop every
    /// structure is correct under — inserts in application order, deletes
    /// in descending rid order so earlier positions stay valid; the
    /// concrete stores override it with vectorized paths (one sorted-run
    /// merge per batch for the row store, one op-log/WAL entry per batch
    /// for the value stores).
    fn stage_batch(&mut self, batch: &DmlBatch) {
        match batch {
            DmlBatch::Insert { rids, rows } => {
                for (i, &rid) in rids.iter().enumerate() {
                    self.stage_insert(rid, &rows.row(i));
                }
            }
            DmlBatch::Delete { rids, pre } => {
                for (i, &rid) in rids.iter().enumerate().rev() {
                    self.stage_delete(rid, &pre.row(i));
                }
            }
            DmlBatch::UpdateCol {
                rids,
                col,
                values,
                pre,
            } => {
                for (i, &rid) in rids.iter().enumerate() {
                    self.stage_modify(rid, *col, &values.get(i), &pre.row(i));
                }
            }
        }
    }
    /// Downcast seam for store-specific test assertions.
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcast seam.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// One table's update structure: the full differential-maintenance
/// lifecycle behind a single interface.
///
/// The commit protocol is two-phase and driven by [`crate::DbTxn::commit`]
/// under [`TxnManager::commit_guard`]: `prepare` every touched table
/// (validating against concurrently committed updates — any failure aborts
/// the whole transaction before anything is visible), flatten
/// `wal_entries`, log them, then `publish` every table at one commit
/// sequence number.
pub trait DeltaStore: Send + Sync {
    /// Which structure this store maintains.
    fn policy(&self) -> UpdatePolicy;
    /// Capture the committed delta state for reads.
    fn snapshot(&self) -> Arc<dyn DeltaSnapshot>;
    /// Open a staging area on top of a snapshot taken at transaction begin
    /// (`start_seq` is the global commit sequence observed then).
    fn begin(&self, snap: &Arc<dyn DeltaSnapshot>, start_seq: u64) -> Box<dyn DeltaTxn>;
    /// Commit phase 1: validate the staged updates against everything
    /// committed since `start_seq`, rewriting them into publishable form.
    fn prepare(&self, staged: &mut dyn DeltaTxn) -> Result<(), DbError>;
    /// The staged updates flattened for the write-ahead log (call after
    /// `prepare`).
    fn wal_entries(&self, staged: &dyn DeltaTxn) -> Vec<WalEntry>;
    /// Commit phase 2: atomically make the prepared updates visible at
    /// commit sequence `seq`. `entries` is the commit's WAL flattening for
    /// this table (as produced by [`DeltaStore::wal_entries`]) — stores
    /// that checkpoint by residual replay retain it until the next
    /// checkpoint covers it. Infallible — all validation happened in
    /// `prepare`.
    fn publish(&self, staged: Box<dyn DeltaTxn>, seq: u64, entries: &[WalEntry]);
    /// Recovery: re-apply one logged commit's entries for this table.
    fn replay(&self, entries: &[WalEntry]);
    /// Bytes held by the write-optimised layer (the Propagate policy input
    /// for [`crate::Database::maybe_flush`]).
    fn write_bytes(&self) -> usize;
    /// Total bytes held by all committed delta layers — the checkpoint
    /// budget input of the maintenance scheduler.
    fn delta_bytes(&self) -> usize;
    /// Migrate the write-optimised layer into the read-optimised one.
    /// Returns whether anything moved (single-layer structures return
    /// `false`).
    fn flush(&self) -> bool;
    /// Checkpoint phase 1 (cheap; run under the commit guard): pin the
    /// committed delta state that the checkpoint will fold into the stable
    /// image. `seq` is the global commit sequence at pin time. Returns
    /// `None` when there is nothing to checkpoint. Callers must serialize
    /// per-table maintenance: between a pin and its install only commits
    /// may touch this store — never a flush or another checkpoint.
    fn checkpoint_pin(&self, seq: u64) -> Option<CheckpointPin>;
    /// Checkpoint phase 2 (run OFF every lock — commits and new read views
    /// proceed concurrently): fold the pinned delta into `stable`,
    /// returning the fresh image (`None` when the pinned delta is net-zero
    /// and the current image already equals the merged one).
    fn checkpoint_merge(
        &self,
        pin: &CheckpointPin,
        stable: &StableTable,
        io: &IoTracker,
    ) -> Result<Option<StableTable>, DbError>;
    /// Checkpoint phase 3 (cheap; under the commit guard, atomically with
    /// the stable-image swap): forget exactly the pinned delta. Commits
    /// published during the merge — sequence > `pin.seq` — survive as the
    /// residual delta over the new image.
    fn checkpoint_install(&self, pin: CheckpointPin);
    /// Abandon an in-flight checkpoint whose merge (or marker append)
    /// failed: release any pin-window state without touching the delta —
    /// the table must be left exactly as if the checkpoint never started,
    /// ready for the next attempt. Default: stateless pins need nothing.
    fn checkpoint_abort(&self, _pin: CheckpointPin) {}
    /// Range-scoped checkpoint phase 2 (off every lock, like
    /// [`DeltaStore::checkpoint_merge`]): fold exactly the part of the
    /// pinned delta addressing `range` into merged columns — the input to
    /// [`StableTable::splice_blocks`] — and flatten the out-of-range
    /// remainder into residual WAL entries (for the range marker) plus
    /// store-private install state. The same pin/abort protocol applies:
    /// on `Err` the caller must `checkpoint_abort` the pin.
    fn checkpoint_merge_range(
        &self,
        pin: &CheckpointPin,
        stable: &StableTable,
        range: &CompactRange,
        io: &IoTracker,
    ) -> Result<RangeMerge, DbError>;
    /// Range-scoped checkpoint phase 3 (under the commit guard, atomic
    /// with the spliced-image swap): replace the pinned delta with the
    /// merge's out-of-range residual, positions rebased onto the spliced
    /// image. Commits with sequence > `pin.seq` survive on top, exactly
    /// as in [`DeltaStore::checkpoint_install`].
    fn checkpoint_install_range(&self, pin: CheckpointPin, merge: RangeMerge);
}

// --- Positional store ---------------------------------------------------

/// [`DeltaStore`] over stacked PDTs, delegating to the shared
/// [`TxnManager`] (which owns the Read/Write layers, the TZ conflict set
/// and the commit sequence for all PDT tables).
pub struct PdtStore {
    mgr: Arc<TxnManager>,
    table: String,
}

impl PdtStore {
    /// The PDT store of `table`, registered with `mgr`.
    pub fn new(mgr: Arc<TxnManager>, table: String) -> Self {
        PdtStore { mgr, table }
    }
}

struct PdtSnapshot {
    read: Arc<Pdt>,
    write: Arc<Pdt>,
}

impl PdtSnapshot {
    fn stack<'a>(read: &'a Pdt, write: &'a Pdt, trans: Option<&'a Pdt>) -> DeltaLayers<'a> {
        let mut layers = Vec::with_capacity(3);
        if !read.is_empty() {
            layers.push(read);
        }
        if !write.is_empty() {
            layers.push(write);
        }
        if let Some(t) = trans {
            if !t.is_empty() {
                layers.push(t);
            }
        }
        if layers.is_empty() {
            DeltaLayers::None
        } else {
            DeltaLayers::Pdt(layers)
        }
    }
}

impl DeltaSnapshot for PdtSnapshot {
    fn layers(&self) -> DeltaLayers<'_> {
        Self::stack(&self.read, &self.write, None)
    }

    fn delta_total(&self) -> i64 {
        self.read.delta_total() + self.write.delta_total()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct PdtTxn {
    read: Arc<Pdt>,
    write: Arc<Pdt>,
    /// The transaction's private Trans-PDT (eq. (9)'s top layer).
    trans: Pdt,
    start_seq: u64,
    /// Filled by `prepare`: the Trans-PDT serialized against overlapping
    /// committed deltas (Algorithm 8), ready to propagate.
    serialized: Option<Arc<Pdt>>,
}

impl DeltaTxn for PdtTxn {
    fn layers(&self) -> DeltaLayers<'_> {
        PdtSnapshot::stack(&self.read, &self.write, Some(&self.trans))
    }

    fn delta_total(&self) -> i64 {
        self.read.delta_total() + self.write.delta_total() + self.trans.delta_total()
    }

    fn is_dirty(&self) -> bool {
        !self.trans.is_empty()
    }

    fn stage_insert(&mut self, rid: u64, tuple: &[Value]) {
        let sk: Vec<Value> = self
            .trans
            .sk_cols()
            .iter()
            .map(|&c| tuple[c].clone())
            .collect();
        let sid = self.trans.sk_rid_to_sid(&sk, rid);
        self.trans.add_insert(sid, rid, tuple);
    }

    fn stage_delete(&mut self, rid: u64, row: &[Value]) {
        let sk: Vec<Value> = self
            .trans
            .sk_cols()
            .iter()
            .map(|&c| row[c].clone())
            .collect();
        self.trans.add_delete(rid, &sk);
    }

    fn stage_modify(&mut self, rid: u64, col: usize, value: &Value, _row: &[Value]) {
        self.trans.add_modify(rid, col, value);
    }

    /// Positional batch staging. PDT maintenance is already logarithmic
    /// per entry (the paper's point), so the tree ops stay per-row; the
    /// batch form wins by appending the whole insert payload to the value
    /// space **column-at-a-time** (typed `extend_range`, no per-value enum
    /// dispatch and no full-row materialization — each tree entry then just
    /// references its pre-assigned value-space offset), and by flowing to
    /// the WAL as coalesced batch entries after serialization.
    fn stage_batch(&mut self, batch: &DmlBatch) {
        match batch {
            DmlBatch::Insert { rids, rows } => {
                let sk_cols = self.trans.sk_cols().to_vec();
                let base = self.trans.add_insert_batch(&rows.cols);
                let mut sk: Vec<Value> = Vec::with_capacity(sk_cols.len());
                for (i, &rid) in rids.iter().enumerate() {
                    sk.clear();
                    sk.extend(sk_cols.iter().map(|&c| rows.cols[c].get(i)));
                    let sid = self.trans.sk_rid_to_sid(&sk, rid);
                    self.trans.add_insert_at(sid, rid, base + i as u64);
                }
            }
            DmlBatch::Delete { rids, pre } => {
                let sk_cols = self.trans.sk_cols().to_vec();
                let mut sk: Vec<Value> = Vec::with_capacity(sk_cols.len());
                // descending, so earlier victims' positions stay valid
                for (i, &rid) in rids.iter().enumerate().rev() {
                    sk.clear();
                    sk.extend(sk_cols.iter().map(|&c| pre.cols[c].get(i)));
                    self.trans.add_delete(rid, &sk);
                }
            }
            DmlBatch::UpdateCol {
                rids, col, values, ..
            } => {
                for (i, &rid) in rids.iter().enumerate() {
                    self.trans.add_modify(rid, *col, &values.get(i));
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl DeltaStore for PdtStore {
    fn policy(&self) -> UpdatePolicy {
        UpdatePolicy::Pdt
    }

    fn snapshot(&self) -> Arc<dyn DeltaSnapshot> {
        let snap = self
            .mgr
            .snapshot_table(&self.table)
            .unwrap_or_else(|| panic!("table {} not registered", self.table));
        Arc::new(PdtSnapshot {
            read: snap.read,
            write: snap.write,
        })
    }

    fn begin(&self, snap: &Arc<dyn DeltaSnapshot>, start_seq: u64) -> Box<dyn DeltaTxn> {
        let snap = snap
            .as_any()
            .downcast_ref::<PdtSnapshot>()
            .expect("PDT store handed a foreign snapshot");
        let trans = Pdt::new(snap.read.schema().clone(), snap.read.sk_cols().to_vec());
        Box::new(PdtTxn {
            read: snap.read.clone(),
            write: snap.write.clone(),
            trans,
            start_seq,
            serialized: None,
        })
    }

    fn prepare(&self, staged: &mut dyn DeltaTxn) -> Result<(), DbError> {
        let txn = staged
            .as_any_mut()
            .downcast_mut::<PdtTxn>()
            .expect("PDT store handed a foreign staging area");
        let serialized = self
            .mgr
            .serialize_txn(&self.table, txn.trans.clone(), txn.start_seq)?;
        txn.serialized = Some(Arc::new(serialized));
        Ok(())
    }

    fn wal_entries(&self, staged: &dyn DeltaTxn) -> Vec<WalEntry> {
        let txn = staged
            .as_any()
            .downcast_ref::<PdtTxn>()
            .expect("PDT store handed a foreign staging area");
        txn.serialized
            .as_ref()
            .map(|p| wal::pdt_entries(p))
            .unwrap_or_default()
    }

    fn publish(&self, staged: Box<dyn DeltaTxn>, seq: u64, _entries: &[WalEntry]) {
        let txn = staged
            .as_any()
            .downcast_ref::<PdtTxn>()
            .expect("PDT store handed a foreign staging area");
        let delta = txn
            .serialized
            .clone()
            .expect("publish called before prepare");
        self.mgr.publish_pdt(&self.table, delta, seq);
    }

    fn replay(&self, entries: &[WalEntry]) {
        self.mgr.replay_pdt_entries(&self.table, entries);
    }

    fn write_bytes(&self) -> usize {
        self.mgr.write_pdt_bytes(&self.table)
    }

    fn delta_bytes(&self) -> usize {
        self.mgr.pdt_bytes(&self.table)
    }

    fn flush(&self) -> bool {
        if self.mgr.write_pdt_bytes(&self.table) == 0 {
            return false;
        }
        self.mgr.flush_write_to_read(&self.table);
        true
    }

    fn checkpoint_pin(&self, seq: u64) -> Option<CheckpointPin> {
        // folds Write→Read first; commits during the merge land in the
        // fresh master Write-PDT, whose SIDs are relative to the combined
        // image the pin produces — exactly the layering §3.3 designs for
        let read = self.mgr.pin_checkpoint(&self.table)?;
        Some(CheckpointPin::new(seq, read))
    }

    fn checkpoint_merge(
        &self,
        pin: &CheckpointPin,
        stable: &StableTable,
        io: &IoTracker,
    ) -> Result<Option<StableTable>, DbError> {
        let read = pin.state::<Arc<Pdt>>();
        let fresh = pdt::checkpoint::checkpoint_table(stable, read, io)
            .map_err(|e: ColumnarError| DbError::Storage(e))?;
        Ok(Some(fresh))
    }

    fn checkpoint_install(&self, pin: CheckpointPin) {
        self.mgr
            .install_checkpoint(&self.table, pin.state::<Arc<Pdt>>());
    }

    fn checkpoint_merge_range(
        &self,
        pin: &CheckpointPin,
        stable: &StableTable,
        range: &CompactRange,
        io: &IoTracker,
    ) -> Result<RangeMerge, DbError> {
        let read = pin.state::<Arc<Pdt>>();
        let cols = pdt::checkpoint::checkpoint_range(stable, read, range.b0, range.b1, io)
            .map_err(DbError::Storage)?;
        // rebase the out-of-window remainder of the pinned Read-PDT onto
        // the post-splice SID space; the master Write-PDT (commits during
        // the merge) stays valid unchanged because stable′ ∘ residual is
        // the same visible image it was built against
        let (residual, _net) =
            wal::rebase_pdt_outside_range(read, range.s0, range.s1, range.folds_tail());
        let rebased = wal::rebuild_pdt(read.schema(), read.sk_cols(), &residual);
        Ok(RangeMerge::new(cols, residual, rebased))
    }

    fn checkpoint_install_range(&self, pin: CheckpointPin, merge: RangeMerge) {
        let rebased = merge.into_state::<Pdt>();
        self.mgr
            .install_partial_checkpoint(&self.table, pin.state::<Arc<Pdt>>(), rebased);
    }
}

// --- Value-based store --------------------------------------------------

/// [`DeltaStore`] over a value-based delta tree. Commits swap an immutable
/// committed [`Vdt`] (readers hold `Arc` snapshots, so they are never
/// blocked); when another transaction committed in between, the staged ops
/// log is replayed onto the current tree with key-addressed conflict
/// detection.
pub struct VdtStore {
    table: String,
    state: RwLock<VdtState>,
}

struct VdtState {
    committed: Arc<Vdt>,
    /// Bumped on every publish / checkpoint / replay; transactions compare
    /// it to detect concurrent commits (the value-based analogue of the
    /// TZ-set overlap test).
    version: u64,
    /// Commit retention for the in-flight checkpoint, if any.
    residual: ResidualLog,
}

impl VdtStore {
    /// An empty VDT store for `table`.
    pub fn new(table: String, schema: columnar::Schema, sk_cols: Vec<usize>) -> Self {
        VdtStore {
            table,
            state: RwLock::new(VdtState {
                committed: Arc::new(Vdt::new(schema, sk_cols)),
                version: 0,
                residual: ResidualLog::new(),
            }),
        }
    }
}

struct VdtSnapshot {
    vdt: Arc<Vdt>,
    version: u64,
}

impl DeltaSnapshot for VdtSnapshot {
    fn layers(&self) -> DeltaLayers<'_> {
        if self.vdt.is_empty() {
            DeltaLayers::None
        } else {
            DeltaLayers::Vdt(&self.vdt)
        }
    }

    fn delta_total(&self) -> i64 {
        self.vdt.delta_total()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct VdtTxn {
    /// Committed tree at begin with the staged ops already applied — what
    /// this transaction's own scans merge.
    working: Vdt,
    base_version: u64,
    /// The logical ops, kept for replay and WAL flattening.
    ops: Vec<VdtOp>,
}

impl DeltaTxn for VdtTxn {
    fn layers(&self) -> DeltaLayers<'_> {
        if self.working.is_empty() {
            DeltaLayers::None
        } else {
            DeltaLayers::Vdt(&self.working)
        }
    }

    fn delta_total(&self) -> i64 {
        self.working.delta_total()
    }

    fn is_dirty(&self) -> bool {
        !self.ops.is_empty()
    }

    fn stage_insert(&mut self, _rid: u64, tuple: &[Value]) {
        self.working.insert(tuple.to_vec());
        self.ops.push(VdtOp::Insert(tuple.to_vec()));
    }

    fn stage_delete(&mut self, _rid: u64, row: &[Value]) {
        let sk: Vec<Value> = self
            .working
            .sk_cols()
            .iter()
            .map(|&c| row[c].clone())
            .collect();
        self.working.delete(&sk);
        self.ops.push(VdtOp::Delete { pre: row.to_vec() });
    }

    fn stage_modify(&mut self, _rid: u64, col: usize, value: &Value, row: &[Value]) {
        self.working.modify(row, col, value.clone());
        self.ops.push(VdtOp::Modify {
            pre: row.to_vec(),
            col,
            value: value.clone(),
        });
    }

    /// Value-based batch staging: the whole statement becomes **one** op
    /// (and downstream one WAL entry). Single-row batches degrade to the
    /// singular ops so mixed workloads keep their natural log shape.
    fn stage_batch(&mut self, batch: &DmlBatch) {
        match batch {
            DmlBatch::Insert { rows, .. } => {
                let tuples = rows.rows();
                self.working.insert_batch(tuples.iter().cloned());
                match tuples.len() {
                    0 => {}
                    1 => self
                        .ops
                        .push(VdtOp::Insert(tuples.into_iter().next().unwrap())),
                    _ => self.ops.push(VdtOp::InsertBatch(tuples)),
                }
            }
            DmlBatch::Delete { pre, .. } => {
                let pres = pre.rows();
                let sk_cols = self.working.sk_cols().to_vec();
                for row in &pres {
                    let sk: Vec<Value> = sk_cols.iter().map(|&c| row[c].clone()).collect();
                    self.working.delete(&sk);
                }
                match pres.len() {
                    0 => {}
                    1 => self.ops.push(VdtOp::Delete {
                        pre: pres.into_iter().next().unwrap(),
                    }),
                    _ => self.ops.push(VdtOp::DeleteBatch { pres }),
                }
            }
            DmlBatch::UpdateCol {
                rids,
                col,
                values,
                pre,
            } => {
                // modifies keep per-row ops: the conflict contract is
                // per (key, column), and the pending-insert fold keeps
                // each statement O(log n) per row anyway
                for i in 0..rids.len() {
                    let row = pre.row(i);
                    let value = values.get(i);
                    self.working.modify(&row, *col, value.clone());
                    self.ops.push(VdtOp::Modify {
                        pre: row,
                        col: *col,
                        value,
                    });
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl DeltaStore for VdtStore {
    fn policy(&self) -> UpdatePolicy {
        UpdatePolicy::Vdt
    }

    fn snapshot(&self) -> Arc<dyn DeltaSnapshot> {
        let st = self.state.read();
        Arc::new(VdtSnapshot {
            vdt: st.committed.clone(),
            version: st.version,
        })
    }

    fn begin(&self, snap: &Arc<dyn DeltaSnapshot>, _start_seq: u64) -> Box<dyn DeltaTxn> {
        let snap = snap
            .as_any()
            .downcast_ref::<VdtSnapshot>()
            .expect("VDT store handed a foreign snapshot");
        Box::new(VdtTxn {
            working: (*snap.vdt).clone(),
            base_version: snap.version,
            ops: Vec::new(),
        })
    }

    fn prepare(&self, staged: &mut dyn DeltaTxn) -> Result<(), DbError> {
        let txn = staged
            .as_any_mut()
            .downcast_mut::<VdtTxn>()
            .expect("VDT store handed a foreign staging area");
        let st = self.state.read();
        if st.version == txn.base_version {
            // fast path: nothing committed since begin — the working tree
            // IS base ∘ ops and can be published wholesale
            return Ok(());
        }
        // somebody committed (or a checkpoint ran) in between: replay the
        // ops log onto the current committed tree with the key-addressed
        // conflict rules of `VdtOp::replay` (mirroring PDT Serialize)
        let mut replayed = (*st.committed).clone();
        for op in &txn.ops {
            op.replay(&mut replayed)
                .map_err(|reason| DbError::Conflict {
                    table: self.table.clone(),
                    reason,
                })?;
        }
        txn.working = replayed;
        txn.base_version = st.version;
        Ok(())
    }

    fn wal_entries(&self, staged: &dyn DeltaTxn) -> Vec<WalEntry> {
        let txn = staged
            .as_any()
            .downcast_ref::<VdtTxn>()
            .expect("VDT store handed a foreign staging area");
        let st = self.state.read();
        let sk_cols = txn.working.sk_cols().to_vec();
        let sk_of = |t: &[Value]| -> Vec<Value> { sk_cols.iter().map(|&c| t[c].clone()).collect() };
        let entry = |kind: u16, values: Vec<Value>| WalEntry {
            sid: 0,
            kind,
            values,
        };
        // Modify flattens to delete(key) + insert(post) in the shared
        // key-addressed log format. The post-image must reflect both this
        // transaction's own op chain *and* any concurrently committed
        // disjoint-column change that `prepare` reconciled with — so it is
        // built from the current committed tuple (under the commit guard,
        // after prepare) overlaid with our modified columns, op by op.
        let mut post: std::collections::HashMap<Vec<Value>, Vec<Value>> =
            std::collections::HashMap::new();
        let mut entries = Vec::new();
        for op in &txn.ops {
            match op {
                VdtOp::Insert(t) => {
                    post.insert(sk_of(t), t.clone());
                    entries.push(entry(pdt::INS, t.clone()));
                }
                VdtOp::InsertBatch(ts) => {
                    // one batched entry for the whole statement
                    let mut flat = Vec::with_capacity(ts.len() * ts.first().map_or(0, Vec::len));
                    for t in ts {
                        post.insert(sk_of(t), t.clone());
                        flat.extend(t.iter().cloned());
                    }
                    entries.push(entry(pdt::INS_BATCH, flat));
                }
                VdtOp::Delete { pre } => {
                    let key = sk_of(pre);
                    post.remove(&key);
                    entries.push(entry(pdt::DEL, key));
                }
                VdtOp::DeleteBatch { pres } => {
                    let mut flat = Vec::with_capacity(pres.len() * sk_cols.len());
                    for pre in pres {
                        let key = sk_of(pre);
                        post.remove(&key);
                        flat.extend(key);
                    }
                    entries.push(entry(pdt::DEL_BATCH, flat));
                }
                VdtOp::Modify { pre, col, value } => {
                    let key = sk_of(pre);
                    let t = post.entry(key.clone()).or_insert_with(|| {
                        st.committed
                            .pending_insert(&key)
                            .cloned()
                            .unwrap_or_else(|| pre.clone())
                    });
                    t[*col] = value.clone();
                    entries.push(entry(pdt::DEL, key));
                    entries.push(entry(pdt::INS, t.clone()));
                }
            }
        }
        // runs of per-row entries (row-at-a-time loops) compact too
        wal::coalesce_entries(entries)
    }

    fn publish(&self, mut staged: Box<dyn DeltaTxn>, seq: u64, entries: &[WalEntry]) {
        let txn = staged
            .as_any_mut()
            .downcast_mut::<VdtTxn>()
            .expect("VDT store handed a foreign staging area");
        // move the prepared tree out instead of deep-cloning it — commits
        // hold the global commit guard, so this must stay cheap
        let schema = txn.working.schema().clone();
        let sk_cols = txn.working.sk_cols().to_vec();
        let working = std::mem::replace(&mut txn.working, Vdt::new(schema, sk_cols));
        let mut st = self.state.write();
        debug_assert_eq!(
            st.version, txn.base_version,
            "publish without prepare under the commit guard"
        );
        st.committed = Arc::new(working);
        st.version += 1;
        st.residual.record(seq, entries);
    }

    fn replay(&self, entries: &[WalEntry]) {
        let mut st = self.state.write();
        // recovery holds no snapshots, so make_mut mutates in place —
        // replay stays linear in the number of logged commits
        let v = Arc::make_mut(&mut st.committed);
        apply_key_entries(entries, v);
        st.version += 1;
    }

    fn write_bytes(&self) -> usize {
        self.state.read().committed.heap_bytes()
    }

    fn delta_bytes(&self) -> usize {
        self.state.read().committed.heap_bytes()
    }

    fn flush(&self) -> bool {
        // single-layer structure: checkpoint is the only migration
        false
    }

    fn checkpoint_pin(&self, seq: u64) -> Option<CheckpointPin> {
        let mut st = self.state.write();
        if st.committed.is_empty() {
            return None;
        }
        st.residual.pin(seq);
        Some(CheckpointPin::new(seq, st.committed.clone()))
    }

    fn checkpoint_merge(
        &self,
        pin: &CheckpointPin,
        stable: &StableTable,
        io: &IoTracker,
    ) -> Result<Option<StableTable>, DbError> {
        // the pin is never empty (checkpoint_pin returns None otherwise)
        let pinned = pin.state::<Arc<Vdt>>();
        let rows = stable.scan_all(io)?;
        let merged = pinned.merge_rows(&rows);
        let fresh = StableTable::bulk_load(stable.meta().clone(), stable.options(), &merged)?;
        Ok(Some(fresh))
    }

    fn checkpoint_install(&self, pin: CheckpointPin) {
        let mut st = self.state.write();
        // commits published during the merge (seq > pin) survive as the
        // residual delta over the new image
        let mut residual = Vdt::new(
            st.committed.schema().clone(),
            st.committed.sk_cols().to_vec(),
        );
        st.residual.rebuild_into(pin.seq, &mut residual);
        st.committed = Arc::new(residual);
        st.residual.unpin();
        st.version += 1;
    }

    fn checkpoint_abort(&self, _pin: CheckpointPin) {
        self.state.write().residual.unpin();
    }

    fn checkpoint_merge_range(
        &self,
        pin: &CheckpointPin,
        stable: &StableTable,
        range: &CompactRange,
        io: &IoTracker,
    ) -> Result<RangeMerge, DbError> {
        let pinned = pin.state::<Arc<Vdt>>();
        let schema = pinned.schema().clone();
        let sk_cols = pinned.sk_cols().to_vec();
        // split the pinned tree by the range's key window — deletes before
        // inserts per half, so a modify's delete+insert pair reconstructs
        // exactly (the insert lands over its own delete marker)
        let mut folded = Vdt::new(schema.clone(), sk_cols.clone());
        let mut residual = Vdt::new(schema.clone(), sk_cols);
        let mut res_dels: Vec<Vec<Value>> = Vec::new();
        for key in pinned.deletes() {
            if range.key_in_window(key) {
                folded.delete(key);
            } else {
                residual.delete(key);
                res_dels.push(key.clone());
            }
        }
        let mut res_inss: Vec<Tuple> = Vec::new();
        for (key, t) in pinned.inserts() {
            if range.key_in_window(key) {
                folded.insert(t.clone());
            } else {
                residual.insert(t.clone());
                res_inss.push(t.clone());
            }
        }
        let rows = range_rows(stable, range.b0, range.b1, io).map_err(DbError::Storage)?;
        let merged = folded.merge_rows(&rows);
        Ok(RangeMerge::new(
            columnarize(&schema, &merged),
            key_residual_entries(res_dels, res_inss),
            residual,
        ))
    }

    fn checkpoint_install_range(&self, pin: CheckpointPin, merge: RangeMerge) {
        let mut residual = merge.into_state::<Vdt>();
        let mut st = self.state.write();
        // commits published during the merge (seq > pin) survive on top of
        // the out-of-window residual
        st.residual.rebuild_into(pin.seq, &mut residual);
        st.committed = Arc::new(residual);
        st.residual.unpin();
        st.version += 1;
    }
}
