//! [`DeltaStore`] over a copy-on-write row buffer — the classic
//! write-optimized delta-store baseline (Krueger et al.; "Teaching an Old
//! Elephant New Tricks"), behind the same transactional lifecycle as the
//! PDT and VDT stores.
//!
//! Committed state is one consolidated [`RowBuffer`] published behind an
//! `Arc`: readers snapshot the pointer and are never blocked. Commits
//! never mutate a published buffer — `publish` clones the committed
//! buffer, applies the transaction's ops, and swaps the copy in
//! (copy-on-write), additionally appending the ops as a versioned
//! [`RowRun`]. `prepare` validates a transaction against exactly the runs
//! published after its begin version via the footprint-based
//! [`ConflictSet`] — a third write-write detection mechanism next to the
//! PDT's TZ-set serialization and the VDT's value-wise replay, required to
//! reach the same abort/commit decisions.
//!
//! The run history is cleared at checkpoints (which also reset the
//! buffer); like the VDT store, a transaction spanning a checkpoint
//! validates against the post-checkpoint state only.

use crate::delta::{
    columnarize, key_residual_entries, range_rows, CheckpointPin, CompactRange, DeltaSnapshot,
    DeltaStore, DeltaTxn, RangeMerge, ResidualLog, UpdatePolicy,
};
use crate::DbError;
use columnar::{IoTracker, SkKey, StableTable, Tuple, Value};
use exec::DeltaLayers;
use parking_lot::RwLock;
use rowstore::{ConflictSet, RowBuffer, RowOp, RowRun, Slot};
use std::any::Any;
use std::sync::Arc;
use txn::wal::WalEntry;

/// [`DeltaStore`] over an uncompressed copy-on-write row buffer.
pub struct RowStore {
    table: String,
    state: RwLock<RowState>,
}

struct RowState {
    committed: Arc<RowBuffer>,
    /// Ops of every commit since the last checkpoint, tagged with the
    /// buffer version each produced (prepare-time conflict validation).
    runs: Vec<Arc<RowRun>>,
    /// Bumped on every publish / checkpoint / replay.
    version: u64,
    /// Commit retention for the in-flight checkpoint, if any. (The raw
    /// [`RowOp`]s in `runs` would not do for the residual rebuild: their
    /// pre-images can predate a commit the pin already folded into the
    /// image.)
    residual: ResidualLog,
}

impl RowStore {
    /// An empty copy-on-write row-store for `table`.
    pub fn new(table: String, schema: columnar::Schema, sk_cols: Vec<usize>) -> Self {
        RowStore {
            table,
            state: RwLock::new(RowState {
                committed: Arc::new(RowBuffer::new(schema, sk_cols)),
                runs: Vec::new(),
                version: 0,
                residual: ResidualLog::new(),
            }),
        }
    }
}

impl crate::delta::KeyEntrySink for RowBuffer {
    fn apply_insert(&mut self, tuple: Vec<Value>) {
        self.insert(tuple);
    }

    fn apply_insert_batch(&mut self, tuples: Vec<Tuple>) {
        // batched entries from one `append` are key-sorted and take the
        // single-merge-pass path; coalesced runs of independent statements
        // may not be — fall back to the row loop for those
        let sk = self.sk_cols().to_vec();
        let sorted = tuples.windows(2).all(|w| {
            sk.iter()
                .map(|&c| &w[0][c])
                .lt(sk.iter().map(|&c| &w[1][c]))
        });
        if sorted {
            self.insert_batch(tuples);
        } else {
            for t in tuples {
                self.insert(t);
            }
        }
    }

    fn apply_delete(&mut self, key: &[Value]) {
        self.delete_key(key);
    }

    fn entry_widths(&self) -> (usize, usize) {
        (self.schema().len(), self.sk_cols().len())
    }
}

/// Pinned state of an in-flight row-store checkpoint.
struct RowPin {
    buf: Arc<RowBuffer>,
    version: u64,
}

struct RowSnapshot {
    buf: Arc<RowBuffer>,
    version: u64,
}

impl DeltaSnapshot for RowSnapshot {
    fn layers(&self) -> DeltaLayers<'_> {
        if self.buf.is_empty() {
            DeltaLayers::None
        } else {
            DeltaLayers::Rows(&self.buf)
        }
    }

    fn delta_total(&self) -> i64 {
        self.buf.delta_total()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct RowTxn {
    /// Begin-time committed buffer with the staged ops already folded in —
    /// what this transaction's own scans merge.
    working: RowBuffer,
    base_version: u64,
    /// The logical ops, kept for validation, WAL flattening and publish.
    ops: Vec<RowOp>,
}

impl DeltaTxn for RowTxn {
    fn layers(&self) -> DeltaLayers<'_> {
        if self.working.is_empty() {
            DeltaLayers::None
        } else {
            DeltaLayers::Rows(&self.working)
        }
    }

    fn delta_total(&self) -> i64 {
        self.working.delta_total()
    }

    fn is_dirty(&self) -> bool {
        !self.ops.is_empty()
    }

    fn stage_insert(&mut self, _rid: u64, tuple: &[Value]) {
        self.working.insert(tuple.to_vec());
        self.ops.push(RowOp::Insert(tuple.to_vec()));
    }

    fn stage_delete(&mut self, _rid: u64, row: &[Value]) {
        self.working.delete(row);
        self.ops.push(RowOp::Delete { pre: row.to_vec() });
    }

    fn stage_modify(&mut self, _rid: u64, col: usize, value: &Value, row: &[Value]) {
        self.working.modify(row, col, value.clone());
        self.ops.push(RowOp::Modify {
            pre: row.to_vec(),
            col,
            value: value.clone(),
        });
    }

    /// The row store's vectorized staging — the structure that profits
    /// most: its sorted slot run absorbs a whole key-sorted batch in **one
    /// merge pass** (O(buffer + batch)) where the row loop pays an
    /// O(buffer) memmove per row. The statement also stays one op, so
    /// commit publication replays it as one merge pass again.
    fn stage_batch(&mut self, batch: &crate::batch::DmlBatch) {
        use crate::batch::DmlBatch;
        match batch {
            DmlBatch::Insert { rows, .. } => {
                let tuples = rows.rows();
                self.working.insert_batch(tuples.clone());
                match tuples.len() {
                    0 => {}
                    1 => self
                        .ops
                        .push(RowOp::Insert(tuples.into_iter().next().unwrap())),
                    _ => self.ops.push(RowOp::InsertBatch(tuples)),
                }
            }
            DmlBatch::Delete { pre, .. } => {
                let pres = pre.rows();
                self.working.delete_batch(&pres);
                match pres.len() {
                    0 => {}
                    1 => self.ops.push(RowOp::Delete {
                        pre: pres.into_iter().next().unwrap(),
                    }),
                    _ => self.ops.push(RowOp::DeleteBatch { pres }),
                }
            }
            DmlBatch::UpdateCol {
                rids,
                col,
                values,
                pre,
            } => {
                for i in 0..rids.len() {
                    let row = pre.row(i);
                    let value = values.get(i);
                    self.working.modify(&row, *col, value.clone());
                    self.ops.push(RowOp::Modify {
                        pre: row,
                        col: *col,
                        value,
                    });
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl DeltaStore for RowStore {
    fn policy(&self) -> UpdatePolicy {
        UpdatePolicy::RowStore
    }

    fn snapshot(&self) -> Arc<dyn DeltaSnapshot> {
        let st = self.state.read();
        Arc::new(RowSnapshot {
            buf: st.committed.clone(),
            version: st.version,
        })
    }

    fn begin(&self, snap: &Arc<dyn DeltaSnapshot>, _start_seq: u64) -> Box<dyn DeltaTxn> {
        let snap = snap
            .as_any()
            .downcast_ref::<RowSnapshot>()
            .expect("row store handed a foreign snapshot");
        Box::new(RowTxn {
            working: (*snap.buf).clone(),
            base_version: snap.version,
            ops: Vec::new(),
        })
    }

    fn prepare(&self, staged: &mut dyn DeltaTxn) -> Result<(), DbError> {
        let txn = staged
            .as_any_mut()
            .downcast_mut::<RowTxn>()
            .expect("row store handed a foreign staging area");
        let st = self.state.read();
        if st.version == txn.base_version {
            // fast path: nothing committed since begin
            return Ok(());
        }
        // validate against exactly the runs published after our begin
        let mut concurrent = ConflictSet::new();
        let sk_cols = st.committed.sk_cols().to_vec();
        for run in st.runs.iter().filter(|r| r.version > txn.base_version) {
            concurrent.add_run(run, &sk_cols);
        }
        for op in &txn.ops {
            concurrent
                .check(op, &sk_cols)
                .map_err(|reason| DbError::Conflict {
                    table: self.table.clone(),
                    reason,
                })?;
        }
        Ok(())
    }

    fn wal_entries(&self, staged: &dyn DeltaTxn) -> Vec<WalEntry> {
        let txn = staged
            .as_any()
            .downcast_ref::<RowTxn>()
            .expect("row store handed a foreign staging area");
        let st = self.state.read();
        let sk_cols = st.committed.sk_cols().to_vec();
        let sk_of = |t: &[Value]| -> SkKey { sk_cols.iter().map(|&c| t[c].clone()).collect() };
        let entry = |kind: u16, values: Vec<Value>| WalEntry {
            sid: 0,
            kind,
            values,
        };
        // Modify flattens to delete(key) + insert(post) in the shared
        // key-addressed log format. The post-image must reflect both this
        // transaction's own op chain *and* any concurrently committed
        // disjoint-column change that `prepare` reconciled with — so it is
        // built from the current committed tuple (under the commit guard,
        // after prepare) overlaid with our modified columns, op by op.
        let mut post: std::collections::HashMap<SkKey, Vec<Value>> =
            std::collections::HashMap::new();
        let mut entries = Vec::new();
        for op in &txn.ops {
            match op {
                RowOp::Insert(t) => {
                    post.insert(sk_of(t), t.clone());
                    entries.push(entry(pdt::INS, t.clone()));
                }
                RowOp::InsertBatch(ts) => {
                    // one batched entry for the whole statement
                    let mut flat = Vec::with_capacity(ts.len() * ts.first().map_or(0, Vec::len));
                    for t in ts {
                        post.insert(sk_of(t), t.clone());
                        flat.extend(t.iter().cloned());
                    }
                    entries.push(entry(pdt::INS_BATCH, flat));
                }
                RowOp::Delete { pre } => {
                    let key = sk_of(pre);
                    post.remove(&key);
                    entries.push(entry(pdt::DEL, key));
                }
                RowOp::DeleteBatch { pres } => {
                    let mut flat = Vec::with_capacity(pres.len() * sk_cols.len());
                    for pre in pres {
                        let key = sk_of(pre);
                        post.remove(&key);
                        flat.extend(key);
                    }
                    entries.push(entry(pdt::DEL_BATCH, flat));
                }
                RowOp::Modify { pre, col, value } => {
                    let key = sk_of(pre);
                    let t = post.entry(key.clone()).or_insert_with(|| {
                        st.committed
                            .pending_put(&key)
                            .cloned()
                            .unwrap_or_else(|| pre.clone())
                    });
                    t[*col] = value.clone();
                    entries.push(entry(pdt::DEL, key));
                    entries.push(entry(pdt::INS, t.clone()));
                }
            }
        }
        // runs of per-row entries (row-at-a-time loops) compact too
        txn::wal::coalesce_entries(entries)
    }

    fn publish(&self, mut staged: Box<dyn DeltaTxn>, seq: u64, entries: &[WalEntry]) {
        let txn = staged
            .as_any_mut()
            .downcast_mut::<RowTxn>()
            .expect("row store handed a foreign staging area");
        let ops = std::mem::take(&mut txn.ops);
        let mut st = self.state.write();
        // copy-on-write: never mutate the published buffer readers hold
        let mut fresh = (*st.committed).clone();
        for op in &ops {
            op.apply(&mut fresh);
        }
        st.committed = Arc::new(fresh);
        st.version += 1;
        let version = st.version;
        st.runs.push(Arc::new(RowRun { version, ops }));
        st.residual.record(seq, entries);
    }

    fn replay(&self, entries: &[WalEntry]) {
        let mut st = self.state.write();
        // recovery holds no snapshots, so make_mut mutates in place
        let buf = Arc::make_mut(&mut st.committed);
        crate::delta::apply_key_entries(entries, buf);
        st.version += 1;
    }

    fn write_bytes(&self) -> usize {
        self.state.read().committed.heap_bytes()
    }

    fn delta_bytes(&self) -> usize {
        // the run history counts too: under churn (insert then delete of
        // the same key) the net buffer stays tiny while runs grow with
        // every commit — the checkpoint budget must see that growth, or
        // the scheduler never retires it
        let st = self.state.read();
        st.committed.heap_bytes() + st.runs.iter().map(|r| r.heap_bytes()).sum::<usize>()
    }

    fn flush(&self) -> bool {
        // single-layer structure: checkpoint is the only migration
        false
    }

    fn checkpoint_pin(&self, seq: u64) -> Option<CheckpointPin> {
        let mut st = self.state.write();
        if st.committed.is_empty() && st.runs.is_empty() {
            return None;
        }
        st.residual.pin(seq);
        Some(CheckpointPin::new(
            seq,
            RowPin {
                buf: st.committed.clone(),
                version: st.version,
            },
        ))
    }

    fn checkpoint_merge(
        &self,
        pin: &CheckpointPin,
        stable: &StableTable,
        io: &IoTracker,
    ) -> Result<Option<StableTable>, DbError> {
        let pinned = pin.state::<RowPin>();
        if pinned.buf.is_empty() {
            // net-zero buffer (e.g. insert + delete of the same key): the
            // current image already equals the merged one; install still
            // retires the covered run history and commit log
            return Ok(None);
        }
        let rows = stable.scan_all(io)?;
        let merged = pinned.buf.merge_rows(&rows);
        let fresh = StableTable::bulk_load(stable.meta().clone(), stable.options(), &merged)?;
        Ok(Some(fresh))
    }

    fn checkpoint_install(&self, pin: CheckpointPin) {
        let pinned = pin.state::<RowPin>();
        let mut st = self.state.write();
        // commits published during the merge survive as the residual
        // buffer over the new image; their runs stay for the footprint
        // validation of transactions that began before the pin
        let mut residual = RowBuffer::new(
            st.committed.schema().clone(),
            st.committed.sk_cols().to_vec(),
        );
        st.residual.rebuild_into(pin.seq, &mut residual);
        st.committed = Arc::new(residual);
        let pin_version = pinned.version;
        st.runs.retain(|r| r.version > pin_version);
        st.residual.unpin();
        st.version += 1;
    }

    fn checkpoint_abort(&self, _pin: CheckpointPin) {
        self.state.write().residual.unpin();
    }

    fn checkpoint_merge_range(
        &self,
        pin: &CheckpointPin,
        stable: &StableTable,
        range: &CompactRange,
        io: &IoTracker,
    ) -> Result<RangeMerge, DbError> {
        let pinned = pin.state::<RowPin>();
        let schema = pinned.buf.schema().clone();
        let sk_cols = pinned.buf.sk_cols().to_vec();
        // split the pinned buffer's sorted slot run by the range's key
        // window, reconstructing each half through the public ops:
        // Tombstone → delete_key, Put{hides_stable} → delete_key + insert
        // (the insert over its own tombstone re-hides the stable row)
        let mut folded = RowBuffer::new(schema.clone(), sk_cols.clone());
        let mut residual = RowBuffer::new(schema.clone(), sk_cols);
        let mut res_dels: Vec<SkKey> = Vec::new();
        let mut res_inss: Vec<Tuple> = Vec::new();
        for (key, slot) in pinned.buf.slots() {
            let in_win = range.key_in_window(key);
            let half = if in_win { &mut folded } else { &mut residual };
            match slot {
                Slot::Tombstone => {
                    half.delete_key(key);
                    if !in_win {
                        res_dels.push(key.clone());
                    }
                }
                Slot::Put { row, hides_stable } => {
                    if *hides_stable {
                        half.delete_key(key);
                        if !in_win {
                            res_dels.push(key.clone());
                        }
                    }
                    half.insert(row.clone());
                    if !in_win {
                        res_inss.push(row.clone());
                    }
                }
            }
        }
        let rows = range_rows(stable, range.b0, range.b1, io).map_err(DbError::Storage)?;
        let merged = folded.merge_rows(&rows);
        Ok(RangeMerge::new(
            columnarize(&schema, &merged),
            key_residual_entries(res_dels, res_inss),
            residual,
        ))
    }

    fn checkpoint_install_range(&self, pin: CheckpointPin, merge: RangeMerge) {
        let pin_version = pin.state::<RowPin>().version;
        let mut residual = merge.into_state::<RowBuffer>();
        let mut st = self.state.write();
        // commits published during the merge survive on top of the
        // out-of-window residual; their runs stay for footprint validation
        st.residual.rebuild_into(pin.seq, &mut residual);
        st.committed = Arc::new(residual);
        st.runs.retain(|r| r.version > pin_version);
        st.residual.unpin();
        st.version += 1;
    }
}
